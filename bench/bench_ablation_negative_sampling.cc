// Ablation: Bernoulli (relation-aware) vs uniform negative sampling
// (Wang et al. 2014), one of the training-stack choices shared by every
// model the paper compares.

#include "bench/bench_common.h"
#include "eval/ranker.h"
#include "models/trainer.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Ablation: Bernoulli vs uniform negative sampling",
              "training-stack ablation (Wang et al. 2014 sampling, used "
              "throughout the harness)");
  ExperimentContext context = MakeContext();
  const Dataset& dataset = context.Fb15k().cleaned;

  AsciiTable table("TransE / ComplEx on FB15k-237-syn");
  table.SetHeader({"Model", "sampling", "FMR", "FHits@10", "FHits@1",
                   "FMRR"});
  for (ModelType type : {ModelType::kTransE, ModelType::kComplEx}) {
    for (bool bernoulli : {true, false}) {
      const ModelHyperParams params = DefaultHyperParams(type);
      auto model = CreateModel(type, dataset.num_entities(),
                               dataset.num_relations(), params);
      TrainOptions options = context.ScaledTrainOptions(type);
      options.bernoulli = bernoulli;
      TrainModel(*model, dataset, options);
      const LinkPredictionMetrics m = EvaluatePredictor(*model, dataset);
      table.AddRow({ModelTypeName(type), bernoulli ? "bernoulli" : "uniform",
                    Mr(m.fmr), Pct(m.fhits10), Pct(m.fhits1), Mrr(m.fmrr)});
    }
  }
  table.Print();
  std::printf(
      "Bernoulli corruption reduces false negatives on 1-to-n / n-to-1\n"
      "relations; the gap shows how much of the measured accuracy depends\n"
      "on this training detail rather than the scoring function.\n");
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_ablation_negative_sampling", kgc::bench::Run);
}
