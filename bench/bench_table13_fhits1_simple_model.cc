// Table 13: FHits@1 of every model, AMIE, and the paper's trivial "Simple
// Model" on FB15k / FB15k-237 / WN18 / WN18RR. The punchline: a rule reader
// matches the best embedding models wherever the data leaks, and everything
// collapses when it does not.

#include "bench/bench_common.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Table 13: FHits@1 results, including the Simple Model",
              "Akrami et al., SIGMOD'20, Table 13");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& fb = context.Fb15k();
  const BenchmarkSuite& wn = context.Wn18();

  const Dataset* datasets[] = {&fb.kg.dataset, &fb.cleaned, &wn.kg.dataset,
                               &wn.cleaned};

  AsciiTable table("FHits@1 (%)");
  table.SetHeader({"Model", "FB15k", "FB15k-237", "WN18", "WN18RR"});
  for (ModelType type : PaperModelLineup()) {
    std::vector<std::string> row = {ModelTypeName(type)};
    for (const Dataset* dataset : datasets) {
      row.push_back(
          Pct(ComputeMetrics(context.GetRanks(*dataset, type)).fhits1));
    }
    table.AddRow(std::move(row));
  }
  {
    std::vector<std::string> row = {"AMIE"};
    for (const Dataset* dataset : datasets) {
      row.push_back(Pct(ComputeMetrics(AmieRanks(context, *dataset)).fhits1));
    }
    table.AddRow(std::move(row));
  }
  {
    std::vector<std::string> row = {"Simple Model"};
    for (const Dataset* dataset : datasets) {
      const auto simple = BuildSimpleModel(*dataset);
      row.push_back(Pct(
          ComputeMetrics(
              context.GetPredictorRanks(*dataset, *simple, "simple_rule"))
              .fhits1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "Paper values for the Simple Model row: 71.6 / 1.1 / 96.4 / 34.8.\n"
      "(On WN18RR it stays non-trivial because the cleaning retains the\n"
      "symmetric relations.)\n");
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table13_fhits1_simple_model", kgc::bench::Run);
}
