// Table 8: per measure, the number of distinct test relations on which each
// model is the most accurate (cleaned datasets only, as in the paper).

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

void RunDataset(ExperimentContext& context, const Dataset& dataset) {
  std::vector<LabeledRanks> models;
  for (ModelType type : FigureModelLineup()) {
    models.push_back({ModelTypeName(type), &context.GetRanks(dataset, type)});
  }
  models.push_back({"AMIE", &AmieRanks(context, dataset)});

  const auto counts = CountBestRelations(models);
  AsciiTable table(StrFormat("%s: #relations each model wins (ties shared)",
                             dataset.name().c_str()));
  table.SetHeader({"Model", "FMR", "FH10", "FH1", "FMRR"});
  for (const BestRelationCounts& c : counts) {
    table.AddRow({c.model, StrFormat("%d", c.fmr), StrFormat("%d", c.fhits10),
                  StrFormat("%d", c.fhits1), StrFormat("%d", c.fmrr)});
  }
  table.Print();
}

int Run() {
  PrintHeader("Table 8: number of relations on which each model is the most "
              "accurate",
              "Akrami et al., SIGMOD'20, Table 8");
  ExperimentContext context = MakeContext();
  RunDataset(context, context.Fb15k().cleaned);
  RunDataset(context, context.Wn18().cleaned);
  RunDataset(context, context.Yago3().kg.dataset);
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table8_best_model_counts", kgc::bench::Run);
}
