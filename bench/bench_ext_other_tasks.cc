// Extension: the leakage story on the OTHER completion tasks of §3.2.
//
// The paper evaluates link prediction; triple classification and relation
// prediction are the sibling tasks its §3.2 lists. The same reverse-triple
// leakage inflates them too -- this bench shows the drop from FB15k-syn to
// FB15k-237-syn on both tasks.

#include "bench/bench_common.h"
#include "eval/relation_prediction.h"
#include "eval/triple_classification.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Extension: triple classification & relation prediction under "
              "leakage",
              "companion to §3.2's task taxonomy (no paper table; extension)");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Fb15k();

  const ModelType models[] = {ModelType::kTransE, ModelType::kComplEx,
                              ModelType::kRotatE};

  AsciiTable classification("Triple classification accuracy (balanced)");
  classification.SetHeader({"Model", "FB15k-syn", "FB15k-237-syn"});
  for (ModelType type : models) {
    std::vector<std::string> row = {ModelTypeName(type)};
    for (const Dataset* dataset : {&suite.kg.dataset, &suite.cleaned}) {
      const KgeModel& model = context.GetModel(*dataset, type);
      const TripleClassificationResult result =
          EvaluateTripleClassification(model, *dataset);
      row.push_back(Pct(result.accuracy));
    }
    classification.AddRow(std::move(row));
  }
  classification.Print();

  AsciiTable relation_pred("Relation prediction (rank the relation of each "
                           "test (h, ?, t))");
  relation_pred.SetHeader({"Model", "FMRR", "FH@1", "FMRR'", "FH@1'"});
  for (ModelType type : models) {
    const RelationPredictionMetrics original = EvaluateRelationPrediction(
        context.GetModel(suite.kg.dataset, type), suite.kg.dataset);
    const RelationPredictionMetrics cleaned = EvaluateRelationPrediction(
        context.GetModel(suite.cleaned, type), suite.cleaned);
    relation_pred.AddRow({ModelTypeName(type), Mrr(original.fmrr),
                          Pct(original.fhits1), Mrr(cleaned.fmrr),
                          Pct(cleaned.fhits1)});
  }
  relation_pred.Print();
  std::printf(
      "Columns with ' are on the cleaned dataset. The models that exploit\n"
      "reverse structure (ComplEx, RotatE) lose their premium on both tasks\n"
      "after cleaning; TransE, which never had it, is flat or better --\n"
      "mirroring the link-prediction picture. Both auxiliary tasks are much\n"
      "easier than link prediction (small or well-separated candidate\n"
      "spaces), which is why the paper centres on link prediction.\n");
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_ext_other_tasks", kgc::bench::Run);
}
