// Figure 8 + Table 12: YAGO3-10 relation-category break-downs.

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Figure 8 / Table 12: YAGO3-10 category break-downs",
              "Akrami et al., SIGMOD'20, Figure 8 and Table 12");
  ExperimentContext context = MakeContext();
  const Dataset& dataset = context.Yago3().kg.dataset;

  std::vector<LabeledRanks> models;
  for (ModelType type : FigureModelLineup()) {
    models.push_back({ModelTypeName(type), &context.GetRanks(dataset, type)});
  }
  models.push_back({"AMIE", &AmieRanks(context, dataset)});

  const auto categories = CategorizeRelations(dataset.train_store());

  // Figure 8a: best-FMRR counts per category.
  const auto counts = CountBestRelationsByCategory(models, categories);
  AsciiTable fig8(
      "Figure 8a: #relations with the best FMRR, by model and category");
  fig8.SetHeader({"Model", "1-to-1", "1-to-n", "n-to-1", "n-to-m"});
  for (size_t m = 0; m < models.size(); ++m) {
    fig8.AddRow({models[m].model, StrFormat("%d", counts[m][0]),
                 StrFormat("%d", counts[m][1]), StrFormat("%d", counts[m][2]),
                 StrFormat("%d", counts[m][3])});
  }
  fig8.Print();

  // Table 12: left/right FHits@10 per category.
  AsciiTable table12("Table 12: YAGO3-10-syn FHits@10 (%) by category, "
                     "head (L) / tail (R)");
  table12.SetHeader({"Model", "1-1 L", "1-1 R", "1-n L", "1-n R", "n-1 L",
                     "n-1 R", "n-m L", "n-m R"});
  for (const LabeledRanks& model : models) {
    const CategoryHeadTailHits hits =
        ComputeCategoryHeadTailHits(*model.ranks, categories);
    std::vector<std::string> row = {model.model};
    for (size_t c = 0; c < 4; ++c) {
      row.push_back(Pct(hits.left_fhits10[c]));
      row.push_back(Pct(hits.right_fhits10[c]));
    }
    table12.AddRow(std::move(row));
  }
  table12.Print();
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_fig8_table12_yago_categories", kgc::bench::Run);
}
