// Figures 5 and 6: per-relation heatmaps of the percentage of test triples
// on which each model attains the best per-triple FMRR (FB15k-237, WN18RR).

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace kgc::bench {
namespace {

void PrintHeatmap(const WinShareHeatmap& heatmap,
                  const std::vector<LabeledRanks>& models,
                  const char* title, size_t max_relations) {
  std::printf("\n%s\n", title);
  const size_t num_relations =
      std::min(heatmap.relations.size(), max_relations);
  std::printf("%-9s", "");
  for (size_t k = 0; k < num_relations; ++k) {
    std::printf("%3zu", k + 1);
  }
  std::printf("\n");
  for (size_t m = 0; m < models.size(); ++m) {
    std::printf("%-9s", models[m].model.c_str());
    for (size_t k = 0; k < num_relations; ++k) {
      const int cell =
          std::min(99, static_cast<int>(heatmap.share[m][k] + 0.5));
      std::printf("%3d", cell);
    }
    std::printf("\n");
  }
  if (heatmap.relations.size() > max_relations) {
    std::printf("(%zu of %zu relations shown; cells = %% of the relation's "
                "test triples won, 0-99)\n",
                num_relations, heatmap.relations.size());
  } else {
    std::printf("(cells = %% of the relation's test triples on which the "
                "model ties for the best FMRR)\n");
  }
  // Mean win share, the scalar summary of the heatmap row.
  std::printf("mean win share: ");
  for (size_t m = 0; m < models.size(); ++m) {
    double sum = 0.0;
    for (double v : heatmap.share[m]) sum += v;
    std::printf("%s=%.1f%% ", models[m].model.c_str(),
                sum / static_cast<double>(heatmap.share[m].size()));
  }
  std::printf("\n");
}

void RunDataset(ExperimentContext& context, const Dataset& dataset,
                const char* title, size_t max_relations) {
  std::vector<LabeledRanks> models;
  for (ModelType type : FigureModelLineup()) {
    models.push_back({ModelTypeName(type), &context.GetRanks(dataset, type)});
  }
  const WinShareHeatmap heatmap = ComputePerRelationWinShare(models);
  PrintHeatmap(heatmap, models, title, max_relations);
}

int Run() {
  PrintHeader("Figures 5/6: which model wins each relation's test triples",
              "Akrami et al., SIGMOD'20, Figures 5 and 6");
  ExperimentContext context = MakeContext();
  RunDataset(context, context.Fb15k().cleaned,
             "Figure 5: FB15k-237-syn relations", 40);
  RunDataset(context, context.Wn18().cleaned,
             "Figure 6: WN18RR-syn relations", 24);
  std::printf(
      "\nPaper observation: on WN18RR the symmetric relations retained by "
      "the cleaning\n(derivationally_related_form, similar_to, verb_group) "
      "are dominated by the\nstrongest models -- their residual leakage is "
      "what those models exploit.\n");
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_fig5_fig6_heatmaps", kgc::bench::Run);
}
