// Shared helpers for the bench harness.
//
// Every bench binary regenerates one table or figure of the paper. They all
// share one ExperimentContext (and thus one on-disk cache of trained models
// and rank tables), so the whole suite trains each (dataset, model) pair
// exactly once regardless of execution order.

#ifndef KGC_BENCH_BENCH_COMMON_H_
#define KGC_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/audit.h"
#include "core/experiment_context.h"
#include "eval/comparison.h"
#include "eval/topk.h"
#include "rules/amie.h"
#include "rules/simple_rule_model.h"
#include "util/stopwatch.h"

namespace kgc::bench {

/// Telemetry bracket for a bench binary.
///
/// Construction parses and strips the telemetry flags from argv (updating
/// *argc in place, so later argument parsers never see them):
///
///   --report=PATH     append a run report line to PATH (overrides
///                     KGC_METRICS for this run)
///   --trace=PATH      write a Chrome trace to PATH (overrides KGC_TRACE)
///   --log-level=L     debug | info | warning | error
///
/// `Finish(exit_code)` appends the machine-readable run report — when a
/// report path came from --report or KGC_METRICS — and flushes the trace,
/// then returns `exit_code` unchanged so it can wrap a return statement.
///
/// Construction also installs crash hooks: fatal-signal handlers (SEGV,
/// ABRT, TERM, ...) and an atexit fallback that flush the run report with
/// the real exit cause (`exit_cause`: "signal:SIGABRT",
/// "deadline:<phase>", ...) when the binary dies before reaching the
/// normal Finish call — so every run, crashed or not, leaves exactly one
/// attributed report line.
class BenchTelemetry {
 public:
  BenchTelemetry(const char* name, int* argc, char** argv);
  int Finish(int exit_code);

 private:
  std::string name_;
  std::string report_path_;
  Stopwatch watch_;
  bool finished_ = false;
};

/// Standard main() body for table/figure benches: wraps `run` in a
/// BenchTelemetry bracket. Usage:
///   int main(int argc, char** argv) {
///     return kgc::bench::RunBench(argc, argv, "bench_table5_fb15k", Run);
///   }
int RunBench(int argc, char** argv, const char* name, int (*run)());

/// Argv flag consumption for bench binaries that also hand argv to
/// google-benchmark. Both helpers accept the `--name=value` and the
/// `--name value` spellings, remove every matched token from argv
/// (compacting in place and updating *argc), and must therefore run
/// BEFORE benchmark::Initialize — whatever is left over is what
/// ReportUnrecognizedArguments sees, so stripped flags compose freely
/// with --benchmark_filter and friends.
///
/// ConsumeValueFlag returns true and stores the last occurrence's value
/// when the flag appears; ConsumeBoolFlag returns true when the bare
/// flag (or `--name=true`/`--name=1`) appears.
bool ConsumeValueFlag(int* argc, char** argv, const char* name,
                      std::string* value);
bool ConsumeBoolFlag(int* argc, char** argv, const char* name);

/// Synthetic retrieval workload for the top-K benches.
///
/// Real trained TransE tables are nearly unit-norm (the trainer projects
/// entities to the sphere), which makes norm-bound pruning vacuous — the
/// honest rows in the bench report show exactly that. This model instead
/// embodies the redundancy thesis of the paper (§3: near-duplicate
/// entities dominate the benchmarks): entities come in clusters of
/// near-duplicates, cluster norms follow a log-normal spread, and queries
/// land near cluster centres. Top-K distances are then tiny relative to
/// the norm spread, so the norm-sorted tile bound discards most of the
/// table — the regime the fast path is built for.
///
/// Scoring is -L2(entity - (anchor ± relation)), exposed through the
/// sweep API exactly like the production translational models.
class ClusteredL2Model final : public LinkPredictor {
 public:
  ClusteredL2Model(int32_t num_entities, size_t dim, int32_t num_relations,
                   uint64_t seed);

  const char* name() const override { return "ClusteredL2"; }
  int32_t num_entities() const override { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }

  void ScoreTails(int32_t head, int32_t relation,
                  std::span<float> out) const override;
  void ScoreHeads(int32_t relation, int32_t tail,
                  std::span<float> out) const override;
  bool DescribeSweep(bool tails, int32_t relation,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, int32_t relation, int32_t anchor,
                       std::span<float> query) const override;

 private:
  int32_t num_entities_;
  int32_t num_relations_;
  size_t dim_;
  std::vector<float> entities_;   // row-major num_entities x dim
  std::vector<float> relations_;  // row-major num_relations x dim
};

/// Deterministic mixed head/tail top-K queries over a model's id space.
std::vector<TopKQuery> MakeTopKBenchQueries(int32_t num_entities,
                                            int32_t num_relations,
                                            size_t count, uint64_t seed);

/// One measured point of the top-K fast path against the full-sweep oracle.
struct TopKBenchPoint {
  std::string label;        // workload name, e.g. "clustered_l2"
  int64_t num_entities = 0;
  size_t num_queries = 0;
  int k = 0;
  bool prune = true;
  double oracle_seconds = 0;  // best-of-reps, serial OracleTopK per query
  double engine_seconds = 0;  // best-of-reps, TopKEngine threads=1
  double speedup = 0;         // oracle_seconds / engine_seconds
  // kgc.topk.* counter deltas over one engine run.
  uint64_t tiles_pruned = 0;
  uint64_t entities_scored = 0;
  uint64_t heap_pushes = 0;
  uint64_t queries_batched = 0;
  double scored_fraction = 0;  // entities_scored / (num_queries * entities)
  bool cross_checked = false;  // an oracle cross-check run passed
};

/// Times the engine against the per-query oracle on `queries` (unfiltered),
/// best-of-`reps` wall clock for each side, engine pinned to one thread so
/// the comparison is core-for-core. When `cross_check` is set, one extra
/// (untimed) engine run executes with TopKOptions::cross_check — it aborts
/// the process on any bit-level disagreement with the oracle.
TopKBenchPoint MeasureTopKRetrieval(const LinkPredictor& predictor,
                                    const std::string& label,
                                    std::span<const TopKQuery> queries, int k,
                                    bool prune, bool cross_check, int reps);

/// Builds the canonical context: cache dir from $KGC_CACHE_DIR (default
/// "kgc_cache"), default seeds, quiet training logs.
ExperimentContext MakeContext();

/// AMIE predictor over a dataset's training split. The returned predictor
/// references `dataset`; keep the dataset alive.
std::unique_ptr<RulePredictor> BuildAmie(const Dataset& dataset);

/// Ranks for the AMIE predictor, through the context's rank cache.
const std::vector<TripleRanks>& AmieRanks(ExperimentContext& context,
                                          const Dataset& dataset);

/// The paper's simple rule model (>0.8 intersection), detected on the full
/// dataset as in §4.2.1. References `dataset`.
std::unique_ptr<SimpleRuleModel> BuildSimpleModel(const Dataset& dataset);

/// Formatting helpers.
std::string Mr(double value);        // mean rank, 1 decimal
std::string Pct(double fraction);    // percentage, 1 decimal
std::string Mrr(double value);       // reciprocal rank, 3 decimals

/// Eight-column row "MR H10 MRR FMR FH10 FMRR" (paper Tables 5/6 layout).
std::vector<std::string> RawAndFilteredRow(const std::string& label,
                                           const LinkPredictionMetrics& m);

/// Marks a bench header so outputs are self-describing.
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace kgc::bench

#endif  // KGC_BENCH_BENCH_COMMON_H_
