// Shared helpers for the bench harness.
//
// Every bench binary regenerates one table or figure of the paper. They all
// share one ExperimentContext (and thus one on-disk cache of trained models
// and rank tables), so the whole suite trains each (dataset, model) pair
// exactly once regardless of execution order.

#ifndef KGC_BENCH_BENCH_COMMON_H_
#define KGC_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/audit.h"
#include "core/experiment_context.h"
#include "eval/comparison.h"
#include "rules/amie.h"
#include "rules/simple_rule_model.h"

namespace kgc::bench {

/// Builds the canonical context: cache dir from $KGC_CACHE_DIR (default
/// "kgc_cache"), default seeds, quiet training logs.
ExperimentContext MakeContext();

/// AMIE predictor over a dataset's training split. The returned predictor
/// references `dataset`; keep the dataset alive.
std::unique_ptr<RulePredictor> BuildAmie(const Dataset& dataset);

/// Ranks for the AMIE predictor, through the context's rank cache.
const std::vector<TripleRanks>& AmieRanks(ExperimentContext& context,
                                          const Dataset& dataset);

/// The paper's simple rule model (>0.8 intersection), detected on the full
/// dataset as in §4.2.1. References `dataset`.
std::unique_ptr<SimpleRuleModel> BuildSimpleModel(const Dataset& dataset);

/// Formatting helpers.
std::string Mr(double value);        // mean rank, 1 decimal
std::string Pct(double fraction);    // percentage, 1 decimal
std::string Mrr(double value);       // reciprocal rank, 3 decimals

/// Eight-column row "MR H10 MRR FMR FH10 FMRR" (paper Tables 5/6 layout).
std::vector<std::string> RawAndFilteredRow(const std::string& label,
                                           const LinkPredictionMetrics& m);

/// Marks a bench header so outputs are self-describing.
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace kgc::bench

#endif  // KGC_BENCH_BENCH_COMMON_H_
