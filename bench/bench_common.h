// Shared helpers for the bench harness.
//
// Every bench binary regenerates one table or figure of the paper. They all
// share one ExperimentContext (and thus one on-disk cache of trained models
// and rank tables), so the whole suite trains each (dataset, model) pair
// exactly once regardless of execution order.

#ifndef KGC_BENCH_BENCH_COMMON_H_
#define KGC_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/audit.h"
#include "core/experiment_context.h"
#include "eval/comparison.h"
#include "rules/amie.h"
#include "rules/simple_rule_model.h"
#include "util/stopwatch.h"

namespace kgc::bench {

/// Telemetry bracket for a bench binary.
///
/// Construction parses and strips the telemetry flags from argv (updating
/// *argc in place, so later argument parsers never see them):
///
///   --report=PATH     append a run report line to PATH (overrides
///                     KGC_METRICS for this run)
///   --trace=PATH      write a Chrome trace to PATH (overrides KGC_TRACE)
///   --log-level=L     debug | info | warning | error
///
/// `Finish(exit_code)` appends the machine-readable run report — when a
/// report path came from --report or KGC_METRICS — and flushes the trace,
/// then returns `exit_code` unchanged so it can wrap a return statement.
///
/// Construction also installs crash hooks: fatal-signal handlers (SEGV,
/// ABRT, TERM, ...) and an atexit fallback that flush the run report with
/// the real exit cause (`exit_cause`: "signal:SIGABRT",
/// "deadline:<phase>", ...) when the binary dies before reaching the
/// normal Finish call — so every run, crashed or not, leaves exactly one
/// attributed report line.
class BenchTelemetry {
 public:
  BenchTelemetry(const char* name, int* argc, char** argv);
  int Finish(int exit_code);

 private:
  std::string name_;
  std::string report_path_;
  Stopwatch watch_;
  bool finished_ = false;
};

/// Standard main() body for table/figure benches: wraps `run` in a
/// BenchTelemetry bracket. Usage:
///   int main(int argc, char** argv) {
///     return kgc::bench::RunBench(argc, argv, "bench_table5_fb15k", Run);
///   }
int RunBench(int argc, char** argv, const char* name, int (*run)());

/// Builds the canonical context: cache dir from $KGC_CACHE_DIR (default
/// "kgc_cache"), default seeds, quiet training logs.
ExperimentContext MakeContext();

/// AMIE predictor over a dataset's training split. The returned predictor
/// references `dataset`; keep the dataset alive.
std::unique_ptr<RulePredictor> BuildAmie(const Dataset& dataset);

/// Ranks for the AMIE predictor, through the context's rank cache.
const std::vector<TripleRanks>& AmieRanks(ExperimentContext& context,
                                          const Dataset& dataset);

/// The paper's simple rule model (>0.8 intersection), detected on the full
/// dataset as in §4.2.1. References `dataset`.
std::unique_ptr<SimpleRuleModel> BuildSimpleModel(const Dataset& dataset);

/// Formatting helpers.
std::string Mr(double value);        // mean rank, 1 decimal
std::string Pct(double fraction);    // percentage, 1 decimal
std::string Mrr(double value);       // reciprocal rank, 3 decimals

/// Eight-column row "MR H10 MRR FMR FH10 FMRR" (paper Tables 5/6 layout).
std::vector<std::string> RawAndFilteredRow(const std::string& label,
                                           const LinkPredictionMetrics& m);

/// Marks a bench header so outputs are self-describing.
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace kgc::bench

#endif  // KGC_BENCH_BENCH_COMMON_H_
