// Table 2: Cartesian product relations survive FB15k-237 cleaning and still
// yield unrealistically strong FMRR for every embedding model.

#include "bench/bench_common.h"
#include "redundancy/detectors.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader(
      "Table 2: strong FMRR on Cartesian product relations in FB15k-237",
      "Akrami et al., SIGMOD'20, Table 2");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Fb15k();
  const Dataset& cleaned = suite.cleaned;

  // Cartesian relations detected on the cleaned dataset (they survive the
  // -237 style cleaning because it only collapses duplicate pairs).
  const auto cartesian = FindCartesianRelations(cleaned.all_store());

  const ModelType models[] = {ModelType::kTransE, ModelType::kDistMult,
                              ModelType::kComplEx, ModelType::kConvE,
                              ModelType::kRotatE};

  AsciiTable table("FMRR per Cartesian relation on FB15k-237-syn");
  std::vector<std::string> header = {"relation", "#test"};
  for (ModelType type : models) header.push_back(ModelTypeName(type));
  table.SetHeader(std::move(header));

  // Per-relation FMRR for each model.
  std::vector<std::unordered_map<RelationId, LinkPredictionMetrics>> metrics;
  for (ModelType type : models) {
    metrics.push_back(
        ComputeMetricsByRelation(context.GetRanks(cleaned, type)));
  }

  // Overall FMRR for contrast.
  std::vector<LinkPredictionMetrics> overall;
  for (ModelType type : models) {
    overall.push_back(ComputeMetrics(context.GetRanks(cleaned, type)));
  }

  for (const CartesianEvidence& evidence : cartesian) {
    const RelationId r = evidence.relation;
    if (!metrics[0].contains(r)) continue;  // no test triples
    std::vector<std::string> row = {
        cleaned.vocab().RelationName(r),
        StrFormat("%zu", metrics[0].at(r).num_triples)};
    for (size_t m = 0; m < metrics.size(); ++m) {
      row.push_back(Mrr(metrics[m].at(r).fmrr));
    }
    table.AddRow(std::move(row));
  }
  table.AddSeparator();
  std::vector<std::string> row = {"(all relations, for contrast)", ""};
  for (const LinkPredictionMetrics& m : overall) row.push_back(Mrr(m.fmrr));
  table.AddRow(std::move(row));
  table.Print();
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table2_cartesian_survivors", kgc::bench::Run);
}
