// Tables 9 and 10: FHits@10 for head ("left") and tail ("right") prediction
// separately per relation category, on FB15k-237 and WN18RR.

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

void RunDataset(ExperimentContext& context, const Dataset& dataset,
                const char* title) {
  const auto categories = CategorizeRelations(dataset.train_store());

  AsciiTable table(title);
  table.SetHeader({"Model", "1-1 L", "1-1 R", "1-n L", "1-n R", "n-1 L",
                   "n-1 R", "n-m L", "n-m R"});
  auto add = [&](const std::string& name,
                 const std::vector<TripleRanks>& ranks) {
    const CategoryHeadTailHits hits =
        ComputeCategoryHeadTailHits(ranks, categories);
    std::vector<std::string> row = {name};
    for (size_t c = 0; c < 4; ++c) {
      row.push_back(Pct(hits.left_fhits10[c]));
      row.push_back(Pct(hits.right_fhits10[c]));
    }
    table.AddRow(std::move(row));
  };
  for (ModelType type : PaperModelLineup()) {
    add(ModelTypeName(type), context.GetRanks(dataset, type));
  }
  add("AMIE", AmieRanks(context, dataset));
  table.Print();

  // Category sizes, as reported in the paper's §5.3(5).
  CategoryHeadTailHits sizes = ComputeCategoryHeadTailHits(
      context.GetRanks(dataset, ModelType::kTransE), categories);
  std::printf("category sizes (relations / test triples): ");
  const char* names[] = {"1-to-1", "1-to-n", "n-to-1", "n-to-m"};
  for (size_t c = 0; c < 4; ++c) {
    std::printf("%s: %zu/%zu  ", names[c], sizes.num_relations[c],
                sizes.num_triples[c]);
  }
  std::printf("\n");
}

int Run() {
  PrintHeader("Tables 9/10: FHits@10 by relation category, head (L) and "
              "tail (R) prediction",
              "Akrami et al., SIGMOD'20, Tables 9 and 10");
  ExperimentContext context = MakeContext();
  RunDataset(context, context.Fb15k().cleaned,
             "Table 9: FB15k-237-syn, FHits@10 (%) by category");
  RunDataset(context, context.Wn18().cleaned,
             "Table 10: WN18RR-syn, FHits@10 (%) by category");
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table9_table10_category_hits", kgc::bench::Run);
}
