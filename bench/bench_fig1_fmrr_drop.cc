// Figure 1: FMRR of representative models on FB15k vs FB15k-237 and
// WN18 vs WN18RR -- the paper's headline performance-drop chart.

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

// Renders a unit-width ASCII bar so the figure reads as a chart.
std::string Bar(double fmrr) {
  const int width = static_cast<int>(fmrr * 40.0 + 0.5);
  return std::string(static_cast<size_t>(width), '#');
}

void RunPair(ExperimentContext& context, const BenchmarkSuite& suite) {
  AsciiTable table(StrFormat("FMRR: %s (leaky) vs %s (cleaned)",
                             suite.kg.dataset.name().c_str(),
                             suite.cleaned.name().c_str()));
  table.SetHeader({"Model", "FMRR", "FMRR'", "drop", "original", "cleaned"});
  for (ModelType type : FigureModelLineup()) {
    const LinkPredictionMetrics original =
        ComputeMetrics(context.GetRanks(suite.kg.dataset, type));
    const LinkPredictionMetrics cleaned =
        ComputeMetrics(context.GetRanks(suite.cleaned, type));
    table.AddRow({ModelTypeName(type), Mrr(original.fmrr), Mrr(cleaned.fmrr),
                  Pct(original.fmrr > 0
                          ? (original.fmrr - cleaned.fmrr) / original.fmrr
                          : 0.0) + "%",
                  Bar(original.fmrr), Bar(cleaned.fmrr)});
  }
  table.Print();
}

int Run() {
  PrintHeader("Figure 1: performance drop after removing reverse triples",
              "Akrami et al., SIGMOD'20, Figure 1");
  ExperimentContext context = MakeContext();
  RunPair(context, context.Fb15k());
  RunPair(context, context.Wn18());
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_fig1_fmrr_drop", kgc::bench::Run);
}
