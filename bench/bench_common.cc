#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/vecmath.h"

namespace kgc::bench {
namespace {

// Matches argv[*i] against `--name=value` or the two-token `--name value`
// form (advancing *i past the consumed value token). The shared primitive
// behind BenchTelemetry's flag stripping and the public Consume*Flag
// helpers, so every bench flag accepts both spellings.
bool MatchValueFlag(char** argv, int argc, int* i, const char* name,
                    std::string* value) {
  const std::string arg = argv[*i];
  const std::string prefix = std::string(name) + "=";
  if (arg.starts_with(prefix)) {
    *value = arg.substr(prefix.size());
    return true;
  }
  if (arg == name && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

// The telemetry bracket the crash hooks flush. One per process: bench
// binaries construct exactly one BenchTelemetry, and the hooks are only
// meaningful for it.
BenchTelemetry* g_active_telemetry = nullptr;

struct SignalName {
  int signal;
  const char* name;
};
constexpr SignalName kFatalSignals[] = {
    {SIGSEGV, "SIGSEGV"}, {SIGBUS, "SIGBUS"}, {SIGFPE, "SIGFPE"},
    {SIGILL, "SIGILL"},   {SIGABRT, "SIGABRT"}, {SIGTERM, "SIGTERM"},
    {SIGINT, "SIGINT"},
};

// Fatal-signal hook: attribute the run, flush report + trace, then die
// with the original signal so the parent (tools/kgc_suite) still sees the
// true exit status. Rendering JSON is not async-signal-safe; on a crash
// path a best-effort report beats none, and the re-raise below bounds the
// damage to losing the report line.
void CrashSignalHandler(int signal) {
  const char* name = "unknown";
  for (const SignalName& s : kFatalSignals) {
    if (s.signal == signal) name = s.name;
  }
  obs::SetRunExitCause(std::string("signal:") + name);
  if (g_active_telemetry != nullptr) {
    g_active_telemetry->Finish(128 + signal);
  }
  std::signal(signal, SIG_DFL);
  std::raise(signal);
}

// atexit fallback: a library called std::exit without going through
// RunBench (the deadline handler does exactly that). Finish is idempotent,
// so the normal path — where RunBench already finished — is a no-op.
void FlushReportAtExit() {
  if (g_active_telemetry == nullptr) return;
  const std::string cause = obs::RunExitCause();
  if (cause.empty()) obs::SetRunExitCause("early_exit");
  const int exit_code =
      cause.starts_with("deadline:") ? kDeadlineExitCode : -1;
  g_active_telemetry->Finish(exit_code);
}

void InstallCrashHooks(BenchTelemetry* telemetry) {
  g_active_telemetry = telemetry;
  static const bool installed = [] {
    for (const SignalName& s : kFatalSignals) {
      std::signal(s.signal, CrashSignalHandler);
    }
    std::atexit(FlushReportAtExit);
    return true;
  }();
  (void)installed;
}

}  // namespace

BenchTelemetry::BenchTelemetry(const char* name, int* argc, char** argv)
    : name_(name), report_path_(obs::MetricsPathFromEnv()) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string value;
    if (MatchValueFlag(argv, *argc, &i, "--report", &value)) {
      report_path_ = value;
    } else if (MatchValueFlag(argv, *argc, &i, "--trace", &value)) {
      obs::StartTracing(value);
    } else if (MatchValueFlag(argv, *argc, &i, "--log-level", &value)) {
      LogLevel level;
      if (ParseLogLevel(value, &level)) {
        SetLogLevel(level);
      } else {
        LogWarning("unknown --log-level value '%s' ignored", value.c_str());
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
  if (!report_path_.empty()) obs::EnableSpanRollups();
  // Run-wide telemetry threads/counters start here — before the lazy
  // worker pool exists, so perf's inherit=1 covers every worker.
  obs::StartRunPerfCounters();
  obs::StartExporterFromEnv(name_);
  InstallCrashHooks(this);
}

int BenchTelemetry::Finish(int exit_code) {
  if (finished_) return exit_code;
  finished_ = true;
  // After a completed Finish the crash hooks must not touch this object
  // again: it lives on RunBench's stack, which is gone by atexit time.
  // (On the std::exit / signal paths the stack is never unwound, so the
  // pointer is still valid when the hooks fire.)
  g_active_telemetry = nullptr;
  // Stop the exporter before rendering the report so its final record is
  // on disk and its sampling cannot race the snapshot. On a fatal-signal
  // path joining the exporter thread could deadlock (it may be mid-write
  // or the signal may have landed on it), so abort without joining there —
  // the time-series file stays valid because records are whole lines.
  if (obs::RunExitCause().starts_with("signal:")) {
    obs::AbortGlobalExporter();
  } else {
    obs::StopGlobalExporter();
  }
  if (!report_path_.empty()) {
    obs::RunInfo info;
    info.name = name_;
    info.threads = DefaultThreadCount();
    info.wall_seconds = watch_.ElapsedSeconds();
    info.exit_code = exit_code;
    if (obs::AppendRunReport(report_path_, info)) {
      LogInfo("run report appended to %s", report_path_.c_str());
    } else {
      LogWarning("could not append run report to %s", report_path_.c_str());
    }
  }
  obs::FlushTrace();
  return exit_code;
}

int RunBench(int argc, char** argv, const char* name, int (*run)()) {
  BenchTelemetry telemetry(name, &argc, argv);
  return telemetry.Finish(run());
}

ExperimentContext MakeContext() {
  ExperimentOptions options;
  const char* cache_dir = std::getenv("KGC_CACHE_DIR");
  options.cache_dir = cache_dir != nullptr ? cache_dir : "kgc_cache";
  const char* epoch_scale = std::getenv("KGC_EPOCH_SCALE");
  if (epoch_scale != nullptr) {
    options.epoch_scale = std::atof(epoch_scale);
  }
  return ExperimentContext(std::move(options));
}

std::unique_ptr<RulePredictor> BuildAmie(const Dataset& dataset) {
  const AmieOptions options;
  std::vector<Rule> rules = MineRules(dataset.train_store(), options);
  return std::make_unique<RulePredictor>(std::move(rules),
                                         dataset.train_store(), options);
}

const std::vector<TripleRanks>& AmieRanks(ExperimentContext& context,
                                          const Dataset& dataset) {
  const auto amie = BuildAmie(dataset);
  return context.GetPredictorRanks(dataset, *amie, "amie");
}

std::unique_ptr<SimpleRuleModel> BuildSimpleModel(const Dataset& dataset) {
  // Rules come from full-dataset pair statistics (the paper's simple model,
  // §4.2.1); predictions read the training adjacency only.
  DetectorOptions options;
  const RedundancyCatalog catalog =
      RedundancyCatalog::Detect(dataset.all_store(), options);
  return std::make_unique<SimpleRuleModel>(dataset.train_store(), catalog);
}

std::string Mr(double value) { return FormatDouble(value, 1); }
std::string Pct(double fraction) { return FormatDouble(fraction * 100.0, 1); }
std::string Mrr(double value) { return FormatDouble(value, 3); }

std::vector<std::string> RawAndFilteredRow(const std::string& label,
                                           const LinkPredictionMetrics& m) {
  return {label,        Mr(m.mr),      Pct(m.hits10),  Mrr(m.mrr),
          Mr(m.fmr),    Pct(m.fhits10), Mrr(m.fmrr)};
}

bool ConsumeValueFlag(int* argc, char** argv, const char* name,
                      std::string* value) {
  bool found = false;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string v;
    if (MatchValueFlag(argv, *argc, &i, name, &v)) {
      *value = v;
      found = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
  return found;
}

bool ConsumeBoolFlag(int* argc, char** argv, const char* name) {
  bool found = false;
  int kept = 1;
  const std::string bare = name;
  const std::string prefix = bare + "=";
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == bare) {
      found = true;
    } else if (arg.starts_with(prefix)) {
      const std::string v = arg.substr(prefix.size());
      found = (v == "true" || v == "1");
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
  return found;
}

ClusteredL2Model::ClusteredL2Model(int32_t num_entities, size_t dim,
                                   int32_t num_relations, uint64_t seed)
    : num_entities_(num_entities),
      num_relations_(num_relations),
      dim_(dim),
      entities_(static_cast<size_t>(num_entities) * dim),
      relations_(static_cast<size_t>(num_relations) * dim) {
  Rng rng(seed);
  // Clusters of near-duplicates: one random direction per cluster, scaled
  // to a log-normal norm, each member jittered by ~1% of that norm. The
  // cluster size exceeds the bench K ladder's headline K, so a query's
  // top-K lives inside its anchor's cluster and the top-K distance stays
  // tiny relative to the inter-cluster norm spread.
  constexpr size_t kClusterSize = 16;
  std::vector<float> center(dim);
  double center_norm = 1.0;
  for (size_t e = 0; e < static_cast<size_t>(num_entities); ++e) {
    if (e % kClusterSize == 0) {
      double norm2 = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        center[j] = static_cast<float>(rng.Normal());
        norm2 += static_cast<double>(center[j]) * center[j];
      }
      center_norm = std::exp(rng.Normal(0.0, 0.5));
      const double scale = center_norm / std::sqrt(std::max(norm2, 1e-30));
      for (size_t j = 0; j < dim; ++j) {
        center[j] = static_cast<float>(center[j] * scale);
      }
    }
    const double jitter =
        0.01 * center_norm / std::sqrt(static_cast<double>(dim));
    float* row = &entities_[e * dim];
    for (size_t j = 0; j < dim; ++j) {
      row[j] = center[j] + static_cast<float>(rng.Normal(0.0, jitter));
    }
  }
  // Relations translate by far less than the inter-cluster spacing, so the
  // query stays near its anchor's cluster.
  const double rel_sd = 0.002 / std::sqrt(static_cast<double>(dim));
  for (float& x : relations_) {
    x = static_cast<float>(rng.Normal(0.0, rel_sd));
  }
}

void ClusteredL2Model::ScoreTails(int32_t head, int32_t relation,
                                  std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  auto q = vec::GetScratch(dim_, 0);
  BuildSweepQuery(/*tails=*/true, relation, head, q);
  vec::Ops().l2_rows(q.data(), entities_.data(),
                     static_cast<size_t>(num_entities_), dim_, dim_,
                     out.data());
  vec::Negate(out);
}

void ClusteredL2Model::ScoreHeads(int32_t relation, int32_t tail,
                                  std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  auto q = vec::GetScratch(dim_, 0);
  BuildSweepQuery(/*tails=*/false, relation, tail, q);
  vec::Ops().l2_rows(q.data(), entities_.data(),
                     static_cast<size_t>(num_entities_), dim_, dim_,
                     out.data());
  vec::Negate(out);
}

bool ClusteredL2Model::DescribeSweep(bool tails, int32_t relation,
                                     SweepSpec* spec) const {
  (void)tails;
  (void)relation;
  spec->kind = SweepKind::kL2;
  spec->rows = entities_.data();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = dim_;
  spec->dim = dim_;
  spec->query_len = dim_;
  spec->negate = true;
  spec->stable_rows = true;
  return true;
}

void ClusteredL2Model::BuildSweepQuery(bool tails, int32_t relation,
                                       int32_t anchor,
                                       std::span<float> query) const {
  const float* av = &entities_[static_cast<size_t>(anchor) * dim_];
  const float* rv = &relations_[static_cast<size_t>(relation) * dim_];
  for (size_t j = 0; j < dim_; ++j) {
    query[j] = tails ? av[j] + rv[j] : av[j] - rv[j];
  }
}

std::vector<TopKQuery> MakeTopKBenchQueries(int32_t num_entities,
                                            int32_t num_relations,
                                            size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<TopKQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TopKQuery q;
    q.tails = (i % 2) == 0;
    q.relation =
        static_cast<RelationId>(rng.Uniform(static_cast<uint64_t>(num_relations)));
    q.anchor =
        static_cast<EntityId>(rng.Uniform(static_cast<uint64_t>(num_entities)));
    q.watch = {
        static_cast<EntityId>(rng.Uniform(static_cast<uint64_t>(num_entities)))};
    queries.push_back(std::move(q));
  }
  return queries;
}

TopKBenchPoint MeasureTopKRetrieval(const LinkPredictor& predictor,
                                    const std::string& label,
                                    std::span<const TopKQuery> queries, int k,
                                    bool prune, bool cross_check, int reps) {
  TopKBenchPoint point;
  point.label = label;
  point.num_entities = predictor.num_entities();
  point.num_queries = queries.size();
  point.k = k;
  point.prune = prune;

  TopKOptions options;
  options.k = k;
  options.prune = prune;
  options.threads = 1;  // oracle is serial; compare core-for-core
  const TopKEngine engine(predictor, options);

  if (cross_check) {
    TopKOptions checked = options;
    checked.cross_check = true;  // aborts on any engine/oracle mismatch
    TopKEngine(predictor, checked).Run(queries, nullptr);
    point.cross_checked = true;
  }

  // Counter deltas over exactly one engine run (counters are cumulative
  // per process and thread-count independent).
  auto& registry = obs::Registry::Get();
  obs::Counter& tiles = registry.GetCounter(obs::kTopKTilesPruned);
  obs::Counter& scored = registry.GetCounter(obs::kTopKEntitiesScored);
  obs::Counter& pushes = registry.GetCounter(obs::kTopKHeapPushes);
  obs::Counter& batched = registry.GetCounter(obs::kTopKQueriesBatched);
  const uint64_t tiles0 = tiles.value();
  const uint64_t scored0 = scored.value();
  const uint64_t pushes0 = pushes.value();
  const uint64_t batched0 = batched.value();
  engine.Run(queries, nullptr);
  point.tiles_pruned = tiles.value() - tiles0;
  point.entities_scored = scored.value() - scored0;
  point.heap_pushes = pushes.value() - pushes0;
  point.queries_batched = batched.value() - batched0;
  const double swept = static_cast<double>(point.num_queries) *
                       static_cast<double>(point.num_entities);
  point.scored_fraction =
      swept > 0 ? static_cast<double>(point.entities_scored) / swept : 0.0;

  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    engine.Run(queries, nullptr);
    const double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < point.engine_seconds) {
      point.engine_seconds = seconds;
    }
  }
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (const TopKQuery& query : queries) {
      TopKEngine::OracleTopK(predictor, query, k, nullptr);
    }
    const double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < point.oracle_seconds) {
      point.oracle_seconds = seconds;
    }
  }
  point.speedup = point.engine_seconds > 0
                      ? point.oracle_seconds / point.engine_seconds
                      : 0.0;
  return point;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Datasets are synthetic analogues (see DESIGN.md); compare the\n"
              "shape of the numbers with the paper, not absolute values.\n");
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace kgc::bench
