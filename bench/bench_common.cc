#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace kgc::bench {

ExperimentContext MakeContext() {
  ExperimentOptions options;
  const char* cache_dir = std::getenv("KGC_CACHE_DIR");
  options.cache_dir = cache_dir != nullptr ? cache_dir : "kgc_cache";
  const char* epoch_scale = std::getenv("KGC_EPOCH_SCALE");
  if (epoch_scale != nullptr) {
    options.epoch_scale = std::atof(epoch_scale);
  }
  return ExperimentContext(std::move(options));
}

std::unique_ptr<RulePredictor> BuildAmie(const Dataset& dataset) {
  const AmieOptions options;
  std::vector<Rule> rules = MineRules(dataset.train_store(), options);
  return std::make_unique<RulePredictor>(std::move(rules),
                                         dataset.train_store(), options);
}

const std::vector<TripleRanks>& AmieRanks(ExperimentContext& context,
                                          const Dataset& dataset) {
  const auto amie = BuildAmie(dataset);
  return context.GetPredictorRanks(dataset, *amie, "amie");
}

std::unique_ptr<SimpleRuleModel> BuildSimpleModel(const Dataset& dataset) {
  // Rules come from full-dataset pair statistics (the paper's simple model,
  // §4.2.1); predictions read the training adjacency only.
  DetectorOptions options;
  const RedundancyCatalog catalog =
      RedundancyCatalog::Detect(dataset.all_store(), options);
  return std::make_unique<SimpleRuleModel>(dataset.train_store(), catalog);
}

std::string Mr(double value) { return FormatDouble(value, 1); }
std::string Pct(double fraction) { return FormatDouble(fraction * 100.0, 1); }
std::string Mrr(double value) { return FormatDouble(value, 3); }

std::vector<std::string> RawAndFilteredRow(const std::string& label,
                                           const LinkPredictionMetrics& m) {
  return {label,        Mr(m.mr),      Pct(m.hits10),  Mrr(m.mrr),
          Mr(m.fmr),    Pct(m.fhits10), Mrr(m.fmrr)};
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Datasets are synthetic analogues (see DESIGN.md); compare the\n"
              "shape of the numbers with the paper, not absolute values.\n");
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace kgc::bench
