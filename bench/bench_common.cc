#include "bench/bench_common.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/exporter.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace kgc::bench {
namespace {

// If `arg` is `prefix` + value, stores value and returns true.
bool ConsumeFlag(const std::string& arg, const char* prefix,
                 std::string* value) {
  if (!arg.starts_with(prefix)) return false;
  *value = arg.substr(std::string(prefix).size());
  return true;
}

// The telemetry bracket the crash hooks flush. One per process: bench
// binaries construct exactly one BenchTelemetry, and the hooks are only
// meaningful for it.
BenchTelemetry* g_active_telemetry = nullptr;

struct SignalName {
  int signal;
  const char* name;
};
constexpr SignalName kFatalSignals[] = {
    {SIGSEGV, "SIGSEGV"}, {SIGBUS, "SIGBUS"}, {SIGFPE, "SIGFPE"},
    {SIGILL, "SIGILL"},   {SIGABRT, "SIGABRT"}, {SIGTERM, "SIGTERM"},
    {SIGINT, "SIGINT"},
};

// Fatal-signal hook: attribute the run, flush report + trace, then die
// with the original signal so the parent (tools/kgc_suite) still sees the
// true exit status. Rendering JSON is not async-signal-safe; on a crash
// path a best-effort report beats none, and the re-raise below bounds the
// damage to losing the report line.
void CrashSignalHandler(int signal) {
  const char* name = "unknown";
  for (const SignalName& s : kFatalSignals) {
    if (s.signal == signal) name = s.name;
  }
  obs::SetRunExitCause(std::string("signal:") + name);
  if (g_active_telemetry != nullptr) {
    g_active_telemetry->Finish(128 + signal);
  }
  std::signal(signal, SIG_DFL);
  std::raise(signal);
}

// atexit fallback: a library called std::exit without going through
// RunBench (the deadline handler does exactly that). Finish is idempotent,
// so the normal path — where RunBench already finished — is a no-op.
void FlushReportAtExit() {
  if (g_active_telemetry == nullptr) return;
  const std::string cause = obs::RunExitCause();
  if (cause.empty()) obs::SetRunExitCause("early_exit");
  const int exit_code =
      cause.starts_with("deadline:") ? kDeadlineExitCode : -1;
  g_active_telemetry->Finish(exit_code);
}

void InstallCrashHooks(BenchTelemetry* telemetry) {
  g_active_telemetry = telemetry;
  static const bool installed = [] {
    for (const SignalName& s : kFatalSignals) {
      std::signal(s.signal, CrashSignalHandler);
    }
    std::atexit(FlushReportAtExit);
    return true;
  }();
  (void)installed;
}

}  // namespace

BenchTelemetry::BenchTelemetry(const char* name, int* argc, char** argv)
    : name_(name), report_path_(obs::MetricsPathFromEnv()) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ConsumeFlag(arg, "--report=", &value)) {
      report_path_ = value;
    } else if (ConsumeFlag(arg, "--trace=", &value)) {
      obs::StartTracing(value);
    } else if (ConsumeFlag(arg, "--log-level=", &value)) {
      LogLevel level;
      if (ParseLogLevel(value, &level)) {
        SetLogLevel(level);
      } else {
        LogWarning("unknown --log-level value '%s' ignored", value.c_str());
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  argv[kept] = nullptr;
  if (!report_path_.empty()) obs::EnableSpanRollups();
  // Run-wide telemetry threads/counters start here — before the lazy
  // worker pool exists, so perf's inherit=1 covers every worker.
  obs::StartRunPerfCounters();
  obs::StartExporterFromEnv(name_);
  InstallCrashHooks(this);
}

int BenchTelemetry::Finish(int exit_code) {
  if (finished_) return exit_code;
  finished_ = true;
  // After a completed Finish the crash hooks must not touch this object
  // again: it lives on RunBench's stack, which is gone by atexit time.
  // (On the std::exit / signal paths the stack is never unwound, so the
  // pointer is still valid when the hooks fire.)
  g_active_telemetry = nullptr;
  // Stop the exporter before rendering the report so its final record is
  // on disk and its sampling cannot race the snapshot. On a fatal-signal
  // path joining the exporter thread could deadlock (it may be mid-write
  // or the signal may have landed on it), so abort without joining there —
  // the time-series file stays valid because records are whole lines.
  if (obs::RunExitCause().starts_with("signal:")) {
    obs::AbortGlobalExporter();
  } else {
    obs::StopGlobalExporter();
  }
  if (!report_path_.empty()) {
    obs::RunInfo info;
    info.name = name_;
    info.threads = DefaultThreadCount();
    info.wall_seconds = watch_.ElapsedSeconds();
    info.exit_code = exit_code;
    if (obs::AppendRunReport(report_path_, info)) {
      LogInfo("run report appended to %s", report_path_.c_str());
    } else {
      LogWarning("could not append run report to %s", report_path_.c_str());
    }
  }
  obs::FlushTrace();
  return exit_code;
}

int RunBench(int argc, char** argv, const char* name, int (*run)()) {
  BenchTelemetry telemetry(name, &argc, argv);
  return telemetry.Finish(run());
}

ExperimentContext MakeContext() {
  ExperimentOptions options;
  const char* cache_dir = std::getenv("KGC_CACHE_DIR");
  options.cache_dir = cache_dir != nullptr ? cache_dir : "kgc_cache";
  const char* epoch_scale = std::getenv("KGC_EPOCH_SCALE");
  if (epoch_scale != nullptr) {
    options.epoch_scale = std::atof(epoch_scale);
  }
  return ExperimentContext(std::move(options));
}

std::unique_ptr<RulePredictor> BuildAmie(const Dataset& dataset) {
  const AmieOptions options;
  std::vector<Rule> rules = MineRules(dataset.train_store(), options);
  return std::make_unique<RulePredictor>(std::move(rules),
                                         dataset.train_store(), options);
}

const std::vector<TripleRanks>& AmieRanks(ExperimentContext& context,
                                          const Dataset& dataset) {
  const auto amie = BuildAmie(dataset);
  return context.GetPredictorRanks(dataset, *amie, "amie");
}

std::unique_ptr<SimpleRuleModel> BuildSimpleModel(const Dataset& dataset) {
  // Rules come from full-dataset pair statistics (the paper's simple model,
  // §4.2.1); predictions read the training adjacency only.
  DetectorOptions options;
  const RedundancyCatalog catalog =
      RedundancyCatalog::Detect(dataset.all_store(), options);
  return std::make_unique<SimpleRuleModel>(dataset.train_store(), catalog);
}

std::string Mr(double value) { return FormatDouble(value, 1); }
std::string Pct(double fraction) { return FormatDouble(fraction * 100.0, 1); }
std::string Mrr(double value) { return FormatDouble(value, 3); }

std::vector<std::string> RawAndFilteredRow(const std::string& label,
                                           const LinkPredictionMetrics& m) {
  return {label,        Mr(m.mr),      Pct(m.hits10),  Mrr(m.mrr),
          Mr(m.fmr),    Pct(m.fhits10), Mrr(m.fmrr)};
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Datasets are synthetic analogues (see DESIGN.md); compare the\n"
              "shape of the numbers with the paper, not absolute values.\n");
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace kgc::bench
