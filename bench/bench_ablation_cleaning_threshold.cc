// Ablation: sensitivity of the cleaning pipeline to the detector threshold
// theta (the paper fixes theta1 = theta2 = 0.8; Toutanova & Chen "likely"
// used different thresholds for FB15k-237, §5.1). Sweeps theta and reports
// how many relations are collapsed, how much leakage survives, and how the
// de-leaked TransE accuracy moves.

#include "bench/bench_common.h"
#include "redundancy/cleaner.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Ablation: detector threshold vs cleaning outcome",
              "design-choice ablation for §4.2.2/§5.1 (theta = 0.8 in the "
              "paper)");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Fb15k();
  const Dataset& original = suite.kg.dataset;

  AsciiTable table("FB15k-syn -> FB15k-237-like cleaning as theta varies");
  table.SetHeader({"theta", "#relations dropped", "train kept", "test kept",
                   "residual reverse leakage", "TransE FMRR'"});
  // The planted reverse pairs have in-dataset coverage ~0.96: thresholds
  // beyond that make the relation-collapsing step miss them entirely,
  // leaving only the linked-entity-pair filter to de-leak the test set.
  for (double theta : {0.6, 0.8, 0.9, 0.96, 0.99}) {
    DetectorOptions options;
    options.theta1 = theta;
    options.theta2 = theta;
    const RedundancyCatalog catalog =
        RedundancyCatalog::Detect(original.all_store(), options);
    CleaningReport report;
    Dataset cleaned = MakeFb237Like(
        original, catalog, StrFormat("FB15k-237-syn-th%.2f", theta), &report);

    // Residual leakage measured against the oracle.
    const ReverseLeakageStats leakage =
        ComputeReverseLeakage(cleaned, suite.oracle);

    const LinkPredictionMetrics metrics =
        ComputeMetrics(context.GetRanks(cleaned, ModelType::kTransE));
    table.AddRow({FormatDouble(theta, 2),
                  StrFormat("%zu", report.dropped_relations.size()),
                  StrFormat("%zu", cleaned.train().size()),
                  StrFormat("%zu", cleaned.test().size()),
                  FormatPercent(leakage.test_reverse_fraction),
                  Mrr(metrics.fmrr)});
  }
  table.Print();
  std::printf(
      "The pipeline is robust across theta: even at 0.99, where relation\n"
      "collapsing misses every reverse pair, the second cleaning step (drop\n"
      "valid/test triples whose entity pair is linked in training) removes\n"
      "the leakage on its own -- at the cost of discarding a much larger\n"
      "share of the test set and keeping all the redundant training triples.\n"
      "Low thresholds do the de-leaking the cheap way, by collapsing the\n"
      "redundant relations outright.\n");
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_ablation_cleaning_threshold", kgc::bench::Run);
}
