// Table 11: link prediction on YAGO3-10 vs YAGO3-10-DR, plus the paper's
// observation that the two near-duplicate relations carry the performance.

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Table 11: link prediction on YAGO3-10 and YAGO3-10-DR",
              "Akrami et al., SIGMOD'20, Table 11 and §4.2.2(2)");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Yago3();

  for (const Dataset* dataset : {&suite.kg.dataset, &suite.cleaned}) {
    // Overlap the per-model ranking sweeps before reading them one by one.
    context.WarmRanks(*dataset, FigureModelLineup());
    AsciiTable table("Results on " + dataset->name());
    table.SetHeader({"Model", "FH@1", "FMR", "FH@10", "FMRR"});
    auto add = [&](const std::string& name,
                   const LinkPredictionMetrics& m) {
      table.AddRow({name, Pct(m.fhits1), Mr(m.fmr), Pct(m.fhits10),
                    Mrr(m.fmrr)});
    };
    for (ModelType type : FigureModelLineup()) {
      add(ModelTypeName(type),
          ComputeMetrics(context.GetRanks(*dataset, type)));
    }
    add("AMIE", ComputeMetrics(AmieRanks(context, *dataset)));
    table.Print();
  }

  // §4.2.2(2): RotatE on the two duplicate relations vs everything else.
  const Dataset& original = suite.kg.dataset;
  const auto& rotate_ranks = context.GetRanks(original, ModelType::kRotatE);
  std::vector<bool> duplicate_triples(rotate_ranks.size(), false);
  std::vector<bool> other_triples(rotate_ranks.size(), false);
  for (size_t i = 0; i < rotate_ranks.size(); ++i) {
    bool is_duplicate = false;
    for (const RelationPairOverlap& pair : suite.oracle.duplicate_pairs) {
      if (rotate_ranks[i].triple.relation == pair.r1 ||
          rotate_ranks[i].triple.relation == pair.r2) {
        is_duplicate = true;
      }
    }
    duplicate_triples[i] = is_duplicate;
    other_triples[i] = !is_duplicate;
  }
  const LinkPredictionMetrics on_duplicates =
      ComputeMetricsWhere(rotate_ranks, duplicate_triples);
  const LinkPredictionMetrics on_others =
      ComputeMetricsWhere(rotate_ranks, other_triples);
  AsciiTable split("RotatE on the two near-duplicate relations vs the rest "
                   "(paper: FMRR 0.612 vs 0.304)");
  split.SetHeader({"subset", "#test", "FMR", "FH@10", "FH@1", "FMRR"});
  split.AddRow({"isAffiliatedTo + playsFor",
                StrFormat("%zu", on_duplicates.num_triples),
                Mr(on_duplicates.fmr), Pct(on_duplicates.fhits10),
                Pct(on_duplicates.fhits1), Mrr(on_duplicates.fmrr)});
  split.AddRow({"all other relations",
                StrFormat("%zu", on_others.num_triples), Mr(on_others.fmr),
                Pct(on_others.fhits10), Pct(on_others.fhits1),
                Mrr(on_others.fmrr)});
  split.Print();
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table11_yago", kgc::bench::Run);
}
