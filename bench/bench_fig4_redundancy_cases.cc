// Figure 4: bitmap classification of FB15k's test triples by the redundant
// counterparts available to a model (reverse / duplicate, in train / test).

#include <algorithm>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Figure 4: redundancy cases in the FB15k test set",
              "Akrami et al., SIGMOD'20, Figure 4 and §4.2.2");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Fb15k();

  // Classified against the oracle catalog, as the paper classifies against
  // the Freebase snapshot's metadata.
  const RedundancyBitmap bitmap =
      ComputeRedundancyBitmap(suite.kg.dataset, suite.oracle);
  const size_t total = std::max<size_t>(bitmap.cases.size(), 1);

  AsciiTable table("Bitmap code: [reverse|dup in TRAIN | reverse|dup in TEST]");
  table.SetHeader({"case", "count", "share", "paper share"});
  struct PaperShare {
    const char* code;
    const char* share;
  };
  const PaperShare paper[] = {{"1000", "68%"}, {"0000", "18%"},
                              {"0010", "8%"},  {"0100", "3%"},
                              {"1100", "2%"}};
  std::vector<size_t> order(16);
  for (size_t i = 0; i < 16; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return bitmap.histogram[a] > bitmap.histogram[b];
  });
  for (size_t c : order) {
    if (bitmap.histogram[c] == 0) continue;
    const std::string code = RedundancyCaseName(static_cast<uint8_t>(c));
    std::string paper_share = "<1%";
    for (const PaperShare& p : paper) {
      if (code == p.code) paper_share = p.share;
    }
    table.AddRow({code, StrFormat("%zu", bitmap.histogram[c]),
                  FormatPercent(static_cast<double>(bitmap.histogram[c]) /
                                static_cast<double>(total)),
                  paper_share});
  }
  table.Print();

  AsciiTable counts("Counts by redundancy type (paper §4.2.2)");
  counts.SetHeader({"test triples with ...", "count", "paper (FB15k)"});
  counts.AddRow({"reverse in train", StrFormat("%zu", bitmap.reverse_in_train),
                 "41,529"});
  counts.AddRow({"duplicate in train",
                 StrFormat("%zu", bitmap.duplicate_in_train), "2,701"});
  counts.AddRow({"reverse-duplicate in train",
                 StrFormat("%zu", bitmap.reverse_duplicate_in_train),
                 "1,847"});
  counts.AddRow({"reverse in test", StrFormat("%zu", bitmap.reverse_in_test),
                 "4,992"});
  counts.AddRow({"duplicate in test",
                 StrFormat("%zu", bitmap.duplicate_in_test), "328"});
  counts.AddRow({"reverse-duplicate in test",
                 StrFormat("%zu", bitmap.reverse_duplicate_in_test), "249"});
  counts.Print();
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_fig4_redundancy_cases", kgc::bench::Run);
}
