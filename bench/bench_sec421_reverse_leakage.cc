// §4.2.1 headline statistics: reverse-pair fractions in FB15k and WN18, and
// the FHits@1 of the trivial reverse-rule models (data-driven simple model
// vs the reverse_property oracle).

#include "bench/bench_common.h"
#include "eval/ranker.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

void RunSuite(ExperimentContext& context, const BenchmarkSuite& suite,
              double paper_train_pct, double paper_test_pct,
              double paper_simple_fh1) {
  const Dataset& dataset = suite.kg.dataset;

  // Leakage measured against the oracle catalog (the paper reads reverse
  // pairs out of the Freebase snapshot's reverse_property).
  const ReverseLeakageStats leakage =
      ComputeReverseLeakage(dataset, suite.oracle);

  AsciiTable table(StrFormat("Reverse leakage in %s", dataset.name().c_str()));
  table.SetHeader({"statistic", "measured", "paper"});
  table.AddRow({"train triples in reverse pairs",
                StrFormat("%zu (%s)", leakage.train_triples_in_reverse_pairs,
                          FormatPercent(leakage.train_reverse_fraction).c_str()),
                FormatPercent(paper_train_pct)});
  table.AddRow({"test triples with reverse in train",
                StrFormat("%zu (%s)",
                          leakage.test_triples_with_reverse_in_train,
                          FormatPercent(leakage.test_reverse_fraction).c_str()),
                FormatPercent(paper_test_pct)});

  // FHits@1 of the data-driven >0.8-intersection simple model...
  const auto simple = BuildSimpleModel(dataset);
  const LinkPredictionMetrics simple_metrics = ComputeMetrics(
      context.GetPredictorRanks(dataset, *simple, "simple_rule"));
  table.AddRow({"simple rule model FHits@1",
                FormatPercent(simple_metrics.fhits1),
                FormatPercent(paper_simple_fh1)});

  // ...and of the oracle variant (rules straight from reverse_property).
  const SimpleRuleModel oracle_model(dataset.train_store(), suite.oracle);
  const LinkPredictionMetrics oracle_metrics = ComputeMetrics(
      context.GetPredictorRanks(dataset, oracle_model, "oracle_rule"));
  table.AddRow({"reverse_property oracle FHits@1",
                FormatPercent(oracle_metrics.fhits1), "70.3% (FB15k)"});
  table.Print();
}

int Run() {
  PrintHeader("Section 4.2.1: data leakage from reverse triples",
              "Akrami et al., SIGMOD'20, §4.2.1");
  ExperimentContext context = MakeContext();
  RunSuite(context, context.Fb15k(), 0.70, 0.703, 0.716);
  RunSuite(context, context.Wn18(), 0.925, 0.93, 0.964);
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_sec421_reverse_leakage", kgc::bench::Run);
}
