// Tables 3 + 4: link prediction on Cartesian product relations using the
// Cartesian-product property, vs TransE, judged against both the benchmark
// dataset and the full world graph (the Freebase-snapshot analogue).

#include "bench/bench_common.h"
#include "eval/ranker.h"
#include "redundancy/detectors.h"
#include "rules/cartesian_predictor.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader(
      "Tables 3/4: the Cartesian-product property beats TransE, especially "
      "under the world-graph ground truth",
      "Akrami et al., SIGMOD'20, Tables 3 and 4, §4.3");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Fb15k();
  const Dataset& dataset = suite.kg.dataset;

  // Detect Cartesian relations over the dataset (paper: over FB15k training
  // data and the snapshot).
  const auto cartesian = FindCartesianRelations(dataset.all_store());
  std::vector<RelationId> relations;
  AsciiTable legend("Table 4: the Cartesian product relations used below");
  legend.SetHeader({"id", "relation", "|S|x|O|", "density"});
  for (size_t i = 0; i < cartesian.size(); ++i) {
    relations.push_back(cartesian[i].relation);
    legend.AddRow({StrFormat("r%zu", i + 1),
                   dataset.vocab().RelationName(cartesian[i].relation),
                   StrFormat("%zux%zu", cartesian[i].num_subjects,
                             cartesian[i].num_objects),
                   FormatDouble(cartesian[i].density, 2)});
  }
  legend.Print();

  // Test triples restricted to those relations.
  TripleList cartesian_test;
  for (const Triple& t : dataset.test()) {
    for (RelationId r : relations) {
      if (t.relation == r) cartesian_test.push_back(t);
    }
  }

  // TransE, dataset ground truth.
  const KgeModel& transe = context.GetModel(dataset, ModelType::kTransE);
  const auto transe_ranks = RankTriples(transe, dataset, cartesian_test);

  // Cartesian-property predictor, dataset and world ground truth.
  const CartesianPredictor rule(dataset.train_store(), relations);
  const auto rule_ranks = RankTriples(rule, dataset, cartesian_test);
  RankerOptions world_options;
  world_options.filter = &suite.kg.world_store();
  const auto rule_world_ranks =
      RankTriples(rule, dataset, cartesian_test, world_options);

  AsciiTable table("Table 3: per-relation results");
  table.SetHeader({"rel", "#test",
                   "TransE FMR", "TransE FH10", "TransE FMRR",
                   "Cart FMR", "Cart FH10", "Cart FMRR",
                   "Cart FMR(w)", "Cart FH10(w)", "Cart FMRR(w)"});
  for (size_t i = 0; i < relations.size(); ++i) {
    const RelationId r = relations[i];
    auto subset = [&](const std::vector<TripleRanks>& ranks) {
      std::vector<bool> keep(ranks.size());
      for (size_t k = 0; k < ranks.size(); ++k) {
        keep[k] = ranks[k].triple.relation == r;
      }
      return ComputeMetricsWhere(ranks, keep);
    };
    const LinkPredictionMetrics te = subset(transe_ranks);
    const LinkPredictionMetrics cd = subset(rule_ranks);
    const LinkPredictionMetrics cw = subset(rule_world_ranks);
    if (te.num_triples == 0) continue;
    table.AddRow({StrFormat("r%zu", i + 1),
                  StrFormat("%zu", te.num_triples), Mr(te.fmr),
                  Pct(te.fhits10), Mrr(te.fmrr), Mr(cd.fmr), Pct(cd.fhits10),
                  Mrr(cd.fmrr), Mr(cw.fmr), Pct(cw.fhits10), Mrr(cw.fmrr)});
  }
  table.AddSeparator();
  const LinkPredictionMetrics te_all = ComputeMetrics(transe_ranks);
  const LinkPredictionMetrics cd_all = ComputeMetrics(rule_ranks);
  const LinkPredictionMetrics cw_all = ComputeMetrics(rule_world_ranks);
  table.AddRow({"all", StrFormat("%zu", cartesian_test.size()),
                Mr(te_all.fmr), Pct(te_all.fhits10), Mrr(te_all.fmrr),
                Mr(cd_all.fmr), Pct(cd_all.fhits10), Mrr(cd_all.fmrr),
                Mr(cw_all.fmr), Pct(cw_all.fhits10), Mrr(cw_all.fmrr)});
  table.Print();
  std::printf(
      "(w) = filtered against the world graph, the stand-in for the May 2013\n"
      "Freebase snapshot: correct predictions absent from the benchmark stop\n"
      "being penalized, so the Cartesian rule's numbers rise further.\n");
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table3_cartesian_predictor", kgc::bench::Run);
}
