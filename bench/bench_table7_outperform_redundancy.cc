// Table 7: of the test triples on which each TransE successor outperforms
// TransE, what share has reverse or duplicate counterparts in the training
// set? (High shares verify that the successors' edge lives in the leakage.)

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

void RunSuite(ExperimentContext& context, const BenchmarkSuite& suite) {
  const Dataset& dataset = suite.kg.dataset;
  const RedundancyBitmap bitmap =
      ComputeRedundancyBitmap(dataset, suite.oracle);
  std::vector<bool> redundant(bitmap.cases.size());
  for (size_t i = 0; i < bitmap.cases.size(); ++i) {
    redundant[i] = HasTrainRedundancy(bitmap.cases[i]);
  }

  const auto& baseline = context.GetRanks(dataset, ModelType::kTransE);

  AsciiTable table(StrFormat(
      "%s: share of triples beating TransE that are train-redundant",
      dataset.name().c_str()));
  table.SetHeader({"Model", "FMR", "FHits@10", "FHits@1", "FMRR"});
  const ModelType challengers[] = {ModelType::kDistMult, ModelType::kComplEx,
                                   ModelType::kConvE, ModelType::kRotatE,
                                   ModelType::kTuckER};
  for (ModelType type : challengers) {
    const OutperformRedundancyShare share = ComputeOutperformRedundancy(
        context.GetRanks(dataset, type), baseline, redundant);
    table.AddRow({ModelTypeName(type), FormatDouble(share.fmr, 1) + "%",
                  FormatDouble(share.fhits10, 1) + "%",
                  FormatDouble(share.fhits1, 1) + "%",
                  FormatDouble(share.fmrr, 1) + "%"});
  }
  // Base rate for context: the redundant share of the whole test set.
  size_t redundant_count = 0;
  for (bool b : redundant) redundant_count += b ? 1 : 0;
  table.AddSeparator();
  table.AddRow({"(base rate: redundant share of all test triples)",
                FormatPercent(static_cast<double>(redundant_count) /
                              static_cast<double>(redundant.size()))});
  table.Print();
}

int Run() {
  PrintHeader(
      "Table 7: triples where successors outperform TransE are the leaky "
      "ones",
      "Akrami et al., SIGMOD'20, Table 7");
  ExperimentContext context = MakeContext();
  RunSuite(context, context.Fb15k());
  RunSuite(context, context.Wn18());
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table7_outperform_redundancy", kgc::bench::Run);
}
