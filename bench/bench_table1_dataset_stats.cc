// Table 1: Statistics of evaluation datasets.

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

void AddRow(AsciiTable& table, const Dataset& dataset) {
  table.AddRow({dataset.name(), StrFormat("%d", dataset.CountUsedEntities()),
                StrFormat("%d", dataset.CountUsedRelations()),
                StrFormat("%zu", dataset.train().size()),
                StrFormat("%zu", dataset.valid().size()),
                StrFormat("%zu", dataset.test().size())});
}

int Run() {
  PrintHeader("Table 1: Statistics of evaluation datasets",
              "Akrami et al., SIGMOD'20, Table 1");
  ExperimentContext context = MakeContext();

  AsciiTable table;
  table.SetHeader({"Dataset", "#entities", "#relations", "#train", "#valid",
                   "#test"});
  AddRow(table, context.Fb15k().kg.dataset);
  AddRow(table, context.Fb15k().cleaned);
  AddRow(table, context.Wn18().kg.dataset);
  AddRow(table, context.Wn18().cleaned);
  AddRow(table, context.Yago3().kg.dataset);
  AddRow(table, context.Yago3().cleaned);
  table.Print();
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table1_dataset_stats", kgc::bench::Run);
}
