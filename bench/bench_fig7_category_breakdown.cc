// Figure 7: on FB15k-237, which model attains the best FMRR, broken down by
// relation category (1-to-1 / 1-to-n / n-to-1 / n-to-m).

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Figure 7: best-FMRR model break-down by relation category "
              "(FB15k-237)",
              "Akrami et al., SIGMOD'20, Figure 7");
  ExperimentContext context = MakeContext();
  const Dataset& dataset = context.Fb15k().cleaned;

  std::vector<LabeledRanks> models;
  for (ModelType type : FigureModelLineup()) {
    models.push_back({ModelTypeName(type), &context.GetRanks(dataset, type)});
  }
  models.push_back({"AMIE", &AmieRanks(context, dataset)});

  const auto categories = CategorizeRelations(dataset.train_store());
  const auto counts = CountBestRelationsByCategory(models, categories);

  AsciiTable table(
      "Figure 7a: #relations with the best FMRR, by model and category");
  table.SetHeader({"Model", "1-to-1", "1-to-n", "n-to-1", "n-to-m"});
  std::array<int, 4> totals = {};
  for (size_t m = 0; m < models.size(); ++m) {
    table.AddRow({models[m].model, StrFormat("%d", counts[m][0]),
                  StrFormat("%d", counts[m][1]), StrFormat("%d", counts[m][2]),
                  StrFormat("%d", counts[m][3])});
    for (size_t c = 0; c < 4; ++c) totals[c] += counts[m][c];
  }
  table.Print();

  AsciiTable breakdown(
      "Figure 7b: share of category wins per model (ties shared)");
  breakdown.SetHeader({"Model", "1-to-1", "1-to-n", "n-to-1", "n-to-m"});
  for (size_t m = 0; m < models.size(); ++m) {
    std::vector<std::string> row = {models[m].model};
    for (size_t c = 0; c < 4; ++c) {
      row.push_back(totals[c] > 0
                        ? FormatPercent(static_cast<double>(counts[m][c]) /
                                        totals[c])
                        : "-");
    }
    breakdown.AddRow(std::move(row));
  }
  breakdown.Print();
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_fig7_category_breakdown", kgc::bench::Run);
}
