// Micro-benchmarks (google-benchmark): scoring-function and ranking
// throughput per model, plus triple-store lookup costs. These are the
// throughput primitives the whole harness is built on.
//
// After the google-benchmark suite, a thread-scaling section times the full
// RankTriples sweep at 1 / 2 / N worker threads and writes the results as
// machine-readable JSON to BENCH_scoring.json in the working directory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <thread>

#include "bench/bench_common.h"
#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/model.h"
#include "util/parallel.h"

namespace kgc {
namespace {

const SyntheticKg& SharedKg() {
  static const SyntheticKg* kg = new SyntheticKg(GenerateTiny(11));
  return *kg;
}

std::unique_ptr<KgeModel> MakeModel(ModelType type) {
  const SyntheticKg& kg = SharedKg();
  return CreateModel(type, kg.dataset.num_entities(),
                     kg.dataset.num_relations(), DefaultHyperParams(type));
}

void BM_Score(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  EntityId h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Score(h, 1, (h + 7) % 100));
    h = (h + 1) % 100;
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_Score)->DenseRange(0, 9, 1);

void BM_ScoreTails(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  std::vector<float> scores(static_cast<size_t>(model->num_entities()));
  EntityId h = 0;
  for (auto _ : state) {
    model->ScoreTails(h, 1, scores);
    benchmark::DoNotOptimize(scores.data());
    h = (h + 1) % 100;
  }
  state.SetItemsProcessed(state.iterations() * model->num_entities());
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_ScoreTails)->DenseRange(0, 9, 1);

void BM_ApplyGradient(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  EntityId h = 0;
  for (auto _ : state) {
    model->ApplyGradient(Triple{h, 1, (h + 7) % 100}, -0.5f, 0.01f);
    h = (h + 1) % 100;
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_ApplyGradient)->DenseRange(0, 9, 1);

void BM_TripleStoreContains(benchmark::State& state) {
  const TripleStore& store = SharedKg().dataset.train_store();
  const TripleList& triples = SharedKg().dataset.train();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Contains(triples[i % triples.size()]));
    ++i;
  }
}
BENCHMARK(BM_TripleStoreContains);

void BM_TripleStoreTails(benchmark::State& state) {
  const TripleStore& store = SharedKg().dataset.train_store();
  const TripleList& triples = SharedKg().dataset.train();
  size_t i = 0;
  for (auto _ : state) {
    const Triple& t = triples[i % triples.size()];
    benchmark::DoNotOptimize(store.Tails(t.head, t.relation).size());
    ++i;
  }
}
BENCHMARK(BM_TripleStoreTails);

void BM_RankOneTriple(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const SyntheticKg& kg = SharedKg();
  const auto model = MakeModel(type);
  TripleList one = {kg.dataset.test().front()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankTriples(*model, kg.dataset, one));
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_RankOneTriple)->Arg(0)->Arg(6)->Arg(8)->Arg(9);

// --- Thread scaling --------------------------------------------------------

struct ScalingPoint {
  int threads = 0;
  double seconds = 0.0;
  double triples_per_sec = 0.0;
};

/// Best-of-3 wall time of a full RankTriples sweep at `threads` workers.
ScalingPoint MeasureRankingThroughput(const KgeModel& model,
                                      const Dataset& dataset, int threads) {
  RankerOptions options;
  options.threads = threads;
  ScalingPoint point;
  point.threads = threads;
  point.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto ranks = RankTriples(model, dataset, dataset.test(), options);
    benchmark::DoNotOptimize(ranks.data());
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    point.seconds = std::min(point.seconds, elapsed.count());
  }
  point.triples_per_sec =
      static_cast<double>(dataset.test().size()) / point.seconds;
  return point;
}

/// Times the ranking sweep at 1 / 2 / N threads (N = the KGC_THREADS /
/// hardware default) plus 8 as a fixed reference point, checks the outputs
/// stay bit-identical, and writes BENCH_scoring.json.
int RunThreadScaling() {
  const SyntheticKg& kg = SharedKg();
  const auto model = MakeModel(ModelType::kDistMult);
  // Build the filter store up front so the first timed run is not charged
  // for it.
  kg.dataset.all_store();

  std::vector<int> thread_counts = {1, 2, DefaultThreadCount(), 8};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  RankerOptions serial;
  serial.threads = 1;
  const auto baseline = RankTriples(*model, kg.dataset, kg.dataset.test(),
                                    serial);
  std::vector<ScalingPoint> points;
  bool bit_identical = true;
  for (int threads : thread_counts) {
    points.push_back(MeasureRankingThroughput(*model, kg.dataset, threads));
    RankerOptions options;
    options.threads = threads;
    const auto ranks = RankTriples(*model, kg.dataset, kg.dataset.test(),
                                   options);
    for (size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i].head_raw != baseline[i].head_raw ||
          ranks[i].head_filtered != baseline[i].head_filtered ||
          ranks[i].tail_raw != baseline[i].tail_raw ||
          ranks[i].tail_filtered != baseline[i].tail_filtered) {
        bit_identical = false;
      }
    }
  }

  const double base_rate = points.front().triples_per_sec;
  std::ofstream out("BENCH_scoring.json");
  if (!out) {
    std::fprintf(stderr, "cannot write BENCH_scoring.json\n");
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"ranking_thread_scaling\",\n"
      << "  \"model\": \"" << ModelTypeName(ModelType::kDistMult) << "\",\n"
      << "  \"dataset\": \"" << kg.dataset.name() << "\",\n"
      << "  \"num_test_triples\": " << kg.dataset.test().size() << ",\n"
      << "  \"num_entities\": " << kg.dataset.num_entities() << ",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"default_threads\": " << DefaultThreadCount() << ",\n"
      << "  \"bit_identical_across_thread_counts\": "
      << (bit_identical ? "true" : "false") << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    out << "    {\"threads\": " << points[i].threads
        << ", \"seconds\": " << points[i].seconds
        << ", \"triples_per_sec\": " << points[i].triples_per_sec
        << ", \"speedup_vs_1\": " << points[i].triples_per_sec / base_rate
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::printf("\nthread scaling (RankTriples, %s, %zu test triples) -> "
              "BENCH_scoring.json\n",
              ModelTypeName(ModelType::kDistMult), kg.dataset.test().size());
  for (const ScalingPoint& p : points) {
    std::printf("  threads=%d  %.3fs  %.0f triples/s  (%.2fx)\n", p.threads,
                p.seconds, p.triples_per_sec, p.triples_per_sec / base_rate);
  }
  if (!bit_identical) {
    std::fprintf(stderr, "ERROR: ranks differ across thread counts\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kgc

int main(int argc, char** argv) {
  // Telemetry flags must come off argv before google-benchmark sees them,
  // or ReportUnrecognizedArguments rejects the invocation.
  kgc::bench::BenchTelemetry telemetry("bench_micro_scoring", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return telemetry.Finish(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return telemetry.Finish(kgc::RunThreadScaling());
}
