// Micro-benchmarks (google-benchmark): scoring-function and ranking
// throughput per model, plus triple-store lookup costs. These are the
// throughput primitives the whole harness is built on.

#include <benchmark/benchmark.h>

#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/model.h"

namespace kgc {
namespace {

const SyntheticKg& SharedKg() {
  static const SyntheticKg* kg = new SyntheticKg(GenerateTiny(11));
  return *kg;
}

std::unique_ptr<KgeModel> MakeModel(ModelType type) {
  const SyntheticKg& kg = SharedKg();
  return CreateModel(type, kg.dataset.num_entities(),
                     kg.dataset.num_relations(), DefaultHyperParams(type));
}

void BM_Score(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  EntityId h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Score(h, 1, (h + 7) % 100));
    h = (h + 1) % 100;
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_Score)->DenseRange(0, 9, 1);

void BM_ScoreTails(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  std::vector<float> scores(static_cast<size_t>(model->num_entities()));
  EntityId h = 0;
  for (auto _ : state) {
    model->ScoreTails(h, 1, scores);
    benchmark::DoNotOptimize(scores.data());
    h = (h + 1) % 100;
  }
  state.SetItemsProcessed(state.iterations() * model->num_entities());
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_ScoreTails)->DenseRange(0, 9, 1);

void BM_ApplyGradient(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  EntityId h = 0;
  for (auto _ : state) {
    model->ApplyGradient(Triple{h, 1, (h + 7) % 100}, -0.5f, 0.01f);
    h = (h + 1) % 100;
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_ApplyGradient)->DenseRange(0, 9, 1);

void BM_TripleStoreContains(benchmark::State& state) {
  const TripleStore& store = SharedKg().dataset.train_store();
  const TripleList& triples = SharedKg().dataset.train();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Contains(triples[i % triples.size()]));
    ++i;
  }
}
BENCHMARK(BM_TripleStoreContains);

void BM_TripleStoreTails(benchmark::State& state) {
  const TripleStore& store = SharedKg().dataset.train_store();
  const TripleList& triples = SharedKg().dataset.train();
  size_t i = 0;
  for (auto _ : state) {
    const Triple& t = triples[i % triples.size()];
    benchmark::DoNotOptimize(store.Tails(t.head, t.relation).size());
    ++i;
  }
}
BENCHMARK(BM_TripleStoreTails);

void BM_RankOneTriple(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const SyntheticKg& kg = SharedKg();
  const auto model = MakeModel(type);
  TripleList one = {kg.dataset.test().front()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankTriples(*model, kg.dataset, one));
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_RankOneTriple)->Arg(0)->Arg(6)->Arg(8)->Arg(9);

}  // namespace
}  // namespace kgc

BENCHMARK_MAIN();
