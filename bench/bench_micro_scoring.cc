// Micro-benchmarks (google-benchmark): scoring-function and ranking
// throughput per model, plus triple-store lookup costs. These are the
// throughput primitives the whole harness is built on.
//
// After the google-benchmark suite, five sections write machine-readable
// JSON to BENCH_scoring.json in the working directory:
//   - thread_scaling:    the full RankTriples sweep at 1 / 2 / N workers;
//   - kernel_paths:      per-model ScoreTails sweeps under the generic vs
//                        the -march native kernel dispatch path;
//   - query_dedup:       RankTriples on a duplicate-heavy test list with
//                        query deduplication off vs on, with the
//                        score_evals deltas;
//   - exporter_overhead: the ScoreTails sweep with the live metrics
//                        exporter off vs running at 100 ms;
//   - topk:              the TopKEngine fast path vs the full-sweep oracle
//                        at 100k entities (K ladder, prune on/off, honest
//                        unit-norm and dot-product rows).
//
// Flags: the telemetry flags (--report/--trace/--log-level) and --topk
// (run only the topk post-suite section) accept both --flag=value and
// --flag value spellings and are stripped from argv before
// benchmark::Initialize, so they compose with --benchmark_filter and the
// rest of google-benchmark's flags in any order.

#include <benchmark/benchmark.h>

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <thread>

#include "bench/bench_common.h"
#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/model.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/resource_stats.h"
#include "util/parallel.h"
#include "util/vecmath.h"

namespace kgc {
namespace {

const SyntheticKg& SharedKg() {
  static const SyntheticKg* kg = new SyntheticKg(GenerateTiny(11));
  return *kg;
}

std::unique_ptr<KgeModel> MakeModel(ModelType type) {
  const SyntheticKg& kg = SharedKg();
  return CreateModel(type, kg.dataset.num_entities(),
                     kg.dataset.num_relations(), DefaultHyperParams(type));
}

void BM_Score(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  EntityId h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Score(h, 1, (h + 7) % 100));
    h = (h + 1) % 100;
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_Score)->DenseRange(0, 9, 1);

void BM_ScoreTails(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  std::vector<float> scores(static_cast<size_t>(model->num_entities()));
  EntityId h = 0;
  for (auto _ : state) {
    model->ScoreTails(h, 1, scores);
    benchmark::DoNotOptimize(scores.data());
    h = (h + 1) % 100;
  }
  state.SetItemsProcessed(state.iterations() * model->num_entities());
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_ScoreTails)->DenseRange(0, 9, 1);

void BM_ApplyGradient(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const auto model = MakeModel(type);
  EntityId h = 0;
  for (auto _ : state) {
    model->ApplyGradient(Triple{h, 1, (h + 7) % 100}, -0.5f, 0.01f);
    h = (h + 1) % 100;
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_ApplyGradient)->DenseRange(0, 9, 1);

void BM_TripleStoreContains(benchmark::State& state) {
  const TripleStore& store = SharedKg().dataset.train_store();
  const TripleList& triples = SharedKg().dataset.train();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Contains(triples[i % triples.size()]));
    ++i;
  }
}
BENCHMARK(BM_TripleStoreContains);

void BM_TripleStoreTails(benchmark::State& state) {
  const TripleStore& store = SharedKg().dataset.train_store();
  const TripleList& triples = SharedKg().dataset.train();
  size_t i = 0;
  for (auto _ : state) {
    const Triple& t = triples[i % triples.size()];
    benchmark::DoNotOptimize(store.Tails(t.head, t.relation).size());
    ++i;
  }
}
BENCHMARK(BM_TripleStoreTails);

void BM_RankOneTriple(benchmark::State& state) {
  const auto type = static_cast<ModelType>(state.range(0));
  const SyntheticKg& kg = SharedKg();
  const auto model = MakeModel(type);
  TripleList one = {kg.dataset.test().front()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankTriples(*model, kg.dataset, one));
  }
  state.SetLabel(ModelTypeName(type));
}
BENCHMARK(BM_RankOneTriple)->Arg(0)->Arg(6)->Arg(8)->Arg(9);

// --- Thread scaling --------------------------------------------------------

struct ScalingPoint {
  int threads = 0;
  double seconds = 0.0;
  double triples_per_sec = 0.0;
};

/// Best-of-3 wall time of a full RankTriples sweep at `threads` workers.
ScalingPoint MeasureRankingThroughput(const KgeModel& model,
                                      const Dataset& dataset, int threads) {
  RankerOptions options;
  options.threads = threads;
  ScalingPoint point;
  point.threads = threads;
  point.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto ranks = RankTriples(model, dataset, dataset.test(), options);
    benchmark::DoNotOptimize(ranks.data());
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    point.seconds = std::min(point.seconds, elapsed.count());
  }
  point.triples_per_sec =
      static_cast<double>(dataset.test().size()) / point.seconds;
  return point;
}

/// Times the ranking sweep at 1 / 2 / N threads (N = the KGC_THREADS /
/// hardware default) plus 8 as a fixed reference point, checks the outputs
/// stay bit-identical, and writes the thread_scaling JSON section.
int RunThreadScaling(std::ostream& out) {
  const SyntheticKg& kg = SharedKg();
  const auto model = MakeModel(ModelType::kDistMult);
  // Build the filter store up front so the first timed run is not charged
  // for it.
  kg.dataset.all_store();

  std::vector<int> thread_counts = {1, 2, DefaultThreadCount(), 8};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  RankerOptions serial;
  serial.threads = 1;
  const auto baseline = RankTriples(*model, kg.dataset, kg.dataset.test(),
                                    serial);
  std::vector<ScalingPoint> points;
  bool bit_identical = true;
  for (int threads : thread_counts) {
    points.push_back(MeasureRankingThroughput(*model, kg.dataset, threads));
    RankerOptions options;
    options.threads = threads;
    const auto ranks = RankTriples(*model, kg.dataset, kg.dataset.test(),
                                   options);
    for (size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i].head_raw != baseline[i].head_raw ||
          ranks[i].head_filtered != baseline[i].head_filtered ||
          ranks[i].tail_raw != baseline[i].tail_raw ||
          ranks[i].tail_filtered != baseline[i].tail_filtered) {
        bit_identical = false;
      }
    }
  }

  const double base_rate = points.front().triples_per_sec;
  out << "  \"thread_scaling\": {\n"
      << "    \"model\": \"" << ModelTypeName(ModelType::kDistMult) << "\",\n"
      << "    \"bit_identical_across_thread_counts\": "
      << (bit_identical ? "true" : "false") << ",\n"
      << "    \"results\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    out << "      {\"threads\": " << points[i].threads
        << ", \"seconds\": " << points[i].seconds
        << ", \"triples_per_sec\": " << points[i].triples_per_sec
        << ", \"speedup_vs_1\": " << points[i].triples_per_sec / base_rate
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }";

  std::printf("\nthread scaling (RankTriples, %s, %zu test triples)\n",
              ModelTypeName(ModelType::kDistMult), kg.dataset.test().size());
  for (const ScalingPoint& p : points) {
    std::printf("  threads=%d  %.3fs  %.0f triples/s  (%.2fx)\n", p.threads,
                p.seconds, p.triples_per_sec, p.triples_per_sec / base_rate);
  }
  if (!bit_identical) {
    std::fprintf(stderr, "ERROR: ranks differ across thread counts\n");
    return 1;
  }
  return 0;
}

// --- Kernel dispatch paths -------------------------------------------------

/// Best-of-3 time of `reps` full ScoreTails sweeps under the active kernel
/// path, in nanoseconds per scored entity.
double MeasureSweepNsPerEntity(const KgeModel& model, int reps) {
  std::vector<float> scores(static_cast<size_t>(model.num_entities()));
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      model.ScoreTails(static_cast<EntityId>(i % 100), 1, scores);
      benchmark::DoNotOptimize(scores.data());
    }
    const std::chrono::duration<double, std::nano> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count());
  }
  return best / (static_cast<double>(reps) *
                 static_cast<double>(model.num_entities()));
}

/// Times every model's ScoreTails sweep under the generic and (when
/// available) the -march native kernel path and writes the kernel_paths
/// JSON section. The dispatch override is restored to generic afterwards,
/// the build's default.
void RunKernelPaths(std::ostream& out) {
  const bool native = vec::NativeKernelsAvailable();
  out << "  \"kernel_paths\": {\n"
      << "    \"native_available\": " << (native ? "true" : "false") << ",\n"
      << "    \"models\": [\n";
  std::printf("\nkernel paths (ScoreTails ns/entity, native %s)\n",
              native ? "available" : "unavailable");
  const int reps = 50;
  for (int m = 0; m <= 9; ++m) {
    const auto type = static_cast<ModelType>(m);
    const auto model = MakeModel(type);
    vec::SetKernelPathForTest(vec::KernelPath::kGeneric);
    MeasureSweepNsPerEntity(*model, 5);  // warm caches before timing
    const double generic_ns = MeasureSweepNsPerEntity(*model, reps);
    double native_ns = 0.0;
    if (native) {
      vec::SetKernelPathForTest(vec::KernelPath::kNative);
      MeasureSweepNsPerEntity(*model, 5);
      native_ns = MeasureSweepNsPerEntity(*model, reps);
      vec::SetKernelPathForTest(vec::KernelPath::kGeneric);
    }
    out << "      {\"model\": \"" << ModelTypeName(type)
        << "\", \"generic_ns_per_entity\": " << generic_ns;
    if (native) {
      out << ", \"native_ns_per_entity\": " << native_ns
          << ", \"native_speedup\": " << generic_ns / native_ns;
    }
    out << "}" << (m < 9 ? "," : "") << "\n";
    if (native) {
      std::printf("  %-10s generic %8.2f  native %8.2f  (%.2fx)\n",
                  ModelTypeName(type), generic_ns, native_ns,
                  generic_ns / native_ns);
    } else {
      std::printf("  %-10s generic %8.2f\n", ModelTypeName(type), generic_ns);
    }
  }
  out << "    ]\n  }";
}

// --- Query deduplication ---------------------------------------------------

/// Times RankTriples on a duplicate-heavy test list with query dedup off vs
/// on (under each compiled kernel path), records the score_evals counter
/// delta for each run, verifies ranks are bit-identical, and writes the
/// query_dedup JSON section. Returns non-zero if ranks diverge.
int RunQueryDedup(std::ostream& out) {
  const SyntheticKg& kg = SharedKg();
  const auto model = MakeModel(ModelType::kTransE);
  // A few anchors fanned out over many tails: most triples share their
  // (head, relation) query, and the shared tails make the reverse
  // (relation, tail) queries heavily duplicated too.
  TripleList dup;
  for (size_t i = 0; i < 5; ++i) {
    const Triple& base = kg.dataset.test()[i % kg.dataset.test().size()];
    for (EntityId t = 0; t < 40; ++t) {
      dup.push_back({base.head, base.relation, t});
    }
  }
  obs::Counter& score_evals =
      obs::Registry::Get().GetCounter(obs::kRankerScoreEvals);

  struct DedupPoint {
    const char* kernel;
    bool dedup;
    double seconds;
    uint64_t evals;
  };
  std::vector<DedupPoint> points;
  std::vector<TripleRanks> baseline;
  bool bit_identical = true;
  const std::vector<vec::KernelPath> paths =
      vec::NativeKernelsAvailable()
          ? std::vector<vec::KernelPath>{vec::KernelPath::kGeneric,
                                         vec::KernelPath::kNative}
          : std::vector<vec::KernelPath>{vec::KernelPath::kGeneric};
  for (vec::KernelPath path : paths) {
    vec::SetKernelPathForTest(path);
    for (bool dedup : {false, true}) {
      RankerOptions options;
      options.threads = 1;
      options.dedup_queries = dedup;
      DedupPoint point;
      point.kernel = vec::OpsFor(path).name;
      point.dedup = dedup;
      point.seconds = std::numeric_limits<double>::infinity();
      std::vector<TripleRanks> ranks;
      for (int rep = 0; rep < 3; ++rep) {
        const uint64_t evals_before = score_evals.value();
        const auto start = std::chrono::steady_clock::now();
        ranks = RankTriples(*model, kg.dataset, dup, options);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        point.seconds = std::min(point.seconds, elapsed.count());
        point.evals = score_evals.value() - evals_before;
      }
      if (baseline.empty()) {
        baseline = ranks;
      } else {
        for (size_t i = 0; i < ranks.size(); ++i) {
          if (ranks[i].head_raw != baseline[i].head_raw ||
              ranks[i].head_filtered != baseline[i].head_filtered ||
              ranks[i].tail_raw != baseline[i].tail_raw ||
              ranks[i].tail_filtered != baseline[i].tail_filtered) {
            bit_identical = false;
          }
        }
      }
      points.push_back(point);
    }
  }
  vec::SetKernelPathForTest(vec::KernelPath::kGeneric);

  out << "  \"query_dedup\": {\n"
      << "    \"model\": \"" << ModelTypeName(ModelType::kTransE) << "\",\n"
      << "    \"num_test_triples\": " << dup.size() << ",\n"
      << "    \"bit_identical_dedup_on_vs_off\": "
      << (bit_identical ? "true" : "false") << ",\n"
      << "    \"results\": [\n";
  std::printf("\nquery dedup (RankTriples, %zu duplicate-heavy triples)\n",
              dup.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const DedupPoint& p = points[i];
    out << "      {\"kernel\": \"" << p.kernel << "\", \"dedup\": "
        << (p.dedup ? "true" : "false") << ", \"seconds\": " << p.seconds
        << ", \"score_evals\": " << p.evals << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
    std::printf("  kernel=%-7s dedup=%-5s  %.4fs  %llu score evals\n",
                p.kernel, p.dedup ? "on" : "off", p.seconds,
                static_cast<unsigned long long>(p.evals));
  }
  out << "    ]\n  }";
  if (!bit_identical) {
    std::fprintf(stderr, "ERROR: ranks differ between dedup on and off\n");
    return 1;
  }
  return 0;
}

// --- Exporter overhead -----------------------------------------------------

struct SweepWindow {
  double process_cpu_seconds = 0.0;  ///< all threads, user+sys
  double thread_cpu_seconds = 0.0;   ///< the measuring thread alone
  double wall_ns_per_entity = 0.0;
  int64_t sweeps = 0;
};

double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Runs `sweeps` full ScoreTails sweeps and measures both the process CPU
/// (every thread, via getrusage) and this thread's CPU for the window.
/// With only the measuring thread and (optionally) the exporter thread
/// alive, process minus thread CPU is *exactly* the exporter's cost: the
/// sweep's own run-to-run variance appears identically in both clocks and
/// cancels, and CPU burned by unrelated processes on a loaded machine is
/// charged to neither.
SweepWindow MeasureSweepWindow(const KgeModel& model, int64_t sweeps) {
  std::vector<float> scores(static_cast<size_t>(model.num_entities()));
  const obs::ResourceUsage before = obs::SampleProcessResources();
  const double thread_before = ThreadCpuSeconds();
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < sweeps; ++i) {
    model.ScoreTails(static_cast<EntityId>(i % 100), 1, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  const std::chrono::duration<double, std::nano> elapsed =
      std::chrono::steady_clock::now() - start;
  const double thread_after = ThreadCpuSeconds();
  const obs::ResourceUsage after = obs::SampleProcessResources();
  SweepWindow window;
  window.process_cpu_seconds =
      (after.cpu_user_seconds + after.cpu_sys_seconds) -
      (before.cpu_user_seconds + before.cpu_sys_seconds);
  window.thread_cpu_seconds = thread_after - thread_before;
  window.wall_ns_per_entity =
      elapsed.count() / (static_cast<double>(sweeps) *
                         static_cast<double>(model.num_entities()));
  window.sweeps = sweeps;
  return window;
}

/// Times the DistMult ScoreTails sweep with the metrics exporter off and
/// then running at a 100 ms interval, and writes the exporter_overhead
/// JSON section. The overhead is attributed directly: per on-window,
/// exporter CPU = process CPU - measuring-thread CPU (the only other
/// thread alive is the exporter's), and overhead% = exporter CPU /
/// thread CPU. The same difference over the off-windows (~0) is
/// subtracted as a baseline for accounting skew. Unlike comparing wall
/// or even process CPU between off and on windows — which differences
/// two large numbers whose cache- and scheduler-induced variance dwarfs
/// the exporter's cost on a busy single-core box — each round here
/// measures the exporter's ticks exactly. The budget is <= 1% overhead.
void RunExporterOverhead(std::ostream& out) {
  const auto model = MakeModel(ModelType::kDistMult);
  const bool already_running = obs::ExporterRunning();
  const int rounds = 5;

  obs::ExporterOptions options;
  options.run_name = "bench_micro_scoring.overhead";
  options.interval_ms = 100;
  options.timeseries_path = "kgc_timeseries_overhead.jsonl";
  options.exposition_path = "kgc_metrics_overhead.prom";

  // Calibrate the per-window sweep count to ~500 ms of work, so each
  // window spans several exporter ticks; then warm the caches.
  const SweepWindow probe = MeasureSweepWindow(*model, 200);
  const double sweep_ns = probe.wall_ns_per_entity *
                          static_cast<double>(model->num_entities());
  const int64_t sweeps_per_window =
      std::max<int64_t>(200, static_cast<int64_t>(0.5e9 / sweep_ns));

  double off_ns = std::numeric_limits<double>::infinity();
  double on_ns = std::numeric_limits<double>::infinity();
  std::vector<double> on_pcts;   // exporter CPU share per on-window, %
  std::vector<double> off_pcts;  // same difference with exporter off, ~0
  uint64_t records = 0;
  if (already_running) {
    on_ns = MeasureSweepWindow(*model, sweeps_per_window).wall_ns_per_entity;
  } else {
    for (int round = 0; round < rounds; ++round) {
      const SweepWindow off = MeasureSweepWindow(*model, sweeps_per_window);
      obs::StartExporter(options);
      const uint64_t before = obs::ExporterRecordsWritten();
      const SweepWindow on = MeasureSweepWindow(*model, sweeps_per_window);
      records += obs::ExporterRecordsWritten() - before;
      obs::StopGlobalExporter();
      off_ns = std::min(off_ns, off.wall_ns_per_entity);
      on_ns = std::min(on_ns, on.wall_ns_per_entity);
      if (on.thread_cpu_seconds > 0.0 && off.thread_cpu_seconds > 0.0) {
        on_pcts.push_back(
            (on.process_cpu_seconds - on.thread_cpu_seconds) /
            on.thread_cpu_seconds * 100.0);
        off_pcts.push_back(
            (off.process_cpu_seconds - off.thread_cpu_seconds) /
            off.thread_cpu_seconds * 100.0);
      }
    }
    std::sort(on_pcts.begin(), on_pcts.end());
    std::sort(off_pcts.begin(), off_pcts.end());
  }

  out << "  \"exporter_overhead\": {\n"
      << "    \"model\": \"" << ModelTypeName(ModelType::kDistMult) << "\",\n"
      << "    \"interval_ms\": 100,\n";
  if (already_running) {
    // An env-started exporter covers the whole process; there is no
    // exporter-off baseline to compare against in this configuration.
    out << "    \"exporter_already_running\": true,\n"
        << "    \"exporter_on_ns_per_entity\": " << on_ns << "\n  }";
    std::printf("\nexporter overhead: skipped baseline (exporter already "
                "running via KGC_METRICS_INTERVAL_MS)\n");
    return;
  }
  const double overhead_pct =
      on_pcts.empty()
          ? 0.0
          : on_pcts[on_pcts.size() / 2] - off_pcts[off_pcts.size() / 2];
  out << "    \"exporter_off_ns_per_entity\": " << off_ns << ",\n"
      << "    \"exporter_on_ns_per_entity\": " << on_ns << ",\n"
      << "    \"overhead_percent\": " << overhead_pct << ",\n"
      << "    \"records_written_during_measurement\": " << records
      << "\n  }";
  std::printf("\nexporter overhead (ScoreTails ns/entity, 100 ms interval)\n"
              "  off %.2f  on %.2f  overhead %.2f%%  (%llu records)\n",
              off_ns, on_ns, overhead_pct,
              static_cast<unsigned long long>(records));
}

// --- Top-K retrieval -------------------------------------------------------

/// Times the TopKEngine fast path against the per-query full-sweep oracle
/// at 100k entities and writes the topk JSON section. Three workloads:
///   - clustered_l2: near-duplicate clusters with a log-normal norm spread
///     (bench::ClusteredL2Model, the paper's redundancy regime) — the K
///     ladder, plus a prune-off row isolating blocking + heap selection;
///   - transe_unit_norm: a fresh TransE table, whose entities the model
///     projects to the unit sphere — every norm is 1, the norm bound can
///     prune nothing, and the row shows the honest blocking-only speedup
///     for trained translational models;
///   - distmult_dot: a dot-product sweep, never pruned by construction.
/// Each workload's K=10 row first runs an oracle cross-check (aborts on a
/// bit-level mismatch). The acceptance target is >= 5x at K=10 on
/// clustered_l2; a miss is reported but not fatal here — the hard gate
/// lives in bench_scale --smoke.
int RunTopKRetrieval(std::ostream& out) {
  constexpr int32_t kEntities = 100000;
  constexpr size_t kDim = 64;
  constexpr int32_t kRelations = 8;
  constexpr size_t kQueries = 128;
  constexpr int kReps = 3;
  constexpr double kTargetSpeedup = 5.0;

  const std::vector<TopKQuery> queries =
      bench::MakeTopKBenchQueries(kEntities, kRelations, kQueries, 17);
  std::vector<bench::TopKBenchPoint> points;
  {
    const bench::ClusteredL2Model clustered(kEntities, kDim, kRelations, 23);
    for (int k : {1, 10, 100}) {
      points.push_back(bench::MeasureTopKRetrieval(
          clustered, "clustered_l2", queries, k, /*prune=*/true,
          /*cross_check=*/k == 10, kReps));
    }
    points.push_back(bench::MeasureTopKRetrieval(
        clustered, "clustered_l2", queries, 10, /*prune=*/false,
        /*cross_check=*/false, kReps));
  }
  {
    ModelHyperParams params = DefaultHyperParams(ModelType::kTransE);
    params.dim = kDim;
    const auto transe =
        CreateModel(ModelType::kTransE, kEntities, kRelations, params);
    points.push_back(bench::MeasureTopKRetrieval(
        *transe, "transe_unit_norm", queries, 10, /*prune=*/true,
        /*cross_check=*/true, kReps));
  }
  {
    ModelHyperParams params = DefaultHyperParams(ModelType::kDistMult);
    params.dim = kDim;
    const auto distmult =
        CreateModel(ModelType::kDistMult, kEntities, kRelations, params);
    points.push_back(bench::MeasureTopKRetrieval(
        *distmult, "distmult_dot", queries, 10, /*prune=*/true,
        /*cross_check=*/true, kReps));
  }

  double headline = 0.0;
  for (const bench::TopKBenchPoint& p : points) {
    if (p.label == "clustered_l2" && p.k == 10 && p.prune) {
      headline = p.speedup;
    }
  }

  out << "  \"topk\": {\n"
      << "    \"num_entities\": " << kEntities << ",\n"
      << "    \"dim\": " << kDim << ",\n"
      << "    \"num_queries\": " << kQueries << ",\n"
      << "    \"target_speedup_clustered_k10\": " << kTargetSpeedup << ",\n"
      << "    \"headline_speedup_clustered_k10\": " << headline << ",\n"
      << "    \"results\": [\n";
  std::printf("\ntop-K retrieval (engine threads=1 vs full-sweep oracle, "
              "%d entities, dim %zu, %zu queries)\n",
              kEntities, kDim, kQueries);
  for (size_t i = 0; i < points.size(); ++i) {
    const bench::TopKBenchPoint& p = points[i];
    out << "      {\"workload\": \"" << p.label << "\", \"k\": " << p.k
        << ", \"prune\": " << (p.prune ? "true" : "false")
        << ", \"cross_checked\": " << (p.cross_checked ? "true" : "false")
        << ", \"oracle_seconds\": " << p.oracle_seconds
        << ", \"engine_seconds\": " << p.engine_seconds
        << ", \"speedup\": " << p.speedup
        << ", \"tiles_pruned\": " << p.tiles_pruned
        << ", \"entities_scored\": " << p.entities_scored
        << ", \"scored_fraction\": " << p.scored_fraction
        << ", \"heap_pushes\": " << p.heap_pushes
        << ", \"queries_batched\": " << p.queries_batched << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
    std::printf("  %-16s K=%-3d prune=%-3s  oracle %.3fs  engine %.3fs  "
                "%6.2fx  scored %5.1f%%  tiles_pruned %llu%s\n",
                p.label.c_str(), p.k, p.prune ? "on" : "off",
                p.oracle_seconds, p.engine_seconds, p.speedup,
                p.scored_fraction * 100.0,
                static_cast<unsigned long long>(p.tiles_pruned),
                p.cross_checked ? "  [cross-checked]" : "");
  }
  out << "    ]\n  }";
  std::printf("  headline: clustered_l2 K=10 prune=on %.2fx  (target >= "
              "%.1fx: %s)\n",
              headline, kTargetSpeedup,
              headline >= kTargetSpeedup ? "MET" : "MISSED");
  return 0;
}

/// Runs the post-suite sections and composes BENCH_scoring.json. With
/// --topk only the topk section is produced (and the JSON holds just that
/// section).
int RunPostSuiteSections(bool topk_only) {
  const SyntheticKg& kg = SharedKg();
  std::ofstream out("BENCH_scoring.json");
  if (!out) {
    std::fprintf(stderr, "cannot write BENCH_scoring.json\n");
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"micro_scoring\",\n"
      << "  \"dataset\": \"" << kg.dataset.name() << "\",\n"
      << "  \"num_test_triples\": " << kg.dataset.test().size() << ",\n"
      << "  \"num_entities\": " << kg.dataset.num_entities() << ",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"default_threads\": " << DefaultThreadCount() << ",\n";
  int rc = 0;
  if (!topk_only) {
    rc = RunThreadScaling(out);
    out << ",\n";
    RunKernelPaths(out);
    out << ",\n";
    rc |= RunQueryDedup(out);
    out << ",\n";
    RunExporterOverhead(out);
    out << ",\n";
  }
  rc |= RunTopKRetrieval(out);
  out << "\n}\n";
  std::printf("-> BENCH_scoring.json\n");
  return rc;
}

}  // namespace
}  // namespace kgc

int main(int argc, char** argv) {
  // Telemetry flags and --topk must come off argv before google-benchmark
  // sees them, or ReportUnrecognizedArguments rejects the invocation. Both
  // strippers accept the --flag=value and --flag value forms, so e.g.
  //   bench_micro_scoring --benchmark_filter=NONE --topk --report out.jsonl
  // works in any argument order.
  kgc::bench::BenchTelemetry telemetry("bench_micro_scoring", &argc, argv);
  const bool topk_only = kgc::bench::ConsumeBoolFlag(&argc, argv, "--topk");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return telemetry.Finish(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return telemetry.Finish(kgc::RunPostSuiteSections(topk_only));
}
