// Million-scale substrate benchmark: generates ScaleSpec worlds at 10k /
// 100k / 1M entities, builds the CSR TripleStore over each, and measures
//
//   - datagen and store-build wall seconds,
//   - resident index cost (IndexBytes / triple, peak RSS),
//   - filtered-Contains probe latency: scalar Contains, prefetched
//     ContainsBatch, and the pre-CSR baseline (std::unordered_set of packed
//     triple keys — the hash-map substrate this store replaced).
//
// Results go to stdout and to BENCH_scale.json in the working directory.
//
// A second study runs the top-K retrieval fast path (eval/topk) against
// the full-sweep oracle on the 100k-entity clustered workload: the K
// ladder in full mode, K=10 only in smoke mode, always with the oracle
// cross-check on (the engine aborts on any bit-level mismatch).
//
// Flags (besides the BenchTelemetry ones):
//   --smoke   run only the 100k-entity size and enforce the CI budget:
//             bytes-per-triple <= 64, batched probes no slower than the
//             unordered_set baseline, and top-K engine speedup >= 3x at
//             K=10 with the cross-check on. Exit 1 on breach.
//
// The full run also checks the ISSUE acceptance floor at 1M entities
// (<64 bytes/triple, >=3x batched-probe speedup) and reports pass/fail per
// size without failing the process — perf numbers on shared hardware are
// advisory outside CI's smoke budget.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "kg/triple_store.h"
#include "util/resource.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace kgc {
namespace {

// Keeps only what the store build needs; entity names are formulaic and
// dropped on the floor (at 1M entities they would dwarf the triples).
class WorldCollector : public WorldSink {
 public:
  void AddEntity(EntityId, const std::string&) override {}
  void AddRelation(const RelationMeta&) override {}
  void AddReversePair(RelationId, RelationId) override {}
  void AddFact(const Triple& fact, bool) override { world.push_back(fact); }

  TripleList world;
};

struct SizeResult {
  int64_t requested_entities = 0;
  int32_t num_entities = 0;
  int32_t num_relations = 0;
  uint64_t world_facts = 0;
  double datagen_seconds = 0;
  double build_seconds = 0;
  uint64_t index_bytes = 0;
  double bytes_per_triple = 0;
  uint64_t peak_rss_bytes = 0;
  double scalar_ns = 0;
  double batch_ns = 0;
  double baseline_ns = 0;
  double batch_speedup = 0;
};

// Probe keys: half present triples, half misses, shuffled — the filtered
// ranking workload probes a mix of known facts and corrupted candidates.
std::vector<uint64_t> MakeProbeKeys(const TripleList& world,
                                    int32_t num_entities, size_t count) {
  Rng rng(0xbe9c);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      const Triple& t = world[rng.Uniform(world.size())];
      keys.push_back(PackTriple(t.head, t.relation, t.tail));
    } else {
      const Triple& t = world[rng.Uniform(world.size())];
      keys.push_back(PackTriple(
          static_cast<EntityId>(rng.Uniform(static_cast<uint64_t>(num_entities))),
          t.relation, t.tail));
    }
  }
  return keys;
}

// Best-of-3 nanoseconds per probe; `sink` defeats dead-code elimination.
template <typename Body>
double TimeProbes(size_t count, uint64_t* sink, Body body) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    *sink += body();
    const double ns =
        watch.ElapsedSeconds() * 1e9 / static_cast<double>(count);
    if (ns < best) best = ns;
  }
  return best;
}

SizeResult RunSize(int64_t requested) {
  SizeResult result;
  result.requested_entities = requested;
  const GeneratorSpec spec = ScaleSpec(requested);

  WorldCollector collector;
  Stopwatch datagen_watch;
  const WorldCounts counts = GenerateWorld(spec, kDefaultDataSeed, collector);
  result.datagen_seconds = datagen_watch.ElapsedSeconds();
  result.num_entities = counts.num_entities;
  result.num_relations = counts.num_relations;
  result.world_facts = counts.world_facts;

  Stopwatch build_watch;
  const TripleStore store(std::move(collector.world), counts.num_entities,
                          counts.num_relations);
  result.build_seconds = build_watch.ElapsedSeconds();
  result.index_bytes = store.IndexBytes();
  result.bytes_per_triple =
      static_cast<double>(result.index_bytes) /
      static_cast<double>(store.size());
  result.peak_rss_bytes = PeakRssBytes();

  const size_t num_probes =
      std::min<size_t>(2'000'000, store.size());
  const std::vector<uint64_t> keys =
      MakeProbeKeys(store.triples(), counts.num_entities, num_probes);
  uint64_t sink = 0;

  result.batch_ns = TimeProbes(num_probes, &sink, [&] {
    return store.ContainsBatch(keys, nullptr);
  });
  result.scalar_ns = TimeProbes(num_probes, &sink, [&] {
    uint64_t hits = 0;
    for (uint64_t key : keys) {
      hits += store.ContainsPacked(key) ? 1 : 0;
    }
    return hits;
  });

  // The replaced substrate: one std::unordered_set over the same packed
  // keys, probed scalar (it has no batch API — that is the point).
  std::unordered_set<uint64_t> baseline;
  baseline.reserve(store.size());
  for (const Triple& t : store.triples()) {
    baseline.insert(PackTriple(t.head, t.relation, t.tail));
  }
  result.baseline_ns = TimeProbes(num_probes, &sink, [&] {
    uint64_t hits = 0;
    for (uint64_t key : keys) {
      hits += baseline.count(key);
    }
    return hits;
  });
  result.batch_speedup = result.baseline_ns / result.batch_ns;

  std::printf(
      "entities=%d relations=%d facts=%llu datagen=%.2fs build=%.2fs\n"
      "  bytes/triple=%.1f peak_rss=%.1fMiB\n"
      "  probe ns: batch=%.1f scalar=%.1f unordered_set=%.1f "
      "(batch speedup %.2fx)  [checksum %llu]\n",
      result.num_entities, result.num_relations,
      static_cast<unsigned long long>(result.world_facts),
      result.datagen_seconds, result.build_seconds, result.bytes_per_triple,
      static_cast<double>(result.peak_rss_bytes) / (1024.0 * 1024.0),
      result.batch_ns, result.scalar_ns, result.baseline_ns,
      result.batch_speedup, static_cast<unsigned long long>(sink));
  return result;
}

// Top-K retrieval ladder on the clustered 100k workload, oracle
// cross-check always on. Smoke mode (CI, often sanitized) runs a reduced
// query set at K=10 only; the ≥3x gate lives in main.
std::vector<bench::TopKBenchPoint> RunTopKLadder(bool smoke) {
  constexpr int32_t kEntities = 100'000;
  constexpr size_t kDim = 64;
  constexpr int32_t kRelations = 8;
  const size_t num_queries = smoke ? 48 : 128;
  const int reps = smoke ? 1 : 3;
  const std::vector<int> ks = smoke ? std::vector<int>{10}
                                    : std::vector<int>{1, 10, 100};

  std::printf("\ntop-K retrieval (clustered_l2, %d entities, dim %zu, "
              "%zu queries, cross-check on)\n",
              kEntities, kDim, num_queries);
  const bench::ClusteredL2Model model(kEntities, kDim, kRelations, 23);
  const std::vector<TopKQuery> queries =
      bench::MakeTopKBenchQueries(kEntities, kRelations, num_queries, 17);
  std::vector<bench::TopKBenchPoint> points;
  for (int k : ks) {
    points.push_back(bench::MeasureTopKRetrieval(model, "clustered_l2",
                                                 queries, k, /*prune=*/true,
                                                 /*cross_check=*/true, reps));
    const bench::TopKBenchPoint& p = points.back();
    std::printf("  K=%-3d oracle %.3fs  engine %.3fs  %6.2fx  "
                "scored %5.1f%%  tiles_pruned %llu\n",
                p.k, p.oracle_seconds, p.engine_seconds, p.speedup,
                p.scored_fraction * 100.0,
                static_cast<unsigned long long>(p.tiles_pruned));
  }
  return points;
}

void WriteJson(const std::vector<SizeResult>& results,
               const std::vector<bench::TopKBenchPoint>& topk,
               const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"bench_scale\",\n  \"sizes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    char line[1024];
    std::snprintf(
        line, sizeof(line),
        "    {\"requested_entities\": %lld, \"num_entities\": %d, "
        "\"num_relations\": %d, \"world_facts\": %llu, "
        "\"datagen_seconds\": %.3f, \"build_seconds\": %.3f, "
        "\"index_bytes\": %llu, \"bytes_per_triple\": %.2f, "
        "\"peak_rss_bytes\": %llu, \"scalar_ns_per_probe\": %.2f, "
        "\"batch_ns_per_probe\": %.2f, "
        "\"unordered_set_ns_per_probe\": %.2f, "
        "\"batch_speedup_vs_unordered_set\": %.3f}%s\n",
        static_cast<long long>(r.requested_entities), r.num_entities,
        r.num_relations, static_cast<unsigned long long>(r.world_facts),
        r.datagen_seconds, r.build_seconds,
        static_cast<unsigned long long>(r.index_bytes), r.bytes_per_triple,
        static_cast<unsigned long long>(r.peak_rss_bytes), r.scalar_ns,
        r.batch_ns, r.baseline_ns, r.batch_speedup,
        i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ],\n  \"topk\": [\n";
  for (size_t i = 0; i < topk.size(); ++i) {
    const bench::TopKBenchPoint& p = topk[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    {\"workload\": \"%s\", \"num_entities\": %lld, "
        "\"num_queries\": %zu, \"k\": %d, \"cross_checked\": %s, "
        "\"oracle_seconds\": %.4f, \"engine_seconds\": %.4f, "
        "\"speedup\": %.3f, \"tiles_pruned\": %llu, "
        "\"entities_scored\": %llu, \"scored_fraction\": %.4f}%s\n",
        p.label.c_str(), static_cast<long long>(p.num_entities),
        p.num_queries, p.k, p.cross_checked ? "true" : "false",
        p.oracle_seconds, p.engine_seconds, p.speedup,
        static_cast<unsigned long long>(p.tiles_pruned),
        static_cast<unsigned long long>(p.entities_scored),
        p.scored_fraction, i + 1 < topk.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace kgc

int main(int argc, char** argv) {
  kgc::bench::BenchTelemetry telemetry("bench_scale", &argc, argv);
  const bool smoke = kgc::bench::ConsumeBoolFlag(&argc, argv, "--smoke");

  kgc::bench::PrintHeader("Storage substrate at scale",
                          "CSR TripleStore + flat membership probes");
  std::vector<kgc::SizeResult> results;
  const std::vector<int64_t> sizes =
      smoke ? std::vector<int64_t>{100'000}
            : std::vector<int64_t>{10'000, 100'000, 1'000'000};
  for (int64_t size : sizes) {
    results.push_back(kgc::RunSize(size));
  }
  const std::vector<kgc::bench::TopKBenchPoint> topk =
      kgc::RunTopKLadder(smoke);
  if (!smoke) {
    // Smoke mode is a CI gate (often under a sanitizer); only the full
    // ladder overwrites the benchmark artifact.
    kgc::WriteJson(results, topk, "BENCH_scale.json");
    std::printf("wrote BENCH_scale.json\n");
  }

  int exit_code = 0;
  if (smoke) {
    // CI budget: the 100k store must stay under the acceptance ceiling and
    // batched probes must not regress below the replaced substrate.
    const kgc::SizeResult& r = results.front();
    if (r.bytes_per_triple > 64.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: %.1f bytes/triple exceeds the 64-byte "
                   "budget\n",
                   r.bytes_per_triple);
      exit_code = 1;
    }
    if (r.batch_speedup < 1.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: batched probes slower than the "
                   "unordered_set baseline (%.2fx)\n",
                   r.batch_speedup);
      exit_code = 1;
    }
    // Top-K budget: the fast path must beat the full-sweep oracle by >=3x
    // at K=10 on the clustered 100k workload, with the cross-check on.
    for (const kgc::bench::TopKBenchPoint& p : topk) {
      if (p.k != 10) continue;
      if (!p.cross_checked) {
        std::fprintf(stderr,
                     "SMOKE FAIL: top-K ladder ran without the oracle "
                     "cross-check\n");
        exit_code = 1;
      }
      if (p.speedup < 3.0) {
        std::fprintf(stderr,
                     "SMOKE FAIL: top-K speedup %.2fx below the 3x budget "
                     "at K=10\n",
                     p.speedup);
        exit_code = 1;
      }
    }
  } else {
    for (const kgc::SizeResult& r : results) {
      const bool ok = r.bytes_per_triple < 64.0 &&
                      (r.requested_entities < 1'000'000 ||
                       r.batch_speedup >= 3.0);
      std::printf("%s at %lld entities (%.1f B/triple, %.2fx)\n",
                  ok ? "ACCEPTANCE PASS" : "ACCEPTANCE MISS",
                  static_cast<long long>(r.requested_entities),
                  r.bytes_per_triple, r.batch_speedup);
    }
  }
  return telemetry.Finish(exit_code);
}
