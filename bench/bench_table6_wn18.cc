// Table 6: full link-prediction results on WN18 vs WN18RR for all nine
// embedding models plus AMIE, raw and filtered measures.

#include "bench/bench_common.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Table 6: link prediction results on WN18 and WN18RR",
              "Akrami et al., SIGMOD'20, Table 6");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Wn18();

  for (const Dataset* dataset : {&suite.kg.dataset, &suite.cleaned}) {
    // Overlap the per-model ranking sweeps before reading them one by one.
    context.WarmRanks(*dataset, PaperModelLineup());
    AsciiTable table("Results on " + dataset->name());
    table.SetHeader({"Model", "MR", "Hits@10", "MRR", "FMR", "FHits@10",
                     "FMRR"});
    for (ModelType type : PaperModelLineup()) {
      table.AddRow(RawAndFilteredRow(
          ModelTypeName(type),
          ComputeMetrics(context.GetRanks(*dataset, type))));
    }
    table.AddRow(
        RawAndFilteredRow("AMIE", ComputeMetrics(AmieRanks(context,
                                                           *dataset))));
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table6_wn18", kgc::bench::Run);
}
