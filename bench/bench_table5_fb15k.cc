// Table 5: full link-prediction results on FB15k vs FB15k-237 for all nine
// embedding models plus AMIE, raw and filtered measures.

#include "bench/bench_common.h"
#include "util/table.h"

namespace kgc::bench {
namespace {

int Run() {
  PrintHeader("Table 5: link prediction results on FB15k and FB15k-237",
              "Akrami et al., SIGMOD'20, Table 5");
  ExperimentContext context = MakeContext();
  const BenchmarkSuite& suite = context.Fb15k();

  for (const Dataset* dataset : {&suite.kg.dataset, &suite.cleaned}) {
    // Overlap the per-model ranking sweeps before reading them one by one.
    context.WarmRanks(*dataset, PaperModelLineup());
    AsciiTable table("Results on " + dataset->name());
    table.SetHeader({"Model", "MR", "Hits@10", "MRR", "FMR", "FHits@10",
                     "FMRR"});
    for (ModelType type : PaperModelLineup()) {
      table.AddRow(RawAndFilteredRow(
          ModelTypeName(type),
          ComputeMetrics(context.GetRanks(*dataset, type))));
    }
    table.AddRow(
        RawAndFilteredRow("AMIE", ComputeMetrics(AmieRanks(context,
                                                           *dataset))));
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace kgc::bench

int main(int argc, char** argv) {
  return kgc::bench::RunBench(argc, argv, "bench_table5_fb15k", kgc::bench::Run);
}
