#!/usr/bin/env bash
# Builds the tier-1 test suite under a sanitizer configuration and runs it.
#
# Usage:
#   ci/sanitize.sh              # address + undefined (default)
#   ci/sanitize.sh address      # ASan only
#   ci/sanitize.sh undefined    # UBSan only
#   ci/sanitize.sh thread       # TSan: concurrency tests under KGC_THREADS=4
#
# Uses a dedicated build directory per configuration (build-sanitize,
# build-sanitize-thread) so it never pollutes the regular `build/` tree.
# Exits non-zero on any build or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${1:-address;undefined}"
BUILD_DIR="build-sanitize"
if [[ "${SANITIZERS}" == *thread* ]]; then
  # TSan cannot share a build tree (or a process) with ASan.
  BUILD_DIR="build-sanitize-thread"
fi

echo "== configuring with KGC_SANITIZE=${SANITIZERS} =="
cmake -B "${BUILD_DIR}" -S . -DKGC_SANITIZE="${SANITIZERS}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

if [[ "${SANITIZERS}" == *thread* ]]; then
  echo "== running concurrency tests under TSan =="
  # Force multiple worker threads even on single-core CI machines so the
  # parallel code paths (and not their serial fallbacks) are exercised;
  # run the suites that drive ParallelFor across eval, redundancy, rules
  # and the core context, plus the metrics registry / trace span suite and
  # the scoring-kernel suite (its scratch buffers are thread_local and the
  # dispatch table resolve races on first use). harness_test adds the
  # supervisor's watchdog thread + waitpid polling loop, and ingest_test
  # covers the rejected-files counter shared with parallel loaders.
  # kg_test and flat_set_test pin the storage substrate: TripleStore's flat
  # membership sets are probed concurrently (const-only) from every ranking
  # shard, so the batched probe path must be race-free. topk_test shards
  # query groups across workers and shares the norm-index cache behind a
  # mutex, and asserts bit-identical results at 1/2/4 threads.
  export KGC_THREADS=4
  # report_signal_unsafe=0: the BenchTelemetry crash handler deliberately
  # flushes the run report from inside a fatal-signal handler (a
  # best-effort last gasp on a process that is already dying); TSan would
  # otherwise convert that report into exit(66) and break harness_test's
  # exit-status attribution checks. Data-race detection is unaffected.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:report_signal_unsafe=0"
  # serve_test joins the TSan list: the server fans one accept thread, one
  # reader thread per connection and a batch thread across a shared bounded
  # queue, refcounted snapshot pins and per-connection write locks — the
  # densest cross-thread surface in the tree.
  ctest --test-dir "${BUILD_DIR}" --output-on-failure \
        -R '^(parallel_test|eval_test|redundancy_test|rules_test|core_test|obs_test|vecmath_test|harness_test|ingest_test|kg_test|flat_set_test|topk_test|serve_test)$'
else
  echo "== running tier-1 tests =="
  # halt_on_error keeps CI failures crisp; detect_leaks stays on by default
  # under ASan. UBSan is built with -fno-sanitize-recover so any finding
  # aborts the offending test.
  export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

  if [[ "${SANITIZERS}" == *address* ]]; then
    # Promote the chaos suite into the ASan leg: the SIGKILL/recovery
    # sweeps exercise the rotation and supervisor paths where lifetime
    # bugs (use-after-free of swapped generations, double-closes in the
    # crash handlers) would hide from the unit tests.
    echo "== chaos suite under ASan =="
    ci/chaos.sh "${BUILD_DIR}"

    # Storage-substrate budget gate: the 100k-entity store must stay under
    # the 64 bytes/triple ceiling and batched probes must not regress
    # behind the replaced unordered_set substrate (bench_scale exits 1 on
    # either breach). Under ASan the *memory* assertion still holds
    # (IndexBytes counts container capacities, not malloc overhead).
    # The same smoke run gates the top-K fast path: >= 3x over the
    # full-sweep oracle at K=10 on the clustered 100k workload, with the
    # oracle cross-check on (the ratio is instrumentation-neutral: ASan
    # slows both sides alike).
    echo "== bench_scale smoke budget under ASan =="
    "${BUILD_DIR}/bench/bench_scale" --smoke

    # Serving overload smoke under ASan: a short kgc_serve + kgc_load
    # session with a deliberately tiny admission queue and a stall
    # failpoint in batch scoring. Asserts the robustness path actually
    # fired (>= 1 request shed with a typed OVERLOADED reply, zero
    # fingerprint mismatches on the replies that did land) and that
    # SIGTERM drains cleanly (exit 0) — all with leak detection on, so
    # shed/drained requests that leak their buffers fail the leg.
    echo "== serving overload smoke under ASan =="
    SMOKE_DIR="$(mktemp -d)"
    trap 'rm -rf "${SMOKE_DIR}"' EXIT
    # 8 closed-loop connections against a 2-deep queue: while a stalled
    # batch holds the worker, at most 2 requests sit admitted and the
    # other 6 must shed (a queue >= the connection count could never
    # overflow under closed-loop load).
    KGC_FAULTS="stall@serve:batch:times=100000:ms=25" \
      KGC_SERVE_QUEUE=2 KGC_SERVE_MAX_BATCH=4 \
      "${BUILD_DIR}/tools/kgc_serve" --socket="${SMOKE_DIR}/s.sock" \
      --snapshot-dir="${SMOKE_DIR}/snap" --bootstrap=tiny \
      --bootstrap-epochs=3 --threads=1 \
      > "${SMOKE_DIR}/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 600); do
      grep -q '^READY' "${SMOKE_DIR}/serve.log" 2>/dev/null && break
      kill -0 "${SERVE_PID}" 2>/dev/null || {
        echo "FAIL: kgc_serve died before READY"; cat "${SMOKE_DIR}/serve.log"
        exit 1
      }
      sleep 0.05
    done
    "${BUILD_DIR}/tools/kgc_load" --socket="${SMOKE_DIR}/s.sock" \
      --snapshot-dir="${SMOKE_DIR}/snap" --connections=8 --duration-s=3 \
      --queries=32 --k=5 --json="${SMOKE_DIR}/overload.json"
    kill -TERM "${SERVE_PID}"
    if ! wait "${SERVE_PID}"; then
      echo "FAIL: kgc_serve did not drain cleanly on SIGTERM"
      tail -5 "${SMOKE_DIR}/serve.log"
      exit 1
    fi
    grep '^drain' "${SMOKE_DIR}/serve.log"
    python3 - "${SMOKE_DIR}/overload.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["shed"] >= 1, "overload never shed a request: %r" % r
assert r["fingerprint_mismatches"] == 0, r
assert r["replies_ok"] > 0, r
print(f"overload smoke OK: {r['shed']} shed, {r['replies_ok']} ok, "
      f"0 mismatches, clean drain")
EOF
  fi
fi

echo "== sanitize run passed =="
