#!/usr/bin/env bash
# Builds the tier-1 test suite under ASan + UBSan and runs it.
#
# Usage:
#   ci/sanitize.sh              # address + undefined (default)
#   ci/sanitize.sh address      # ASan only
#   ci/sanitize.sh undefined    # UBSan only
#
# Uses a dedicated build directory (build-sanitize) so it never pollutes
# the regular `build/` tree. Exits non-zero on any build or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${1:-address;undefined}"
BUILD_DIR="build-sanitize"

echo "== configuring with KGC_SANITIZE=${SANITIZERS} =="
cmake -B "${BUILD_DIR}" -S . -DKGC_SANITIZE="${SANITIZERS}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building =="
cmake --build "${BUILD_DIR}" -j "$(nproc)"

echo "== running tier-1 tests =="
# halt_on_error keeps CI failures crisp; detect_leaks stays on by default
# under ASan. UBSan is built with -fno-sanitize-recover so any finding
# aborts the offending test.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

echo "== sanitize run passed =="
