#!/usr/bin/env bash
# Chaos smoke test: runs a reduced bench suite twice through the kgc_suite
# supervisor -- once clean, once with a randomized KGC_FAULTS spec injected
# into every table's first attempt -- and asserts that
#
#   1. every table in BOTH manifests finishes with status "ok" (the
#      supervisor's retry/backoff path absorbs the injected faults), and
#   2. each table's stdout is bit-identical between the clean and the
#      chaos run (recovery never changes results, only timing).
#
# The fault spec is drawn from CHAOS_SEED (default: random). On failure the
# script prints the seed so the exact run can be replayed:
#
#   CHAOS_SEED=12345 ci/chaos.sh
#
# Usage: ci/chaos.sh [build-dir]      (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SUITE="${BUILD_DIR}/tools/kgc_suite"

# Cheap tables that still cross real phase boundaries: table1/fig4/sec421
# are pure dataset analyses; fig1 trains and ranks, so stall/crash
# failpoints (which fire at phase boundaries) actually trigger.
TABLES="bench_table1_dataset_stats,bench_fig4_redundancy_cases"
TABLES+=",bench_sec421_reverse_leakage,bench_fig1_fmrr_drop"

STREAM="${BUILD_DIR}/tools/kgc_stream"

if [[ ! -x "${SUITE}" || ! -x "${STREAM}" ]]; then
  echo "== building kgc_suite, kgc_stream and the reduced table set =="
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target kgc_suite kgc_stream \
        bench_table1_dataset_stats bench_fig4_redundancy_cases \
        bench_sec421_reverse_leakage bench_fig1_fmrr_drop
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT

# Randomize the fault mix, but keep it replayable via CHAOS_SEED.
CHAOS_SEED="${CHAOS_SEED:-${RANDOM}}"
RANDOM="${CHAOS_SEED}"
STALL_MS=$((20 + RANDOM % 100))
FAULT_POOL=(
  "crash:times=1"
  "stall:times=2:ms=${STALL_MS}"
  "torn_write:times=1"
  "crash:times=1,stall:times=1:ms=${STALL_MS}"
  "mkdir_fail:times=1,torn_write:times=1"
)
FAULTS="${FAULT_POOL[$((RANDOM % ${#FAULT_POOL[@]}))]}"
echo "== chaos seed ${CHAOS_SEED}: KGC_FAULTS='${FAULTS}' =="

run_suite() {  # run_suite <name> [extra kgc_suite flags...]
  local name="$1"; shift
  echo "== ${name} suite run =="
  "${SUITE}" --bench-dir="${BUILD_DIR}/bench" --tables="${TABLES}" \
             --out-dir="${WORK_DIR}/${name}" \
             --cache-dir="${WORK_DIR}/${name}-cache" \
             --epoch-scale=0.1 "$@"
}

run_suite clean
run_suite chaos --chaos-faults="${FAULTS}" --retries=3

check_manifest() {  # every table line in the manifest must be status ok
  local manifest="$1"
  if grep '"kgc.suite_manifest.v1"' "${manifest}" \
      | grep -v '"table":"_suite"' | grep -qv '"status":"ok"'; then
    echo "FAIL: degraded tables in ${manifest} (seed ${CHAOS_SEED}):"
    grep -v '"status":"ok"' "${manifest}"
    exit 1
  fi
}

echo "== checking manifests =="
check_manifest "${WORK_DIR}/clean/suite_manifest.jsonl"
check_manifest "${WORK_DIR}/chaos/suite_manifest.jsonl"

echo "== comparing per-table output (clean vs chaos) =="
IFS=',' read -ra TABLE_LIST <<< "${TABLES}"
for table in "${TABLE_LIST[@]}"; do
  if ! diff -q "${WORK_DIR}/clean/${table}.out" \
              "${WORK_DIR}/chaos/${table}.out"; then
    echo "FAIL: ${table} output diverged under chaos (seed ${CHAOS_SEED})"
    diff "${WORK_DIR}/clean/${table}.out" "${WORK_DIR}/chaos/${table}.out" \
      | head -20
    exit 1
  fi
done

# ---------------------------------------------------------------------------
# Snapshot rotation sweep: SIGKILL the rotator at every named failpoint of
# the publish and rollback protocols, then assert that
#
#   1. the crashed process actually died at the failpoint (exit 137),
#   2. a replay run recovers to a consistent generation and finishes, and
#   3. the recovered registry's --verify fingerprint (generation, valid
#      fMRR rendered %.17g, CRC-32 of all model scores) is bit-identical
#      to an uninterrupted run's.

STREAM_FLAGS=(--batches=3 --epochs=4 --bootstrap-epochs=6 --threads=1 --seed=7)

echo "== snapshot chaos: clean reference run =="
"${STREAM}" --snapshot-dir="${WORK_DIR}/snap-clean" "${STREAM_FLAGS[@]}" \
  > /dev/null
CLEAN_FP="$("${STREAM}" --snapshot-dir="${WORK_DIR}/snap-clean" --verify)"
echo "   ${CLEAN_FP}"

# skip=1: the bootstrap publish hits each site first and must survive;
# the crash lands on batch-000's rotation, mid-chain.
PUBLISH_SITES=(rotate:stage rotate:manifest rotate:rename
               publish:current publish:log)
for site in "${PUBLISH_SITES[@]}"; do
  dir="${WORK_DIR}/snap-$(echo "${site}" | tr ':' '_')"
  set +e
  KGC_FAULTS="crash@${site}:skip=1" \
    "${STREAM}" --snapshot-dir="${dir}" "${STREAM_FLAGS[@]}" \
    > /dev/null 2>&1
  rc=$?
  set -e
  if [[ ${rc} -ne 137 ]]; then
    echo "FAIL: crash@${site} did not kill kgc_stream (exit ${rc})"
    exit 1
  fi
  "${STREAM}" --snapshot-dir="${dir}" "${STREAM_FLAGS[@]}" > /dev/null
  fp="$("${STREAM}" --snapshot-dir="${dir}" --verify)"
  if [[ "${fp}" != "${CLEAN_FP}" ]]; then
    echo "FAIL: crash@${site}: recovered registry diverged"
    echo "  clean:     ${CLEAN_FP}"
    echo "  recovered: ${fp}"
    exit 1
  fi
  echo "   crash@${site}: recovered bit-identical"
done

# Rollback path: --epsilon=-2 makes the regression gate reject every
# candidate, so the rollback failpoints actually fire. The registry must
# end pinned to the bootstrap generation with the verdicts on record.
echo "== snapshot chaos: rollback sweep (epsilon=-2) =="
"${STREAM}" --snapshot-dir="${WORK_DIR}/snap-rb-clean" \
  "${STREAM_FLAGS[@]}" --epsilon=-2 > /dev/null
RB_FP="$("${STREAM}" --snapshot-dir="${WORK_DIR}/snap-rb-clean" --verify)"

ROLLBACK_SITES=(rollback:quarantine rollback:cleanup rollback:record)
for site in "${ROLLBACK_SITES[@]}"; do
  dir="${WORK_DIR}/snap-$(echo "${site}" | tr ':' '_')"
  set +e
  KGC_FAULTS="crash@${site}" \
    "${STREAM}" --snapshot-dir="${dir}" "${STREAM_FLAGS[@]}" --epsilon=-2 \
    > /dev/null 2>&1
  rc=$?
  set -e
  if [[ ${rc} -ne 137 ]]; then
    echo "FAIL: crash@${site} did not kill kgc_stream (exit ${rc})"
    exit 1
  fi
  "${STREAM}" --snapshot-dir="${dir}" "${STREAM_FLAGS[@]}" --epsilon=-2 \
    > /dev/null
  fp="$("${STREAM}" --snapshot-dir="${dir}" --verify)"
  if [[ "${fp}" != "${RB_FP}" ]]; then
    echo "FAIL: crash@${site}: rollback recovery diverged"
    echo "  clean:     ${RB_FP}"
    echo "  recovered: ${fp}"
    exit 1
  fi
  if ! grep -q '"status":"rolled_back"' "${dir}/rotation.log"; then
    echo "FAIL: crash@${site}: no rolled_back record in rotation.log"
    exit 1
  fi
  echo "   crash@${site}: rolled back, registry consistent"
done

# ---------------------------------------------------------------------------
# Serving chaos: SIGKILL kgc_serve mid-load (via the crash@serve:batch
# failpoint, so the kill lands deterministically inside batch scoring),
# restart it against the same registry, and assert that
#
#   1. the server actually died at the failpoint (exit 137),
#   2. the restart recovers the newest intact generation and goes READY,
#   3. kgc_load — which validated every OK reply against scoring
#      fingerprints computed from the snapshot — reports ZERO mismatches
#      across the kill (the restarted server's scores are bit-identical;
#      a model that came back different would fail every CRC), and
#   4. the load survived the outage via reconnect rather than erroring out.

SERVE="${BUILD_DIR}/tools/kgc_serve"
LOAD="${BUILD_DIR}/tools/kgc_load"
if [[ ! -x "${SERVE}" || ! -x "${LOAD}" ]]; then
  echo "== building kgc_serve and kgc_load =="
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target kgc_serve_tool kgc_load
fi

SERVE_SOCK="${WORK_DIR}/serve.sock"
SERVE_SNAP="${WORK_DIR}/serve-snap"
SERVE_FLAGS=(--socket="${SERVE_SOCK}" --snapshot-dir="${SERVE_SNAP}"
             --bootstrap=scale:1000 --bootstrap-epochs=4 --seed=7 --threads=1)

start_serve() {  # start_serve [env KGC_FAULTS spec]
  local faults="${1:-}"
  KGC_FAULTS="${faults}" "${SERVE}" "${SERVE_FLAGS[@]}" \
    > "${WORK_DIR}/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 600); do
    grep -q '^READY' "${WORK_DIR}/serve.log" 2>/dev/null && return 0
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then
      echo "FAIL: kgc_serve exited before READY:"
      tail -5 "${WORK_DIR}/serve.log"
      exit 1
    fi
    sleep 0.05
  done
  echo "FAIL: kgc_serve never went READY"
  exit 1
}

echo "== serving chaos: SIGKILL mid-load, restart, fingerprint check =="
# skip=400 lets the load ramp up before the failpoint hard-exits the
# server mid-batch; times=1 so the restarted server serves normally.
start_serve "crash@serve:batch:skip=400"
"${LOAD}" --socket="${SERVE_SOCK}" --snapshot-dir="${SERVE_SNAP}" \
  --connections=4 --duration-s=6 --queries=64 --k=10 \
  --json="${WORK_DIR}/serving_chaos.json" \
  > "${WORK_DIR}/load.log" 2>&1 &
LOAD_PID=$!

set +e
wait "${SERVE_PID}"
SERVE_RC=$?
set -e
if [[ ${SERVE_RC} -ne 137 ]]; then
  echo "FAIL: crash@serve:batch did not kill kgc_serve (exit ${SERVE_RC})"
  kill "${LOAD_PID}" 2>/dev/null || true
  exit 1
fi
echo "   server died at failpoint (exit 137); restarting"
start_serve  # same flags: recovery must land on the same generation 0

set +e
wait "${LOAD_PID}"
LOAD_RC=$?
set -e
cat "${WORK_DIR}/load.log" | sed 's/^/   /'
if [[ ${LOAD_RC} -ne 0 ]]; then
  echo "FAIL: kgc_load failed across the kill (exit ${LOAD_RC})"
  exit 1
fi
python3 - "${WORK_DIR}/serving_chaos.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "kgc.serving_bench.v1", r["schema"]
assert r["fingerprint_mismatches"] == 0, r
assert r["replies_ok"] > 0, r
assert r["reconnects"] >= 1, "load never saw the outage: %r" % r
print(f"serving chaos OK: {r['replies_ok']} replies fingerprint-clean "
      f"across SIGKILL ({r['reconnects']} reconnects)")
EOF
kill "${SERVE_PID}" 2>/dev/null || true
wait "${SERVE_PID}" 2>/dev/null || true

# ---------------------------------------------------------------------------
# Partial-trace chaos: SIGKILL a traced bench mid-run. The incremental
# drain (KGC_TRACE_DRAIN=1 drains after every span) must leave an on-disk
# prefix that repair-parses by closing the JSON array — a killed run still
# yields a usable trace.

echo "== partial-trace chaos: SIGKILL mid-run =="
PT_TRACE="${WORK_DIR}/partial_trace.json"
KGC_TRACE="${PT_TRACE}" KGC_TRACE_DRAIN=1 \
  KGC_CACHE_DIR="${WORK_DIR}/pt-cache" \
  "${BUILD_DIR}/bench/bench_fig1_fmrr_drop" > /dev/null 2>&1 &
PT_PID=$!
for _ in $(seq 1 200); do
  if [[ -s "${PT_TRACE}" ]] && grep -q '"ph":"X"' "${PT_TRACE}"; then
    break
  fi
  if ! kill -0 "${PT_PID}" 2>/dev/null; then
    echo "FAIL: traced bench exited before it could be killed"
    exit 1
  fi
  sleep 0.05
done
kill -9 "${PT_PID}" 2>/dev/null || true
wait "${PT_PID}" 2>/dev/null || true
python3 - "${PT_TRACE}" <<'EOF'
import json, sys
raw = open(sys.argv[1]).read()
assert raw.startswith("["), "partial trace must open a JSON array"
# The run never reached FlushTrace, so close the array ourselves. A kill
# landing mid-write can tear the very last line; peel lines off the tail
# until the prefix parses.
body = raw
while True:
    try:
        events = json.loads(body.rstrip().rstrip(",") + "\n]")
        break
    except json.JSONDecodeError:
        cut = body.rfind("\n")
        assert cut > 0, "no parseable prefix in partial trace"
        body = body[:cut]
assert events[0]["name"] == "kgc_clock_sync", events[0]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete spans drained before SIGKILL"
print(f"partial trace OK: {len(spans)} spans survived SIGKILL")
EOF

echo "== chaos run passed (seed ${CHAOS_SEED}) =="
