#!/usr/bin/env bash
# Telemetry smoke test: runs one fast bench binary with KGC_METRICS and
# KGC_TRACE set, then validates that every artifact is well-formed.
#
#   - the trace file must parse as a Chrome trace_event JSON array whose
#     first event is the kgc_clock_sync metadata record
#   - the metrics file must be JSONL: every line a complete JSON object
#     carrying the kgc.run_report.v1 schema, with duration quantiles and
#     resource accounting sections
#   - with KGC_METRICS_INTERVAL_MS=50 the live exporter must emit a
#     kgc.timeseries.v1 JSONL file (monotone cumulative counters, a final
#     record) plus a Prometheus-style exposition file, and the final
#     cumulative counters must be bit-identical across KGC_THREADS
#
# Usage: ci/obs_smoke.sh [build-dir]      (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH="${BUILD_DIR}/bench/bench_table1_dataset_stats"

if [[ ! -x "${BENCH}" ]]; then
  echo "== building ${BENCH} =="
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_table1_dataset_stats
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT
TRACE_FILE="${WORK_DIR}/trace.json"
METRICS_FILE="${WORK_DIR}/metrics.jsonl"

echo "== running ${BENCH} with telemetry enabled =="
# Run twice so the JSONL report accumulates lines (and the second run
# exercises the warm-cache path).
for run in 1 2; do
  KGC_TRACE="${TRACE_FILE}" KGC_METRICS="${METRICS_FILE}" \
  KGC_CACHE_DIR="${WORK_DIR}/cache" "${BENCH}" > /dev/null
done

echo "== validating trace JSON =="
if command -v python3 > /dev/null; then
  python3 -m json.tool "${TRACE_FILE}" > /dev/null
  python3 - "${TRACE_FILE}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    events = json.load(f)
assert isinstance(events, list), "trace must be a JSON array of events"
assert events, "trace has no events"
assert events[0]["name"] == "kgc_clock_sync", events[0]
assert "wall" in events[0]["args"] and "steady_ms" in events[0]["args"]
names = {e["name"] for e in events}
assert "make_suite" in names, f"expected a make_suite span, got {sorted(names)}"
for e in events:
    for key in ("name", "ph", "pid", "tid"):
        assert key in e, f"trace event missing {key}: {e}"
    if e["ph"] == "X":
        assert "ts" in e and "dur" in e, f"span missing ts/dur: {e}"
print(f"trace OK: {len(events)} events, {len(names)} span names")
EOF
elif command -v jq > /dev/null; then
  jq -e 'length > 0 and .[0].name == "kgc_clock_sync"' "${TRACE_FILE}" \
    > /dev/null
  echo "trace OK ($(jq 'length' "${TRACE_FILE}") events)"
else
  echo "ERROR: need python3 or jq to validate JSON" >&2
  exit 1
fi

echo "== validating metrics JSONL =="
if command -v python3 > /dev/null; then
  python3 - "${METRICS_FILE}" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 2, f"expected 2 report lines, got {len(lines)}"
for line in lines:
    report = json.loads(line)
    assert report["schema"] == "kgc.run_report.v1", report["schema"]
    for section in ("name", "timestamp", "steady_ms", "threads",
                    "wall_seconds", "exit_code", "counters", "gauges",
                    "histograms", "durations", "spans", "resources"):
        assert section in report, f"report missing {section}"
    for counter in ("kgc.trainer.epochs", "kgc.ranker.triples_ranked",
                    "kgc.redundancy.pairs_compared", "kgc.amie.candidates",
                    "kgc.cache.model_hits", "kgc.faults.injected"):
        assert counter in report["counters"], f"report missing {counter}"
    for duration in ("kgc.trainer.epoch_seconds", "kgc.ranker.shard_seconds"):
        d = report["durations"][duration]
        for field in ("count", "sum", "p50", "p90", "p99", "p999", "max"):
            assert field in d, f"{duration} missing {field}"
    process = report["resources"]["process"]
    assert process["max_rss_bytes"] > 0, process
    assert process["cpu_user_seconds"] >= 0.0, process
    assert report["exit_code"] == 0, report["exit_code"]
print(f"metrics OK: {len(lines)} report lines")
EOF
else
  while IFS= read -r line; do
    [[ -z "${line}" ]] && continue
    printf '%s' "${line}" | jq -e '.schema == "kgc.run_report.v1"' > /dev/null
  done < "${METRICS_FILE}"
  echo "metrics OK ($(wc -l < "${METRICS_FILE}") report lines)"
fi

echo "== running with the live exporter at 50 ms =="
run_with_exporter() {  # run_with_exporter <threads> <timeseries> <prom>
  KGC_THREADS="$1" KGC_METRICS_INTERVAL_MS=50 KGC_TIMESERIES="$2" \
  KGC_EXPOSITION="$3" KGC_CACHE_DIR="${WORK_DIR}/cache-t$1" \
    "${BENCH}" > /dev/null
}
run_with_exporter 1 "${WORK_DIR}/ts_t1.jsonl" "${WORK_DIR}/t1.prom"
run_with_exporter 4 "${WORK_DIR}/ts_t4.jsonl" "${WORK_DIR}/t4.prom"

if command -v python3 > /dev/null; then
  python3 - "${WORK_DIR}/ts_t1.jsonl" "${WORK_DIR}/ts_t4.jsonl" <<'EOF'
import json, sys

def load(path):
    records = [json.loads(l) for l in open(path) if l.strip()]
    assert records, f"{path}: no time-series records"
    prev_seq, prev_steady = -1, -1.0
    totals = {}
    for r in records:
        assert r["schema"] == "kgc.timeseries.v1", r["schema"]
        assert r["seq"] > prev_seq, "seq must be strictly increasing"
        assert r["steady_ms"] >= prev_steady, "steady clock went backwards"
        prev_seq, prev_steady = r["seq"], r["steady_ms"]
        assert "wall" in r and "resources" in r and "durations" in r, r.keys()
        for name, sample in r["counters"].items():
            assert sample["total"] >= totals.get(name, 0), \
                f"{name} cumulative total decreased"
            assert sample["delta"] >= 0, f"{name} negative delta"
            totals[name] = sample["total"]
    assert records[-1].get("final") is True, "missing final record"
    return records, totals

t1_records, t1_totals = load(sys.argv[1])
t4_records, t4_totals = load(sys.argv[2])
# The execution engine's determinism contract: final cumulative counters
# are bit-identical across KGC_THREADS (durations are timing-domain and
# exempt).
assert t1_totals == t4_totals, (
    "final counters differ across KGC_THREADS:\n"
    + "\n".join(f"  {k}: t1={t1_totals.get(k)} t4={t4_totals.get(k)}"
                for k in sorted(set(t1_totals) | set(t4_totals))
                if t1_totals.get(k) != t4_totals.get(k)))
print(f"timeseries OK: {len(t1_records)}/{len(t4_records)} records, "
      f"{len(t1_totals)} counters bit-identical across threads")
EOF
else
  echo "ERROR: need python3 to validate the time-series" >&2
  exit 1
fi

for prom in "${WORK_DIR}/t1.prom" "${WORK_DIR}/t4.prom"; do
  grep -q '^# TYPE kgc_ranker_triples_ranked counter$' "${prom}"
  grep -q '^# TYPE kgc_trainer_epoch_seconds summary$' "${prom}"
  grep -q 'quantile="0.99"' "${prom}"
done
echo "exposition OK: $(grep -c '^# TYPE' "${WORK_DIR}/t1.prom") metric types"

echo "== obs smoke test passed =="
