#!/usr/bin/env bash
# Telemetry smoke test: runs one fast bench binary with KGC_METRICS and
# KGC_TRACE set, then validates that both artifacts are well-formed.
#
#   - the trace file must parse as one Chrome trace_event JSON document
#   - the metrics file must be JSONL: every line a complete JSON object
#     carrying the kgc.run_report.v1 schema
#
# Usage: ci/obs_smoke.sh [build-dir]      (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH="${BUILD_DIR}/bench/bench_table1_dataset_stats"

if [[ ! -x "${BENCH}" ]]; then
  echo "== building ${BENCH} =="
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_table1_dataset_stats
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT
TRACE_FILE="${WORK_DIR}/trace.json"
METRICS_FILE="${WORK_DIR}/metrics.jsonl"

echo "== running ${BENCH} with telemetry enabled =="
# Run twice so the JSONL report accumulates lines (and the second run
# exercises the warm-cache path).
for run in 1 2; do
  KGC_TRACE="${TRACE_FILE}" KGC_METRICS="${METRICS_FILE}" \
  KGC_CACHE_DIR="${WORK_DIR}/cache" "${BENCH}" > /dev/null
done

echo "== validating trace JSON =="
if command -v python3 > /dev/null; then
  python3 -m json.tool "${TRACE_FILE}" > /dev/null
  python3 - "${TRACE_FILE}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
names = {e["name"] for e in events}
assert "make_suite" in names, f"expected a make_suite span, got {sorted(names)}"
for e in events:
    for key in ("name", "ph", "pid", "tid", "ts", "dur"):
        assert key in e, f"trace event missing {key}: {e}"
print(f"trace OK: {len(events)} events, {len(names)} span names")
EOF
elif command -v jq > /dev/null; then
  jq -e '.traceEvents | length > 0' "${TRACE_FILE}" > /dev/null
  echo "trace OK ($(jq '.traceEvents | length' "${TRACE_FILE}") events)"
else
  echo "ERROR: need python3 or jq to validate JSON" >&2
  exit 1
fi

echo "== validating metrics JSONL =="
if command -v python3 > /dev/null; then
  python3 - "${METRICS_FILE}" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 2, f"expected 2 report lines, got {len(lines)}"
for line in lines:
    report = json.loads(line)
    assert report["schema"] == "kgc.run_report.v1", report["schema"]
    for section in ("name", "timestamp", "threads", "wall_seconds",
                    "exit_code", "counters", "gauges", "histograms", "spans"):
        assert section in report, f"report missing {section}"
    for counter in ("kgc.trainer.epochs", "kgc.ranker.triples_ranked",
                    "kgc.redundancy.pairs_compared", "kgc.amie.candidates",
                    "kgc.cache.model_hits", "kgc.faults.injected"):
        assert counter in report["counters"], f"report missing {counter}"
    assert report["exit_code"] == 0, report["exit_code"]
print(f"metrics OK: {len(lines)} report lines")
EOF
else
  while IFS= read -r line; do
    [[ -z "${line}" ]] && continue
    printf '%s' "${line}" | jq -e '.schema == "kgc.run_report.v1"' > /dev/null
  done < "${METRICS_FILE}"
  echo "metrics OK ($(wc -l < "${METRICS_FILE}") report lines)"
fi

echo "== obs smoke test passed =="
