// kgc_suite: supervisor for the bench suite.
//
// Runs each bench table as an isolated subprocess with a watchdog, retries
// transient failures with exponential backoff, escalates repeated crashes
// to cache quarantine, and records every outcome in a
// kgc.suite_manifest.v1 JSONL manifest — a table that exhausts its retries
// is marked "failed" while the rest of the suite completes. See
// src/harness/suite.h for the policy details.
//
// Usage:
//   kgc_suite --bench-dir=build/bench [--tables=a,b,c] [--out-dir=DIR]
//             [--cache-dir=DIR] [--manifest=PATH] [--timeout-s=N]
//             [--phase-timeout-s=N] [--retries=N] [--backoff-s=N]
//             [--chaos-faults=SPEC] [--epoch-scale=F] [--threads=N]
//             [--list]
//
// Exit code: 0 when every table is "ok", 1 when the suite degraded, 2 on
// usage errors.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/suite.h"
#include "util/string_util.h"

namespace {

using kgc::SuiteOptions;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: kgc_suite --bench-dir=DIR [options]\n"
               "  --tables=a,b,c       tables to run (default: full suite)\n"
               "  --list               print the default table list and exit\n"
               "  --out-dir=DIR        captures + manifest (default "
               "kgc_suite_out)\n"
               "  --cache-dir=DIR      shared KGC_CACHE_DIR for children\n"
               "  --manifest=PATH      manifest path (default "
               "<out-dir>/suite_manifest.jsonl)\n"
               "  --timeout-s=N        per-attempt watchdog (default off)\n"
               "  --grace-s=N          SIGTERM->SIGKILL grace (default 5)\n"
               "  --phase-timeout-s=N  child KGC_PHASE_TIMEOUT_S "
               "(default off)\n"
               "  --retries=N          retries after the first attempt "
               "(default 2)\n"
               "  --backoff-s=N        base retry backoff (default 0.5)\n"
               "  --chaos-faults=SPEC  KGC_FAULTS for first attempts only\n"
               "  --epoch-scale=F      child KGC_EPOCH_SCALE\n"
               "  --threads=N          child KGC_THREADS\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (!kgc::StartsWith(arg, prefix)) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SuiteOptions options;
  options.max_attempts = 3;
  std::string value;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "bench-dir", &value)) {
      options.bench_dir = value;
    } else if (ParseFlag(arg, "tables", &value)) {
      for (const std::string& t : kgc::Split(value, ',')) {
        const std::string name(kgc::Trim(t));
        if (!name.empty()) options.tables.push_back(name);
      }
    } else if (ParseFlag(arg, "out-dir", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(arg, "cache-dir", &value)) {
      options.cache_dir = value;
    } else if (ParseFlag(arg, "manifest", &value)) {
      options.manifest_path = value;
    } else if (ParseFlag(arg, "timeout-s", &value)) {
      options.timeout_seconds = std::atof(value.c_str());
    } else if (ParseFlag(arg, "grace-s", &value)) {
      options.term_grace_seconds = std::atof(value.c_str());
    } else if (ParseFlag(arg, "phase-timeout-s", &value)) {
      options.phase_timeout_seconds = std::atof(value.c_str());
    } else if (ParseFlag(arg, "retries", &value)) {
      options.max_attempts = std::atoi(value.c_str()) + 1;
    } else if (ParseFlag(arg, "backoff-s", &value)) {
      options.backoff_base_seconds = std::atof(value.c_str());
    } else if (ParseFlag(arg, "chaos-faults", &value)) {
      options.chaos_faults = value;
    } else if (ParseFlag(arg, "epoch-scale", &value)) {
      options.epoch_scale = value;
    } else if (ParseFlag(arg, "threads", &value)) {
      options.threads = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "kgc_suite: unknown flag '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (options.tables.empty()) {
    options.tables = kgc::DefaultBenchTables();
  }
  if (list_only) {
    for (const std::string& t : options.tables) {
      std::printf("%s\n", t.c_str());
    }
    return 0;
  }
  if (options.bench_dir.empty()) {
    std::fprintf(stderr, "kgc_suite: --bench-dir is required\n");
    PrintUsage();
    return 2;
  }

  auto suite = kgc::RunSuite(options);
  if (!suite.ok()) {
    std::fprintf(stderr, "kgc_suite: %s\n",
                 suite.status().ToString().c_str());
    return 2;
  }
  for (const kgc::TableRun& run : suite->tables) {
    std::printf("%-40s %-8s attempts=%d %s (%.1fs)%s\n", run.table.c_str(),
                run.status.c_str(), run.attempts, run.exit_detail.c_str(),
                run.seconds,
                run.quarantined > 0
                    ? kgc::StrFormat(" quarantined=%d", run.quarantined)
                          .c_str()
                    : "");
  }
  std::printf("manifest: %s\n", suite->manifest_path.c_str());
  if (!suite->all_ok()) {
    std::printf("suite degraded: %d table(s) not ok\n", suite->num_failed());
    return 1;
  }
  std::printf("suite ok: all %zu tables\n", suite->tables.size());
  return 0;
}
