// kgc_top: terminal viewer for the live metrics time-series.
//
// Tails the kgc.timeseries.v1 JSONL file the in-process exporter
// (src/obs/exporter.h) appends while a bench or tool runs with
// KGC_METRICS_INTERVAL_MS set, and renders the newest record as a
// one-screen dashboard: counter totals and per-tick deltas, gauges,
// duration quantiles, and process resource usage.
//
// Usage:
//   kgc_top [--file=PATH] [--interval-ms=N] [--once]
//
//   --file         time-series file to follow (default: $KGC_TIMESERIES,
//                  else kgc_timeseries.jsonl)
//   --interval-ms  refresh period in watch mode (default 1000)
//   --once         render the newest record once and exit
//
// Watch mode refreshes until the run writes its final record (the
// exporter marks it "final":true) or the viewer is interrupted. Records
// are whole flushed lines, so a file cut short by SIGKILL still renders:
// the last complete line wins and a trailing partial line is ignored.
//
// Exit code: 0 on success, 1 when no record could be read, 2 on usage.

#include <sys/ioctl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/json_parse.h"

namespace {

using kgc::obs::JsonValue;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: kgc_top [--file=PATH] [--interval-ms=N] [--once]\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

// Newest complete record in the file: the last line that parses as a
// kgc.timeseries.v1 object. A trailing partial line (writer mid-append,
// or the run was SIGKILLed mid-write) simply fails to parse and is
// skipped in favor of the line before it.
bool ReadNewestRecord(const std::string& path, JsonValue* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  bool found = false;
  JsonValue parsed;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue candidate;
    if (!JsonValue::Parse(line, &candidate)) continue;
    const JsonValue* schema = candidate.Find("schema");
    if (schema == nullptr || schema->AsString() != "kgc.timeseries.v1") {
      continue;
    }
    parsed = std::move(candidate);
    found = true;
  }
  if (found) *out = std::move(parsed);
  return found;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f %s", bytes, units[unit]);
  return buffer;
}

std::string HumanSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f s", seconds);
  }
  return buffer;
}

double NumberField(const JsonValue& object, const char* key,
                   double fallback = 0.0) {
  const JsonValue* value = object.Find(key);
  return value == nullptr ? fallback : value->AsNumber(fallback);
}

// Columns of the attached terminal: TIOCGWINSZ, then $COLUMNS (set by
// shells even when stdout is piped), then the classic 80.
int TerminalWidth() {
  winsize ws{};
  if (ioctl(STDOUT_FILENO, TIOCGWINSZ, &ws) == 0 && ws.ws_col > 0) {
    return ws.ws_col;
  }
  if (const char* cols = std::getenv("COLUMNS");
      cols != nullptr && cols[0] != '\0') {
    const int parsed = std::atoi(cols);
    if (parsed > 0) return parsed;
  }
  return 80;
}

// Label column width for a metric table: wide enough for the longest name
// so the numbers align, but only if such a row still fits the terminal.
// Returns 0 when it cannot fit — the caller then renders each metric as
// two lines (full name, then the numbers indented) instead of truncating
// the name: metric names like kgc.topk.entities_scored carry their
// meaning in the suffix, which is exactly what truncation would cut.
size_t LabelWidth(size_t longest_name, size_t header_width,
                  size_t numeric_width, int term_width) {
  const size_t width = std::max(longest_name, header_width);
  if (width + 1 + numeric_width <= static_cast<size_t>(term_width)) {
    return width;
  }
  return 0;
}

void RenderRecord(const JsonValue& record) {
  const JsonValue* run = record.Find("run");
  const JsonValue* wall = record.Find("wall");
  const JsonValue* final_flag = record.Find("final");
  const double dt_ms = NumberField(record, "dt_ms");
  std::printf("kgc_top — run %s  seq %.0f  wall %s  tick %.0f ms%s\n",
              run != nullptr ? run->AsString().c_str() : "?",
              NumberField(record, "seq"),
              wall != nullptr ? wall->AsString().c_str() : "?", dt_ms,
              final_flag != nullptr && final_flag->AsBool() ? "  [final]"
                                                            : "");

  const JsonValue* resources = record.Find("resources");
  if (resources != nullptr && resources->is_object()) {
    std::printf(
        "cpu user %.2fs  sys %.2fs  rss %s  faults %.0f/%.0f  "
        "ctx %.0f/%.0f\n",
        NumberField(*resources, "cpu_user_seconds"),
        NumberField(*resources, "cpu_sys_seconds"),
        HumanBytes(NumberField(*resources, "max_rss_bytes")).c_str(),
        NumberField(*resources, "minor_faults"),
        NumberField(*resources, "major_faults"),
        NumberField(*resources, "vol_ctx_switches"),
        NumberField(*resources, "invol_ctx_switches"));
  }
  const JsonValue* perf = record.Find("perf");
  if (perf != nullptr && perf->is_object()) {
    std::printf("perf cycles %.3g  instr %.3g  cache-miss %.3g  "
                "branch-miss %.3g\n",
                NumberField(*perf, "cycles"),
                NumberField(*perf, "instructions"),
                NumberField(*perf, "cache_misses"),
                NumberField(*perf, "branch_misses"));
  }

  const int term_width = TerminalWidth();
  const JsonValue* counters = record.Find("counters");
  if (counters != nullptr && counters->is_object() &&
      !counters->AsObject().empty()) {
    size_t longest = 0;
    for (const auto& [name, sample] : counters->AsObject()) {
      longest = std::max(longest, name.size());
    }
    // Numeric tail: "%14.0f %10.0f %12.1f" plus the separating spaces.
    const size_t label =
        LabelWidth(longest, std::strlen("COUNTER"), 38, term_width);
    if (label > 0) {
      std::printf("\n%-*s %14s %10s %12s\n", static_cast<int>(label),
                  "COUNTER", "TOTAL", "DELTA", "RATE/S");
    } else {
      std::printf("\nCOUNTER, then %14s %10s %12s\n", "TOTAL", "DELTA",
                  "RATE/S");
    }
    for (const auto& [name, sample] : counters->AsObject()) {
      const double total = NumberField(sample, "total");
      const double delta = NumberField(sample, "delta");
      const double rate = dt_ms > 0.0 ? delta * 1000.0 / dt_ms : 0.0;
      if (label > 0) {
        std::printf("%-*s %14.0f %10.0f %12.1f\n", static_cast<int>(label),
                    name.c_str(), total, delta, rate);
      } else {
        std::printf("%s\n  %14.0f %10.0f %12.1f\n", name.c_str(), total,
                    delta, rate);
      }
    }
  }

  const JsonValue* gauges = record.Find("gauges");
  if (gauges != nullptr && gauges->is_object() &&
      !gauges->AsObject().empty()) {
    size_t longest = 0;
    for (const auto& [name, value] : gauges->AsObject()) {
      longest = std::max(longest, name.size());
    }
    const size_t label =
        LabelWidth(longest, std::strlen("GAUGE"), 14, term_width);
    if (label > 0) {
      std::printf("\n%-*s %14s\n", static_cast<int>(label), "GAUGE", "VALUE");
    } else {
      std::printf("\nGAUGE, then %14s\n", "VALUE");
    }
    for (const auto& [name, value] : gauges->AsObject()) {
      if (label > 0) {
        std::printf("%-*s %14.3f\n", static_cast<int>(label), name.c_str(),
                    value.AsNumber());
      } else {
        std::printf("%s\n  %14.3f\n", name.c_str(), value.AsNumber());
      }
    }
  }

  const JsonValue* durations = record.Find("durations");
  if (durations != nullptr && durations->is_object() &&
      !durations->AsObject().empty()) {
    std::printf("\n%-34s %8s %10s %10s %10s %10s %10s\n", "DURATION", "COUNT",
                "P50", "P90", "P99", "P999", "MAX");
    for (const auto& [name, d] : durations->AsObject()) {
      std::printf("%-34s %8.0f %10s %10s %10s %10s %10s\n", name.c_str(),
                  NumberField(d, "count"),
                  HumanSeconds(NumberField(d, "p50")).c_str(),
                  HumanSeconds(NumberField(d, "p90")).c_str(),
                  HumanSeconds(NumberField(d, "p99")).c_str(),
                  HumanSeconds(NumberField(d, "p999")).c_str(),
                  HumanSeconds(NumberField(d, "max")).c_str());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (const char* env = std::getenv("KGC_TIMESERIES");
      env != nullptr && env[0] != '\0') {
    path = env;
  } else {
    path = "kgc_timeseries.jsonl";
  }
  int interval_ms = 1000;
  bool once = false;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "file", &value)) {
      path = value;
    } else if (ParseFlag(arg, "interval-ms", &value)) {
      interval_ms = std::atoi(value.c_str());
      if (interval_ms <= 0) {
        std::fprintf(stderr, "kgc_top: --interval-ms must be positive\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "kgc_top: unknown argument %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  const bool clear_screen = !once && ::isatty(STDOUT_FILENO) != 0;
  bool ever_rendered = false;
  double last_seq = -1.0;
  for (;;) {
    JsonValue record;
    if (ReadNewestRecord(path, &record)) {
      const double seq = NumberField(record, "seq", -1.0);
      if (seq != last_seq) {
        last_seq = seq;
        if (clear_screen) std::printf("\033[2J\033[H");
        RenderRecord(record);
        ever_rendered = true;
      }
      const JsonValue* final_flag = record.Find("final");
      if (final_flag != nullptr && final_flag->AsBool()) break;
    } else if (once) {
      std::fprintf(stderr, "kgc_top: no time-series records in %s\n",
                   path.c_str());
      return 1;
    }
    if (once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return ever_rendered ? 0 : 1;
}
