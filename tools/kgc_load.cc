// kgc_load: closed-loop load generator + response validator for kgc_serve.
//
// Opens the same snapshot registry as the server, precomputes a
// deterministic pool of top-K and classification queries AND their
// expected reply-body CRC-32s locally (TopKEngine results and fitted
// classification thresholds are bit-identical pure functions of the model,
// so client-side recomputation is a valid oracle), then drives the server
// from --connections closed-loop connections for --duration-s seconds.
// Every OK reply from the expected generation is fingerprinted against the
// precomputed CRC; one mismatched bit is a corrupted response and fails
// the run.
//
// Typed non-OK replies (OVERLOADED from admission control,
// DEADLINE_EXCEEDED from expired budgets) are counted, not errors: they
// are the server's documented overload behavior and ci/sanitize.sh asserts
// they appear under induced overload. Transport errors trigger reconnect
// with backoff — across a chaos SIGKILL + restart the run keeps going and
// must end with zero fingerprint mismatches (ci/chaos.sh).
//
// Usage:
//   kgc_load [--socket=PATH] [--snapshot-dir=DIR] [--connections=N]
//            [--duration-s=F] [--queries=N] [--k=N] [--classify-frac=F]
//            [--deadline-ms=N] [--seed=N] [--json=PATH]
//            [--connect-timeout-s=F]
//
// Emits BENCH_serving.json (kgc.serving_bench.v1): sustained QPS plus
// exact HDR p50/p90/p99/p999 request latency. Exit: 0 clean, 1 on any
// fingerprint mismatch or zero successful replies, 2 usage.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/topk.h"
#include "eval/triple_classification.h"
#include "obs/exporter.h"
#include "obs/hdr_histogram.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "serve/protocol.h"
#include "snapshot/snapshot_registry.h"
#include "util/crc32.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using kgc::Crc32;
using kgc::EntityId;
using kgc::RelationId;
using kgc::Rng;
using kgc::SnapshotRegistry;
using kgc::Status;
using kgc::StrFormat;
using kgc::TopKEngine;
using kgc::TopKOptions;
using kgc::TopKQuery;
using kgc::Triple;
using kgc::serve::ConnectUnix;
using kgc::serve::ReadFrame;
using kgc::serve::Reply;
using kgc::serve::ReplyStatus;
using kgc::serve::Request;
using kgc::serve::RequestType;
using kgc::serve::WriteFrame;

struct LoadFlags {
  std::string socket_path;
  std::string snapshot_dir;
  int connections = 4;
  double duration_s = 5.0;
  int queries = 64;
  uint32_t k = 10;
  double classify_frac = 0.25;
  uint32_t deadline_ms = 0;  // 0: server default
  uint64_t seed = 11;
  std::string json_path = "BENCH_serving.json";
  double connect_timeout_s = 15.0;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: kgc_load [--socket=PATH] [--snapshot-dir=DIR] "
      "[--connections=N]\n"
      "                [--duration-s=F] [--queries=N] [--k=N] "
      "[--classify-frac=F]\n"
      "                [--deadline-ms=N] [--seed=N] [--json=PATH]\n"
      "                [--connect-timeout-s=F]\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (!kgc::StartsWith(arg, prefix)) return false;
  *out = arg.substr(prefix.size());
  return true;
}

/// One precomputed query and the CRC-32 of the reply body a correct server
/// must produce for it (at the generation the pool was computed from).
struct PooledQuery {
  Request request;
  uint32_t expected_crc = 0;
};

/// Counters shared by every connection thread.
struct LoadStats {
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> malformed{0};
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> internal{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> other_generation{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> bad_replies{0};
};

/// Builds the query pool and its expected fingerprints from the local
/// model. Mirrors the server's scoring paths exactly: one TopKEngine run
/// (threads=1 — results are thread-count-invariant anyway), thresholds
/// fitted with the server's default classification seed.
std::vector<PooledQuery> BuildPool(const kgc::LoadedGeneration& gen,
                                   const LoadFlags& flags) {
  const kgc::KgeModel& model = *gen.model;
  const auto num_entities =
      static_cast<uint64_t>(model.num_entities());
  const auto num_relations =
      static_cast<uint64_t>(model.num_relations());
  const uint32_t k = std::min<uint32_t>(
      std::max<uint32_t>(flags.k, 1),
      static_cast<uint32_t>(model.num_entities()));

  Rng rng(flags.seed);
  std::vector<PooledQuery> pool(static_cast<size_t>(
      std::max(flags.queries, 1)));
  std::vector<size_t> topk_slots;
  std::vector<TopKQuery> topk_queries;
  std::vector<size_t> classify_slots;
  std::vector<Triple> classify_triples;
  for (size_t i = 0; i < pool.size(); ++i) {
    Request& request = pool[i].request;
    if (rng.Bernoulli(flags.classify_frac)) {
      request.type = RequestType::kClassify;
      request.triple.head = static_cast<EntityId>(rng.Uniform(num_entities));
      request.triple.relation =
          static_cast<RelationId>(rng.Uniform(num_relations));
      request.triple.tail = static_cast<EntityId>(rng.Uniform(num_entities));
      classify_slots.push_back(i);
      classify_triples.push_back(request.triple);
    } else {
      request.type = RequestType::kTopK;
      request.tails = rng.Bernoulli(0.5);
      request.filtered = true;  // the paper's realistic protocol filters
      request.relation = static_cast<RelationId>(rng.Uniform(num_relations));
      request.anchor = static_cast<EntityId>(rng.Uniform(num_entities));
      request.k = k;
      topk_slots.push_back(i);
      TopKQuery query;
      query.tails = request.tails;
      query.relation = request.relation;
      query.anchor = request.anchor;
      topk_queries.push_back(std::move(query));
    }
    request.deadline_ms = flags.deadline_ms;
  }

  if (!topk_slots.empty()) {
    TopKOptions options;
    options.k = static_cast<int>(k);
    options.threads = 1;
    TopKEngine engine(model, options);
    std::vector<kgc::TopKResult> results =
        engine.Run(topk_queries, &gen.dataset.all_store());
    for (size_t j = 0; j < topk_slots.size(); ++j) {
      std::string body;
      kgc::serve::AppendTopKBody(results[j].filtered, &body);
      pool[topk_slots[j]].expected_crc = Crc32(body.data(), body.size());
    }
  }
  if (!classify_slots.empty()) {
    const kgc::ClassificationThresholds thresholds =
        kgc::FitClassificationThresholds(model, gen.dataset, {});
    std::vector<kgc::ClassifiedTriple> classified =
        kgc::ClassifyTriples(model, thresholds, classify_triples);
    for (size_t j = 0; j < classify_slots.size(); ++j) {
      std::string body;
      kgc::serve::AppendClassifyBody(
          static_cast<float>(classified[j].score), classified[j].label,
          static_cast<float>(classified[j].threshold), &body);
      pool[classify_slots[j]].expected_crc = Crc32(body.data(), body.size());
    }
  }
  return pool;
}

/// Connects and confirms liveness with a ping round-trip.
kgc::StatusOr<int> ConnectAndPing(const std::string& socket_path) {
  auto fd = ConnectUnix(socket_path);
  if (!fd.ok()) return fd.status();
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 0;
  Status wrote = WriteFrame(*fd, kgc::serve::EncodeRequest(ping), 2000);
  if (!wrote.ok()) {
    ::close(*fd);
    return wrote;
  }
  auto payload = ReadFrame(*fd, 2000);
  if (!payload.ok()) {
    ::close(*fd);
    return payload.status();
  }
  return *fd;
}

void ConnectionLoop(const LoadFlags& flags,
                    const std::vector<PooledQuery>& pool,
                    int64_t expected_generation, int thread_index,
                    std::chrono::steady_clock::time_point stop_at,
                    LoadStats& stats, kgc::obs::HdrHistogram& latency) {
  int fd = -1;
  uint64_t next_id =
      (static_cast<uint64_t>(thread_index) << 32) + 1;
  // Stagger thread starting offsets through the pool so concurrent
  // connections exercise different (direction, relation) groups.
  size_t cursor = static_cast<size_t>(thread_index) * 17;
  while (std::chrono::steady_clock::now() < stop_at) {
    if (fd < 0) {
      auto connected = ConnectUnix(flags.socket_path);
      if (!connected.ok()) {
        stats.reconnects.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      fd = *connected;
    }
    const PooledQuery& pooled = pool[cursor++ % pool.size()];
    Request request = pooled.request;
    request.id = next_id++;
    stats.sent.fetch_add(1, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    Status wrote =
        WriteFrame(fd, kgc::serve::EncodeRequest(request), 2000);
    kgc::StatusOr<std::string> payload =
        wrote.ok() ? ReadFrame(fd, 5000)
                   : kgc::StatusOr<std::string>(wrote);
    if (!payload.ok()) {
      stats.transport_errors.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      fd = -1;
      continue;
    }
    latency.Observe(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    Reply reply;
    Status decoded =
        kgc::serve::DecodeReply(*payload, request.type, &reply);
    if (!decoded.ok() || (reply.status == ReplyStatus::kOk &&
                          reply.id != request.id)) {
      stats.bad_replies.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      fd = -1;
      continue;
    }
    switch (reply.status) {
      case ReplyStatus::kOk: {
        if (reply.flags & kgc::serve::kReplyFlagDegraded) {
          stats.degraded.fetch_add(1, std::memory_order_relaxed);
        }
        if (reply.generation != expected_generation) {
          stats.other_generation.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const std::string body =
            payload->substr(kgc::serve::kReplyHeaderBytes);
        if (Crc32(body.data(), body.size()) != pooled.expected_crc) {
          stats.mismatches.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats.ok.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case ReplyStatus::kOverloaded:
        stats.shed.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReplyStatus::kDeadlineExceeded:
        stats.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReplyStatus::kMalformed:
        stats.malformed.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReplyStatus::kUnavailable:
        stats.unavailable.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReplyStatus::kInternal:
        stats.internal.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  if (fd >= 0) ::close(fd);
}

int LoadMain(int argc, char** argv) {
  LoadFlags flags;
  if (const char* env = std::getenv("KGC_SERVE_SOCKET")) {
    flags.socket_path = env;
  }
  if (flags.socket_path.empty()) flags.socket_path = "kgc_serve.sock";
  if (const char* env = std::getenv("KGC_SNAPSHOT_DIR")) {
    flags.snapshot_dir = env;
  }
  if (flags.snapshot_dir.empty()) flags.snapshot_dir = "kgc_snapshots";

  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "socket", &value)) {
      flags.socket_path = value;
    } else if (ParseFlag(arg, "snapshot-dir", &value)) {
      flags.snapshot_dir = value;
    } else if (ParseFlag(arg, "connections", &value)) {
      flags.connections = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "duration-s", &value)) {
      flags.duration_s = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "queries", &value)) {
      flags.queries = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "k", &value)) {
      flags.k = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "classify-frac", &value)) {
      flags.classify_frac = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "deadline-ms", &value)) {
      flags.deadline_ms = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "json", &value)) {
      flags.json_path = value;
    } else if (ParseFlag(arg, "connect-timeout-s", &value)) {
      flags.connect_timeout_s = std::strtod(value.c_str(), nullptr);
    } else {
      std::fprintf(stderr, "kgc_load: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  auto opened = SnapshotRegistry::Open(flags.snapshot_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "kgc_load: cannot open registry: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SnapshotRegistry> registry = std::move(*opened);
  const auto gen = registry->current();
  if (gen == nullptr) {
    std::fprintf(stderr, "kgc_load: registry %s is empty\n",
                 flags.snapshot_dir.c_str());
    return 1;
  }
  const int64_t generation = gen->manifest.generation;
  std::printf("pool: generation=%lld entities=%lld queries=%d k=%u\n",
              static_cast<long long>(generation),
              static_cast<long long>(gen->manifest.num_entities),
              std::max(flags.queries, 1), flags.k);
  const std::vector<PooledQuery> pool = BuildPool(*gen, flags);

  // Wait for the server (it may still be bootstrapping).
  const auto connect_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(flags.connect_timeout_s));
  while (true) {
    auto fd = ConnectAndPing(flags.socket_path);
    if (fd.ok()) {
      ::close(*fd);
      break;
    }
    if (std::chrono::steady_clock::now() >= connect_deadline) {
      std::fprintf(stderr, "kgc_load: server not reachable at %s: %s\n",
                   flags.socket_path.c_str(),
                   fd.status().ToString().c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  LoadStats stats;
  kgc::obs::HdrHistogram latency;
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(flags.duration_s));
  std::vector<std::thread> threads;
  const int connections = std::max(flags.connections, 1);
  threads.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      ConnectionLoop(flags, pool, generation, c, stop_at, stats, latency);
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const uint64_t ok = stats.ok.load();
  const double qps = elapsed > 0 ? static_cast<double>(ok) / elapsed : 0.0;
  const double p50_us = latency.Quantile(0.50) * 1e6;
  const double p90_us = latency.Quantile(0.90) * 1e6;
  const double p99_us = latency.Quantile(0.99) * 1e6;
  const double p999_us = latency.Quantile(0.999) * 1e6;
  const double max_us = latency.MaxEstimate() * 1e6;

  std::printf(
      "load: sent=%llu ok=%llu shed=%llu deadline=%llu malformed=%llu "
      "unavailable=%llu internal=%llu degraded=%llu\n"
      "load: transport_errors=%llu reconnects=%llu bad_replies=%llu "
      "other_generation=%llu fingerprint_mismatches=%llu\n"
      "load: qps=%.1f p50=%.0fus p90=%.0fus p99=%.0fus p999=%.0fus "
      "max=%.0fus\n",
      static_cast<unsigned long long>(stats.sent.load()),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(stats.shed.load()),
      static_cast<unsigned long long>(stats.deadline_exceeded.load()),
      static_cast<unsigned long long>(stats.malformed.load()),
      static_cast<unsigned long long>(stats.unavailable.load()),
      static_cast<unsigned long long>(stats.internal.load()),
      static_cast<unsigned long long>(stats.degraded.load()),
      static_cast<unsigned long long>(stats.transport_errors.load()),
      static_cast<unsigned long long>(stats.reconnects.load()),
      static_cast<unsigned long long>(stats.bad_replies.load()),
      static_cast<unsigned long long>(stats.other_generation.load()),
      static_cast<unsigned long long>(stats.mismatches.load()), qps, p50_us,
      p90_us, p99_us, p999_us, max_us);

  if (!flags.json_path.empty()) {
    const std::string json = StrFormat(
        "{\n"
        "  \"schema\": \"kgc.serving_bench.v1\",\n"
        "  \"dataset\": \"%s\",\n"
        "  \"generation\": %lld,\n"
        "  \"entities\": %lld,\n"
        "  \"relations\": %lld,\n"
        "  \"model\": \"%s\",\n"
        "  \"connections\": %d,\n"
        "  \"duration_s\": %.3f,\n"
        "  \"query_pool\": %d,\n"
        "  \"k\": %u,\n"
        "  \"classify_frac\": %.3f,\n"
        "  \"requests_sent\": %llu,\n"
        "  \"replies_ok\": %llu,\n"
        "  \"shed\": %llu,\n"
        "  \"deadline_exceeded\": %llu,\n"
        "  \"malformed\": %llu,\n"
        "  \"unavailable\": %llu,\n"
        "  \"internal\": %llu,\n"
        "  \"degraded\": %llu,\n"
        "  \"transport_errors\": %llu,\n"
        "  \"reconnects\": %llu,\n"
        "  \"bad_replies\": %llu,\n"
        "  \"other_generation\": %llu,\n"
        "  \"fingerprint_mismatches\": %llu,\n"
        "  \"qps_sustained\": %.2f,\n"
        "  \"latency_us\": {\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
        "\"p999\": %.1f, \"max\": %.1f}\n"
        "}\n",
        gen->dataset.name().c_str(), static_cast<long long>(generation),
        static_cast<long long>(gen->manifest.num_entities),
        static_cast<long long>(gen->manifest.num_relations),
        gen->manifest.model.c_str(), connections, elapsed,
        static_cast<int>(pool.size()), flags.k, flags.classify_frac,
        static_cast<unsigned long long>(stats.sent.load()),
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(stats.shed.load()),
        static_cast<unsigned long long>(stats.deadline_exceeded.load()),
        static_cast<unsigned long long>(stats.malformed.load()),
        static_cast<unsigned long long>(stats.unavailable.load()),
        static_cast<unsigned long long>(stats.internal.load()),
        static_cast<unsigned long long>(stats.degraded.load()),
        static_cast<unsigned long long>(stats.transport_errors.load()),
        static_cast<unsigned long long>(stats.reconnects.load()),
        static_cast<unsigned long long>(stats.bad_replies.load()),
        static_cast<unsigned long long>(stats.other_generation.load()),
        static_cast<unsigned long long>(stats.mismatches.load()), qps,
        p50_us, p90_us, p99_us, p999_us, max_us);
    Status wrote = kgc::WriteStringToFile(flags.json_path, json);
    if (!wrote.ok()) {
      std::fprintf(stderr, "kgc_load: cannot write %s: %s\n",
                   flags.json_path.c_str(), wrote.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.json_path.c_str());
  }

  if (stats.mismatches.load() > 0) {
    std::fprintf(stderr,
                 "kgc_load: FAIL: %llu fingerprint-mismatched responses\n",
                 static_cast<unsigned long long>(stats.mismatches.load()));
    return 1;
  }
  if (ok == 0) {
    std::fprintf(stderr, "kgc_load: FAIL: no successful replies\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kgc::obs::StartRunPerfCounters();
  kgc::obs::StartExporterFromEnv("kgc_load");
  kgc::Stopwatch watch;
  const int rc = LoadMain(argc, argv);
  return kgc::obs::FinishProcessReport("kgc_load", watch.ElapsedSeconds(),
                                       rc);
}
