// kgc_serve: long-running online link-prediction server.
//
// Serves head/tail top-K retrieval and triple classification over the
// length-prefixed Unix-socket protocol (src/serve/protocol.h), reading
// model state from a snapshot registry through a refcounted SnapshotReader
// pin that hops generations between batches. Robustness semantics
// (admission control, per-request deadlines, slow-client drops, degraded
// oracle fallback, SIGTERM drain) live in src/serve/server.h.
//
// An empty registry can be bootstrapped in-process from a deterministic
// synthetic dataset (--bootstrap=scale:N or --bootstrap=tiny): the dataset
// is streamed to <snapshot-dir>.bootstrap (reused if already generated),
// trained for --bootstrap-epochs, and published as generation 0. Because
// generation 0 is a pure function of (--bootstrap, --seed, --model,
// --bootstrap-epochs), a SIGKILLed server restarted with the same flags
// recovers — or deterministically rebuilds — the exact same model, which
// is what lets ci/chaos.sh assert bit-identical scoring fingerprints
// across a kill.
//
// Usage:
//   kgc_serve [--socket=PATH] [--snapshot-dir=DIR] [--bootstrap=SPEC]
//             [--bootstrap-epochs=N] [--seed=N] [--model=NAME]
//             [--threads=N] [--max-batch=N] [--queue=N] [--deadline-ms=N]
//
//   --socket       listening socket (default $KGC_SERVE_SOCKET, else
//                  "kgc_serve.sock")
//   --bootstrap    "scale:N" | "tiny" — only used when the registry is
//                  empty (default: refuse to serve an empty registry)
//   --threads      bootstrap training threads (serving itself batches on
//                  one sweep thread for bit-determinism)
//
// Queue/batch/deadline knobs come from KGC_SERVE_* env (see
// serve/server.h); the flags above override the corresponding env value.
// Prints "READY socket=... generation=N entities=N" once serving, and a
// drain summary on SIGTERM/SIGINT. Exit: 0 clean drain, 1 error, 2 usage.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "datagen/presets.h"
#include "datagen/streaming.h"
#include "kg/kg_io.h"
#include "obs/exporter.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "serve/server.h"
#include "snapshot/snapshot_registry.h"
#include "snapshot/stream_ingestor.h"
#include "util/file_util.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using kgc::SnapshotRegistry;
using kgc::Status;
using kgc::StreamIngestor;
using kgc::StreamIngestorOptions;
using kgc::serve::ServeOptions;
using kgc::serve::Server;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct ServeFlags {
  std::string socket_path;
  std::string snapshot_dir;
  std::string bootstrap;
  int bootstrap_epochs = 6;
  uint64_t seed = 7;
  std::string model = "TransE";
  int threads = 0;
  int max_batch = 0;     // 0: keep env/default
  int queue = 0;         // 0: keep env/default
  int deadline_ms = 0;   // 0: keep env/default
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: kgc_serve [--socket=PATH] [--snapshot-dir=DIR]\n"
               "                 [--bootstrap=scale:N|tiny] "
               "[--bootstrap-epochs=N]\n"
               "                 [--seed=N] [--model=NAME] [--threads=N]\n"
               "                 [--max-batch=N] [--queue=N] "
               "[--deadline-ms=N]\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (!kgc::StartsWith(arg, prefix)) return false;
  *out = arg.substr(prefix.size());
  return true;
}

/// Publishes generation 0 from the named deterministic preset. The dataset
/// lands next to the registry (not inside it — the registry root is the
/// recovery sweeper's territory) and is reused when already on disk.
Status BootstrapRegistry(SnapshotRegistry& registry,
                         const ServeFlags& flags) {
  kgc::GeneratorSpec spec;
  if (flags.bootstrap == "tiny") {
    spec = kgc::TinySpec();
  } else if (kgc::StartsWith(flags.bootstrap, "scale:")) {
    const int64_t n =
        std::strtoll(flags.bootstrap.c_str() + 6, nullptr, 10);
    if (n <= 0) {
      return Status::InvalidArgument("bad --bootstrap: " + flags.bootstrap);
    }
    spec = kgc::ScaleSpec(n);
  } else {
    return Status::InvalidArgument("bad --bootstrap: " + flags.bootstrap);
  }

  const std::string data_dir = registry.root() + ".bootstrap";
  if (!kgc::FileExists(data_dir + "/train2id.txt")) {
    kgc::StreamDatagenOptions gen;
    gen.out_dir = data_dir;
    gen.seed = flags.seed;
    gen.write_world = false;  // serving needs the splits, not the world
    auto report = kgc::StreamDataset(spec, gen);
    if (!report.ok()) return report.status();
    std::printf("bootstrap-data: %s train=%llu valid=%llu test=%llu\n",
                data_dir.c_str(),
                static_cast<unsigned long long>(report->num_train),
                static_cast<unsigned long long>(report->num_valid),
                static_cast<unsigned long long>(report->num_test));
  }
  auto dataset = kgc::LoadOpenKeDataset(data_dir, flags.bootstrap);
  if (!dataset.ok()) return dataset.status();

  StreamIngestorOptions options;
  auto model_type = kgc::ParseModelType(flags.model);
  if (!model_type.ok()) return model_type.status();
  options.model_type = *model_type;
  options.bootstrap_epochs = flags.bootstrap_epochs;
  options.train_seed = flags.seed;
  options.threads = flags.threads;
  StreamIngestor ingestor(registry, options);
  auto report = ingestor.Bootstrap(*dataset);
  if (!report.ok()) return report.status();
  std::printf("bootstrap: generation=%lld train=%zu valid_fmrr=%.6f\n",
              static_cast<long long>(report->generation),
              dataset->train().size(), report->valid_mrr);
  return Status::Ok();
}

int ServeMain(int argc, char** argv) {
  ServeFlags flags;
  if (const char* env = std::getenv("KGC_SERVE_SOCKET")) {
    flags.socket_path = env;
  }
  if (flags.socket_path.empty()) flags.socket_path = "kgc_serve.sock";
  if (const char* env = std::getenv("KGC_SNAPSHOT_DIR")) {
    flags.snapshot_dir = env;
  }
  if (flags.snapshot_dir.empty()) flags.snapshot_dir = "kgc_snapshots";

  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (ParseFlag(arg, "socket", &value)) {
      flags.socket_path = value;
    } else if (ParseFlag(arg, "snapshot-dir", &value)) {
      flags.snapshot_dir = value;
    } else if (ParseFlag(arg, "bootstrap", &value)) {
      flags.bootstrap = value;
    } else if (ParseFlag(arg, "bootstrap-epochs", &value)) {
      flags.bootstrap_epochs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "model", &value)) {
      flags.model = value;
    } else if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "max-batch", &value)) {
      flags.max_batch = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "queue", &value)) {
      flags.queue = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "deadline-ms", &value)) {
      flags.deadline_ms = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "kgc_serve: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  auto opened = SnapshotRegistry::Open(flags.snapshot_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "kgc_serve: cannot open registry: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SnapshotRegistry> registry = std::move(*opened);
  if (registry->recovered() || registry->orphans_swept() > 0) {
    std::printf("recovery: restored generation %lld (%d orphan dirs swept)\n",
                static_cast<long long>(registry->current_generation()),
                registry->orphans_swept());
  }

  if (registry->current() == nullptr) {
    if (flags.bootstrap.empty()) {
      std::fprintf(stderr,
                   "kgc_serve: registry %s is empty (pass --bootstrap)\n",
                   flags.snapshot_dir.c_str());
      return 1;
    }
    Status bootstrapped = BootstrapRegistry(*registry, flags);
    if (!bootstrapped.ok()) {
      std::fprintf(stderr, "kgc_serve: bootstrap failed: %s\n",
                   bootstrapped.ToString().c_str());
      return 1;
    }
  }

  ServeOptions options = ServeOptions::FromEnv();
  options.socket_path = flags.socket_path;
  if (flags.max_batch > 0) options.max_batch = flags.max_batch;
  if (flags.queue > 0) options.queue_capacity = flags.queue;
  if (flags.deadline_ms > 0) options.default_deadline_ms = flags.deadline_ms;

  Server server(*registry, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "kgc_serve: %s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  const auto current = registry->current();
  std::printf("READY socket=%s generation=%lld entities=%lld model=%s\n",
              options.socket_path.c_str(),
              static_cast<long long>(server.pinned_generation()),
              static_cast<long long>(current->manifest.num_entities),
              current->manifest.model.c_str());
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("drain: signal received, draining queue\n");
  const kgc::serve::DrainStats stats = server.Shutdown();
  std::printf("drain: answered %llu queued requests across %llu "
              "connections, exiting\n",
              static_cast<unsigned long long>(stats.drained_requests),
              static_cast<unsigned long long>(stats.connections_open));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kgc::obs::StartRunPerfCounters();
  kgc::obs::StartExporterFromEnv("kgc_serve");
  kgc::Stopwatch watch;
  const int rc = ServeMain(argc, argv);
  return kgc::obs::FinishProcessReport("kgc_serve", watch.ElapsedSeconds(),
                                       rc);
}
