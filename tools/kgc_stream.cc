// kgc_stream: drives the streaming snapshot lifecycle end to end.
//
// The stream source is the deterministic Tiny synthetic KG: the first 70%
// of its train split (plus valid/test) bootstraps generation 0; the
// remaining train triples are replayed as raw "head<TAB>rel<TAB>tail"
// batches through StreamIngestor, each one validated, warm-start trained,
// incrementally audited, regression-gated and atomically published (or
// rolled back / quarantined). A SnapshotReader rides along and hot-swaps
// to every new generation between batches.
//
// Because the source, the batch split and every training seed are pure
// functions of --seed, re-running after a crash (or a chaos-injected
// SIGKILL) replays the stream, skips already-covered batches, and
// converges to bit-identical generations — which `--verify` fingerprints.
//
// Usage:
//   kgc_stream [--snapshot-dir=DIR] [--seed=N] [--model=NAME]
//              [--batches=N] [--batch-size=N] [--bootstrap-epochs=N]
//              [--epochs=N] [--epsilon=F] [--valid-every=N] [--threads=N]
//              [--strict] [--corrupt-batch=K] [--verify] [--status]
//
//   --snapshot-dir   registry root (default $KGC_SNAPSHOT_DIR, else
//                    "kgc_snapshots")
//   --epsilon        publish gate: candidate needs
//                    valid_fmrr >= parent - epsilon (negative forces
//                    rollback; used by ci/chaos.sh)
//   --strict         quarantine whole batches on any malformed line
//                    (default: lenient — drop and count)
//   --corrupt-batch  mangle every 3rd line of batch K (validator fodder)
//   --verify         print "generation= valid_fmrr= score_crc32=" for the
//                    live generation and exit (no ingestion)
//   --status         print registry state and exit
//
// Exit code: 0 on success, 1 on any ingest/registry error, 2 on usage.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "kg/dataset.h"
#include "obs/exporter.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "snapshot/snapshot_registry.h"
#include "snapshot/stream_ingestor.h"
#include "util/crc32.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using kgc::Dataset;
using kgc::SnapshotReader;
using kgc::SnapshotRegistry;
using kgc::Status;
using kgc::StrFormat;
using kgc::StreamIngestor;
using kgc::StreamIngestorOptions;
using kgc::Triple;
using kgc::TripleList;
using kgc::Vocab;

struct StreamFlags {
  std::string snapshot_dir;
  uint64_t seed = 7;
  std::string model = "TransE";  // case-sensitive, see ModelTypeName()
  int batches = 4;
  int batch_size = 0;  // 0: divide the residual stream evenly
  int bootstrap_epochs = 30;
  int epochs = 12;
  double epsilon = 0.05;
  int valid_every = 8;
  int threads = 1;
  bool strict = false;
  int corrupt_batch = -1;
  bool verify = false;
  bool status = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: kgc_stream [--snapshot-dir=DIR] [--seed=N] "
               "[--model=NAME]\n"
               "                  [--batches=N] [--batch-size=N] "
               "[--bootstrap-epochs=N]\n"
               "                  [--epochs=N] [--epsilon=F] "
               "[--valid-every=N] [--threads=N]\n"
               "                  [--strict] [--corrupt-batch=K] "
               "[--verify] [--status]\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (!kgc::StartsWith(arg, prefix)) return false;
  *out = arg.substr(prefix.size());
  return true;
}

/// The deterministic stream: bootstrap dataset (re-interned vocab over the
/// first 70% of train, plus the full valid/test splits) and the residual
/// train triples rendered as raw tab-separated name lines.
struct StreamSource {
  Dataset base;
  std::vector<std::string> residual_lines;
};

StreamSource BuildStream(uint64_t seed) {
  const kgc::SyntheticKg tiny = kgc::GenerateTiny(seed);
  const Dataset& full = tiny.dataset;
  const size_t cut = full.train().size() * 7 / 10;

  Vocab vocab;
  const auto remap = [&](const Triple& t) {
    return Triple{vocab.InternEntity(full.vocab().EntityName(t.head)),
                  vocab.InternRelation(full.vocab().RelationName(t.relation)),
                  vocab.InternEntity(full.vocab().EntityName(t.tail))};
  };
  TripleList train, valid, test;
  for (size_t i = 0; i < cut; ++i) train.push_back(remap(full.train()[i]));
  for (const Triple& t : full.valid()) valid.push_back(remap(t));
  for (const Triple& t : full.test()) test.push_back(remap(t));

  StreamSource source{Dataset(full.name() + "-stream", std::move(vocab),
                              std::move(train), std::move(valid),
                              std::move(test)),
                      {}};
  for (size_t i = cut; i < full.train().size(); ++i) {
    const Triple& t = full.train()[i];
    source.residual_lines.push_back(
        full.vocab().EntityName(t.head) + "\t" +
        full.vocab().RelationName(t.relation) + "\t" +
        full.vocab().EntityName(t.tail));
  }
  return source;
}

/// Deterministic fingerprint of the live generation: CRC-32 over the
/// %.17g-rendered model scores of every valid and test triple, in split
/// order. Bit-identical across clean runs and crash-recovered replays.
uint32_t ScoreFingerprint(const kgc::LoadedGeneration& gen) {
  std::string rendered;
  const auto render = [&](const TripleList& triples) {
    for (const Triple& t : triples) {
      rendered += StrFormat(
          "%.17g\n", gen.model->Score(t.head, t.relation, t.tail));
    }
  };
  render(gen.dataset.valid());
  render(gen.dataset.test());
  return kgc::Crc32(rendered.data(), rendered.size());
}

int RunVerify(const SnapshotRegistry& registry) {
  const auto current = registry.current();
  if (current == nullptr) {
    std::printf("generation=-1 valid_fmrr=0 score_crc32=0\n");
    return 0;
  }
  std::printf("generation=%lld valid_fmrr=%.17g score_crc32=%08x\n",
              static_cast<long long>(current->manifest.generation),
              current->manifest.valid_mrr, ScoreFingerprint(*current));
  return 0;
}

int RunStatus(const SnapshotRegistry& registry) {
  std::printf("root=%s recovered=%d orphans_swept=%d\n",
              registry.root().c_str(), registry.recovered() ? 1 : 0,
              registry.orphans_swept());
  const auto current = registry.current();
  if (current == nullptr) {
    std::printf("current=(empty)\n");
    return 0;
  }
  const kgc::SnapshotManifest& m = current->manifest;
  std::printf(
      "current=gen-%06lld parent=%lld batch=%s index=%lld model=%s "
      "warm=%d\n"
      "  entities=%lld relations=%lld train=%lld valid=%lld test=%lld "
      "delta=%lld rejected=%lld\n"
      "  audited=%lld dup_pairs=%lld rev_pairs=%lld symmetric=%lld "
      "cartesian=%lld\n"
      "  valid_fmrr=%.6f parent_fmrr=%.6f epsilon=%g\n",
      static_cast<long long>(m.generation), static_cast<long long>(m.parent),
      m.source_batch.c_str(), static_cast<long long>(m.source_batch_index),
      m.model.c_str(), m.warm_start ? 1 : 0,
      static_cast<long long>(m.num_entities),
      static_cast<long long>(m.num_relations),
      static_cast<long long>(m.train_triples),
      static_cast<long long>(m.valid_triples),
      static_cast<long long>(m.test_triples),
      static_cast<long long>(m.delta_triples),
      static_cast<long long>(m.rejected_lines),
      static_cast<long long>(m.relations_audited),
      static_cast<long long>(m.duplicate_pairs),
      static_cast<long long>(m.reverse_pairs),
      static_cast<long long>(m.symmetric_relations),
      static_cast<long long>(m.cartesian_relations), m.valid_mrr,
      m.parent_valid_mrr, m.epsilon);
  return 0;
}

int StreamMain(int argc, char** argv) {
  StreamFlags flags;
  if (const char* env = std::getenv("KGC_SNAPSHOT_DIR")) {
    flags.snapshot_dir = env;
  }
  if (flags.snapshot_dir.empty()) flags.snapshot_dir = "kgc_snapshots";

  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--strict") {
      flags.strict = true;
    } else if (arg == "--verify") {
      flags.verify = true;
    } else if (arg == "--status") {
      flags.status = true;
    } else if (ParseFlag(arg, "snapshot-dir", &value)) {
      flags.snapshot_dir = value;
    } else if (ParseFlag(arg, "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "model", &value)) {
      flags.model = value;
    } else if (ParseFlag(arg, "batches", &value)) {
      flags.batches = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "batch-size", &value)) {
      flags.batch_size = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "bootstrap-epochs", &value)) {
      flags.bootstrap_epochs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "epochs", &value)) {
      flags.epochs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "epsilon", &value)) {
      flags.epsilon = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "valid-every", &value)) {
      flags.valid_every = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      flags.threads = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "corrupt-batch", &value)) {
      flags.corrupt_batch = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "kgc_stream: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  auto opened = SnapshotRegistry::Open(flags.snapshot_dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "kgc_stream: cannot open registry: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<SnapshotRegistry> registry = std::move(*opened);
  if (registry->recovered() || registry->orphans_swept() > 0) {
    std::printf("recovery: restored generation %lld (%d orphan dirs swept)\n",
                static_cast<long long>(registry->current_generation()),
                registry->orphans_swept());
  }

  if (flags.verify) return RunVerify(*registry);
  if (flags.status) return RunStatus(*registry);

  StreamIngestorOptions options;
  options.ingest.strict = flags.strict;
  auto model_type = kgc::ParseModelType(flags.model);
  if (!model_type.ok()) {
    std::fprintf(stderr, "kgc_stream: %s\n",
                 model_type.status().ToString().c_str());
    return 2;
  }
  options.model_type = *model_type;
  options.epochs = flags.epochs;
  options.bootstrap_epochs = flags.bootstrap_epochs;
  options.train_seed = flags.seed;
  options.epsilon = flags.epsilon;
  options.valid_every = flags.valid_every;
  options.threads = flags.threads;
  StreamIngestor ingestor(*registry, options);

  const StreamSource source = BuildStream(flags.seed);
  if (registry->current() == nullptr) {
    auto report = ingestor.Bootstrap(source.base);
    if (!report.ok()) {
      std::fprintf(stderr, "kgc_stream: bootstrap failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("bootstrap: generation=%lld train=%zu valid_fmrr=%.6f\n",
                static_cast<long long>(report->generation),
                source.base.train().size(), report->valid_mrr);
  }

  const int batches = flags.batches > 0 ? flags.batches : 1;
  const size_t batch_size =
      flags.batch_size > 0
          ? static_cast<size_t>(flags.batch_size)
          : (source.residual_lines.size() + batches - 1) /
                static_cast<size_t>(batches);

  SnapshotReader reader(*registry);
  int failures = 0;
  for (int b = 0; b < batches; ++b) {
    const size_t begin = static_cast<size_t>(b) * batch_size;
    if (begin >= source.residual_lines.size()) break;
    const size_t end =
        std::min(begin + batch_size, source.residual_lines.size());
    std::vector<std::string> lines(source.residual_lines.begin() + begin,
                                   source.residual_lines.begin() + end);
    if (b == flags.corrupt_batch) {
      // Truncate every 3rd line to two fields so the validator has
      // something to reject (strict: whole batch quarantined).
      for (size_t i = 0; i < lines.size(); i += 3) {
        const size_t tab = lines[i].rfind('\t');
        if (tab != std::string::npos) lines[i].resize(tab);
      }
    }
    const std::string label = StrFormat("batch-%03d", b);
    auto report = ingestor.IngestBatch(lines, label, b);
    if (!report.ok()) {
      std::fprintf(stderr, "kgc_stream: %s: %s\n", label.c_str(),
                   report.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf(
        "%s: %s generation=%lld delta=%zu rejected=%zu "
        "valid_fmrr=%.6f (parent %.6f)\n",
        label.c_str(), report->outcome.c_str(),
        static_cast<long long>(report->generation), report->delta_triples,
        report->rejected_lines, report->valid_mrr, report->parent_valid_mrr);
    if (reader.Repin()) {
      std::printf("reader: hot-swapped to generation %lld\n",
                  static_cast<long long>(reader.generation_number()));
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Same telemetry bracket as the bench binaries: perf + exporter start
  // before any work, run report + final time-series record at exit
  // (KGC_METRICS / KGC_METRICS_INTERVAL_MS opt-in, see obs/exporter.h).
  kgc::obs::StartRunPerfCounters();
  kgc::obs::StartExporterFromEnv("kgc_stream");
  kgc::Stopwatch watch;
  const int rc = StreamMain(argc, argv);
  return kgc::obs::FinishProcessReport("kgc_stream", watch.ElapsedSeconds(),
                                       rc);
}
