// kgc_datagen: streams a synthetic knowledge graph to disk in the OpenKE
// layout (see datagen/streaming.h) without materializing the world in
// memory — the path to million-entity datasets on ordinary machines.
//
// Usage:
//   kgc_datagen --preset=NAME --out=DIR [--seed=N] [--shard-triples=N]
//               [--no-world]
//
//   --preset         tiny | fb15k | wn18 | yago3 | scale:N
//                    (scale:N sizes a ScaleSpec to at least N entities,
//                    e.g. scale:1000000)
//   --out            output directory, created if missing
//   --seed           generation seed (default: the canonical data seed)
//   --shard-triples  max facts per world shard file (default 4M)
//   --no-world       skip the world shards; write only the dataset splits
//
// Prints a one-line-per-field report (entities, relations, world facts,
// split sizes, shards, wall seconds, peak RSS) to stdout.
//
// Exit code: 0 on success, 1 on generation/I/O error, 2 on usage.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/presets.h"
#include "datagen/streaming.h"
#include "obs/exporter.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "util/resource.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using kgc::GeneratorSpec;
using kgc::StartsWith;
using kgc::StreamDatagenOptions;
using kgc::StreamDatagenReport;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: kgc_datagen --preset=NAME --out=DIR [--seed=N]\n"
               "                   [--shard-triples=N] [--no-world]\n"
               "  presets: tiny | fb15k | wn18 | yago3 | scale:N\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ResolvePreset(const std::string& name, GeneratorSpec* spec) {
  if (name == "tiny") {
    *spec = kgc::TinySpec();
  } else if (name == "fb15k") {
    *spec = kgc::SynthFb15kSpec();
  } else if (name == "wn18") {
    *spec = kgc::SynthWn18Spec();
  } else if (name == "yago3") {
    *spec = kgc::SynthYago3Spec();
  } else if (StartsWith(name, "scale:")) {
    const long long n = std::atoll(name.c_str() + 6);
    if (n <= 0) return false;
    *spec = kgc::ScaleSpec(n);
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  kgc::obs::StartRunPerfCounters();
  kgc::obs::StartExporterFromEnv("kgc_datagen");
  kgc::Stopwatch run_watch;
  std::string preset;
  StreamDatagenOptions options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseFlag(arg, "preset", &value)) {
      preset = value;
    } else if (ParseFlag(arg, "out", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "shard-triples", &value)) {
      options.shard_triples = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--no-world") {
      options.write_world = false;
    } else {
      std::fprintf(stderr, "kgc_datagen: unknown argument %s\n", arg.c_str());
      PrintUsage();
      return kgc::obs::FinishProcessReport("kgc_datagen",
                                           run_watch.ElapsedSeconds(), 2);
    }
  }
  GeneratorSpec spec;
  if (preset.empty() || options.out_dir.empty() ||
      !ResolvePreset(preset, &spec)) {
    PrintUsage();
    return kgc::obs::FinishProcessReport("kgc_datagen",
                                         run_watch.ElapsedSeconds(), 2);
  }

  kgc::Stopwatch watch;
  const auto report = kgc::StreamDataset(spec, options);
  if (!report.ok()) {
    std::fprintf(stderr, "kgc_datagen: %s\n",
                 report.status().ToString().c_str());
    return kgc::obs::FinishProcessReport("kgc_datagen",
                                         run_watch.ElapsedSeconds(), 1);
  }
  std::printf("dataset=%s\n", spec.name.c_str());
  std::printf("out_dir=%s\n", options.out_dir.c_str());
  std::printf("entities=%d\n", report->counts.num_entities);
  std::printf("relations=%d\n", report->counts.num_relations);
  std::printf("world_facts=%llu\n",
              static_cast<unsigned long long>(report->counts.world_facts));
  std::printf("admitted_facts=%llu\n",
              static_cast<unsigned long long>(report->counts.admitted_facts));
  std::printf("train=%llu\nvalid=%llu\ntest=%llu\n",
              static_cast<unsigned long long>(report->num_train),
              static_cast<unsigned long long>(report->num_valid),
              static_cast<unsigned long long>(report->num_test));
  std::printf("world_shards=%llu\n",
              static_cast<unsigned long long>(report->world_shards));
  std::printf("wall_seconds=%.3f\n", watch.ElapsedSeconds());
  std::printf("peak_rss_bytes=%llu\n",
              static_cast<unsigned long long>(kgc::PeakRssBytes()));
  return kgc::obs::FinishProcessReport("kgc_datagen",
                                       run_watch.ElapsedSeconds(), 0);
}
