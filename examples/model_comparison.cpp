// Model comparison: the paper's headline experiment in one binary.
//
// Trains a set of embedding models on an original (leaky) benchmark and its
// cleaned counterpart, then prints the degradation table.
//
//   ./model_comparison [fb|wn|yago] [Model ...]
//
// e.g.  ./model_comparison fb TransE DistMult RotatE

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment_context.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "fb";

  std::vector<kgc::ModelType> models;
  for (int i = 2; i < argc; ++i) {
    auto type = kgc::ParseModelType(argv[i]);
    if (!type.ok()) {
      std::fprintf(stderr, "%s\n", type.status().ToString().c_str());
      return 1;
    }
    models.push_back(*type);
  }
  if (models.empty()) {
    models = {kgc::ModelType::kTransE, kgc::ModelType::kDistMult,
              kgc::ModelType::kComplEx};
  }

  kgc::ExperimentOptions options;
  options.verbose_training = true;
  kgc::ExperimentContext context(options);
  const kgc::BenchmarkSuite& suite =
      std::strcmp(which, "wn") == 0
          ? context.Wn18()
          : (std::strcmp(which, "yago") == 0 ? context.Yago3()
                                             : context.Fb15k());

  kgc::AsciiTable table(kgc::StrFormat(
      "Filtered link-prediction metrics: %s vs %s",
      suite.kg.dataset.name().c_str(), suite.cleaned.name().c_str()));
  table.SetHeader({"Model", "FMR", "FH@10", "FH@1", "FMRR", "FMR'", "FH@10'",
                   "FH@1'", "FMRR'"});
  for (kgc::ModelType type : models) {
    const kgc::LinkPredictionMetrics original =
        kgc::ComputeMetrics(context.GetRanks(suite.kg.dataset, type));
    const kgc::LinkPredictionMetrics cleaned =
        kgc::ComputeMetrics(context.GetRanks(suite.cleaned, type));
    table.AddRow({kgc::ModelTypeName(type),
                  kgc::FormatDouble(original.fmr, 1),
                  kgc::FormatPercent(original.fhits10),
                  kgc::FormatPercent(original.fhits1),
                  kgc::FormatDouble(original.fmrr, 3),
                  kgc::FormatDouble(cleaned.fmr, 1),
                  kgc::FormatPercent(cleaned.fhits10),
                  kgc::FormatPercent(cleaned.fhits1),
                  kgc::FormatDouble(cleaned.fmrr, 3)});
  }
  table.Print();
  std::printf(
      "Columns with ' are on the cleaned dataset. The drop from left to "
      "right is the paper's headline result (R1).\n");
  return 0;
}
