// Rule mining: mine AMIE-style Horn rules from a synthetic benchmark, show
// the strongest rules, and use them for link prediction.
//
//   ./rule_mining [fb|wn|yago] [max_rules_to_print]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "datagen/presets.h"
#include "eval/ranker.h"
#include "rules/amie.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "fb";
  const size_t max_rules = argc > 2 ? static_cast<size_t>(std::atoi(argv[2]))
                                    : 15;

  const kgc::SyntheticKg kg =
      std::strcmp(which, "wn") == 0
          ? kgc::GenerateSynthWn18()
          : (std::strcmp(which, "yago") == 0 ? kgc::GenerateSynthYago3()
                                             : kgc::GenerateSynthFb15k());
  const kgc::TripleStore& train = kg.dataset.train_store();

  std::printf("mining rules on %s (%zu train triples)...\n",
              kg.dataset.name().c_str(), kg.dataset.train().size());
  const std::vector<kgc::Rule> rules = kgc::MineRules(train);
  std::printf("mined %zu rules; strongest by PCA confidence:\n\n",
              rules.size());
  for (size_t i = 0; i < std::min(max_rules, rules.size()); ++i) {
    std::printf("  %s\n", rules[i].ToString(kg.dataset.vocab()).c_str());
  }

  const kgc::RulePredictor predictor(rules, train);
  const kgc::LinkPredictionMetrics metrics =
      kgc::EvaluatePredictor(predictor, kg.dataset);
  kgc::AsciiTable table("\nAMIE link prediction on " + kg.dataset.name());
  table.SetHeader({"FMR", "FHits@10", "FHits@1", "FMRR"});
  table.AddRow({kgc::FormatDouble(metrics.fmr, 1),
                kgc::FormatPercent(metrics.fhits10),
                kgc::FormatPercent(metrics.fhits1),
                kgc::FormatDouble(metrics.fmrr, 3)});
  table.Print();
  return 0;
}
