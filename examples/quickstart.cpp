// Quickstart: generate a small synthetic knowledge graph, train TransE,
// and evaluate link prediction with raw and filtered metrics.
//
//   ./quickstart [epochs]

#include <cstdio>
#include <cstdlib>

#include "datagen/presets.h"
#include "eval/ranker.h"
#include "models/trainer.h"
#include "util/table.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 60;

  // 1. Generate a small benchmark (160 entities, a handful of relations,
  //    including one reverse pair and one Cartesian relation).
  const kgc::SyntheticKg kg = kgc::GenerateTiny(/*seed=*/42);
  std::printf("dataset %s: %d entities, %d relations, %zu/%zu/%zu splits\n",
              kg.dataset.name().c_str(), kg.dataset.num_entities(),
              kg.dataset.num_relations(), kg.dataset.train().size(),
              kg.dataset.valid().size(), kg.dataset.test().size());

  // 2. Train TransE.
  const kgc::ModelHyperParams params =
      kgc::DefaultHyperParams(kgc::ModelType::kTransE);
  std::unique_ptr<kgc::KgeModel> model =
      kgc::CreateModel(kgc::ModelType::kTransE, kg.dataset.num_entities(),
                       kg.dataset.num_relations(), params);
  kgc::TrainOptions train_options =
      kgc::DefaultTrainOptions(kgc::ModelType::kTransE);
  train_options.epochs = epochs;
  train_options.verbose = true;
  const kgc::TrainStats stats =
      kgc::TrainModel(*model, kg.dataset, train_options);
  std::printf("trained %d epochs in %.2fs, final loss %.4f\n",
              stats.epochs_run, stats.seconds, stats.final_loss);

  // 3. Evaluate.
  const kgc::LinkPredictionMetrics metrics =
      kgc::EvaluatePredictor(*model, kg.dataset);
  kgc::AsciiTable table("Link prediction on " + kg.dataset.name());
  table.SetHeader({"measure", "raw", "filtered"});
  table.AddRow({"MR", kgc::FormatDouble(metrics.mr, 1),
                kgc::FormatDouble(metrics.fmr, 1)});
  table.AddRow({"MRR", kgc::FormatDouble(metrics.mrr, 3),
                kgc::FormatDouble(metrics.fmrr, 3)});
  table.AddRow({"Hits@1", kgc::FormatPercent(metrics.hits1),
                kgc::FormatPercent(metrics.fhits1)});
  table.AddRow({"Hits@10", kgc::FormatPercent(metrics.hits10),
                kgc::FormatPercent(metrics.fhits10)});
  table.Print();
  return 0;
}
