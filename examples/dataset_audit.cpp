// Dataset audit: run the paper's §4 redundancy analyses on the synthetic
// FB15k / WN18 / YAGO3-10 analogues, print the findings, and derive the
// cleaned (-237 / RR / DR) counterparts.
//
//   ./dataset_audit [fb|wn|yago]

#include <cstdio>
#include <cstring>

#include "core/audit.h"
#include "datagen/presets.h"
#include "redundancy/cleaner.h"

namespace {

void AuditOne(const kgc::SyntheticKg& kg,
              kgc::Dataset (*cleaner)(const kgc::Dataset&,
                                      const kgc::RedundancyCatalog&,
                                      std::string, kgc::CleaningReport*),
              const char* cleaned_name) {
  // Classify triples against the oracle catalog (the paper classifies FB15k
  // against the Freebase snapshot's reverse_property metadata).
  const kgc::AuditReport report =
      kgc::RunAuditWithCatalog(kg.dataset, kgc::BuildOracleCatalog(kg));
  const std::string rendered = kgc::RenderAudit(report, kg.dataset.vocab());
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);

  // Compare data-driven detection against the oracle metadata.
  const kgc::RedundancyCatalog detected =
      kgc::RedundancyCatalog::Detect(kg.dataset.all_store());
  size_t recovered = 0;
  for (const auto& [r1, r2] : kg.reverse_property) {
    for (const kgc::RelationPairOverlap& pair : detected.reverse_pairs) {
      if ((pair.r1 == r1 && pair.r2 == r2) ||
          (pair.r1 == r2 && pair.r2 == r1)) {
        ++recovered;
        break;
      }
    }
  }
  std::printf(
      "\nDetector check: %zu reversed-overlap pairs, %zu duplicate pairs, "
      "%zu symmetric relations found purely from data;\n"
      "%zu/%zu oracle reverse_property pairs recovered.\n",
      detected.reverse_pairs.size(), detected.duplicate_pairs.size(),
      detected.symmetric_relations.size(), recovered,
      kg.reverse_property.size());

  kgc::CleaningReport cleaning;
  const kgc::Dataset cleaned =
      cleaner(kg.dataset, detected, cleaned_name, &cleaning);
  std::printf(
      "\nCleaning -> %s: dropped %zu relations, removed %zu train / %zu "
      "valid / %zu test triples.\n"
      "  %s: %d used relations, %zu/%zu/%zu splits\n\n",
      cleaned_name, cleaning.dropped_relations.size(), cleaning.train_removed,
      cleaning.valid_removed, cleaning.test_removed, cleaned.name().c_str(),
      cleaned.CountUsedRelations(), cleaned.train().size(),
      cleaned.valid().size(), cleaned.test().size());
}

}  // namespace

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "fb";
  if (std::strcmp(which, "fb") == 0) {
    AuditOne(kgc::GenerateSynthFb15k(), &kgc::MakeFb237Like, "FB15k-237-syn");
  } else if (std::strcmp(which, "wn") == 0) {
    AuditOne(kgc::GenerateSynthWn18(), &kgc::MakeWn18rrLike, "WN18RR-syn");
  } else if (std::strcmp(which, "yago") == 0) {
    AuditOne(kgc::GenerateSynthYago3(), &kgc::MakeYagoDrLike,
             "YAGO3-10-DR-syn");
  } else {
    std::fprintf(stderr, "usage: %s [fb|wn|yago]\n", argv[0]);
    return 1;
  }
  return 0;
}
