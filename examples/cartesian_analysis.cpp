// Cartesian product relations (paper §4.3): detect them in the synthetic
// FB15k analogue and show the trivial Cartesian-property predictor beating
// TransE on exactly those relations.
//
//   ./cartesian_analysis

#include <cstdio>

#include "core/experiment_context.h"
#include "redundancy/detectors.h"
#include "rules/cartesian_predictor.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  kgc::ExperimentContext context;
  const kgc::BenchmarkSuite& suite = context.Fb15k();
  const kgc::Dataset& dataset = suite.kg.dataset;

  // Detect over the full dataset (the paper's T_r is over G).
  const auto cartesian = kgc::FindCartesianRelations(dataset.all_store());
  kgc::AsciiTable detected("Detected Cartesian product relations");
  detected.SetHeader({"relation", "|r|", "|S|x|O|", "density"});
  std::vector<kgc::RelationId> relations;
  for (const kgc::CartesianEvidence& e : cartesian) {
    relations.push_back(e.relation);
    detected.AddRow(
        {dataset.vocab().RelationName(e.relation),
         kgc::StrFormat("%zu", e.num_triples),
         kgc::StrFormat("%zux%zu", e.num_subjects, e.num_objects),
         kgc::FormatDouble(e.density, 3)});
  }
  detected.Print();

  // Rank test triples of those relations under TransE vs the trivial rule.
  const kgc::CartesianPredictor rule(dataset.train_store(), relations);
  const auto& transe_ranks =
      context.GetRanks(dataset, kgc::ModelType::kTransE);
  const auto& rule_ranks =
      context.GetPredictorRanks(dataset, rule, "cartesian");

  std::vector<bool> keep(transe_ranks.size(), false);
  for (size_t i = 0; i < transe_ranks.size(); ++i) {
    for (kgc::RelationId r : relations) {
      if (transe_ranks[i].triple.relation == r) keep[i] = true;
    }
  }
  const kgc::LinkPredictionMetrics transe_metrics =
      kgc::ComputeMetricsWhere(transe_ranks, keep);
  const kgc::LinkPredictionMetrics rule_metrics =
      kgc::ComputeMetricsWhere(rule_ranks, keep);

  kgc::AsciiTable table(kgc::StrFormat(
      "\nOn the %zu Cartesian-relation test triples of %s",
      static_cast<size_t>(transe_metrics.num_triples),
      dataset.name().c_str()));
  table.SetHeader({"Method", "FMR", "FHits@10", "FHits@1", "FMRR"});
  for (const auto& [name, m] :
       {std::pair<const char*, const kgc::LinkPredictionMetrics&>{
            "TransE", transe_metrics},
        {"Cartesian property", rule_metrics}}) {
    table.AddRow({name, kgc::FormatDouble(m.fmr, 1),
                  kgc::FormatPercent(m.fhits10), kgc::FormatPercent(m.fhits1),
                  kgc::FormatDouble(m.fmrr, 3)});
  }
  table.Print();
  std::printf(
      "The trivial product-closure rule matches or beats the embedding "
      "model on these relations (paper §4.3(2), Table 3).\n");
  return 0;
}
