// Auditing a user-supplied benchmark: load a dataset in the conventional
// train.txt / valid.txt / test.txt layout (FB15k, WN18, FB15k-237, ... all
// distribute this format), run the paper's redundancy audit on it, and
// optionally write a cleaned copy.
//
//   ./custom_dataset <dataset_dir> [cleaned_output_dir]
//
// With a real FB15k directory this reproduces the paper's §4 findings on
// the original data; with no arguments it demonstrates the flow by writing
// the synthetic FB15k analogue to a temp directory and re-loading it.

#include <cstdio>

#include "core/audit.h"
#include "datagen/presets.h"
#include "kg/kg_io.h"
#include "redundancy/cleaner.h"

int main(int argc, char** argv) {
  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else {
    // Demo mode: round-trip the synthetic FB15k through the text format.
    dir = "/tmp/kgc_custom_dataset_demo";
    std::printf("no dataset given; writing FB15k-syn to %s as a demo\n",
                dir.c_str());
    const kgc::SyntheticKg kg = kgc::GenerateSynthFb15k();
    const kgc::Status status = kgc::SaveDatasetDir(kg.dataset, dir);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  auto dataset = kgc::LoadDatasetDir(dir, dir);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", dir.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %d entities, %d relations, %zu/%zu/%zu triples\n",
              dir.c_str(), dataset->num_entities(), dataset->num_relations(),
              dataset->train().size(), dataset->valid().size(),
              dataset->test().size());

  const kgc::AuditReport report = kgc::RunAudit(*dataset);
  const std::string rendered = kgc::RenderAudit(report, dataset->vocab());
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);

  if (argc > 2) {
    kgc::CleaningReport cleaning;
    const kgc::Dataset cleaned =
        kgc::MakeFb237Like(*dataset, report.catalog, "cleaned", &cleaning);
    const kgc::Status status = kgc::SaveDatasetDir(cleaned, argv[2]);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf(
        "\nwrote cleaned dataset to %s (dropped %zu relations; removed "
        "%zu/%zu/%zu train/valid/test triples)\n",
        argv[2], cleaning.dropped_relations.size(), cleaning.train_removed,
        cleaning.valid_removed, cleaning.test_removed);
  }
  return 0;
}
