# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(edge_cases_test "/root/repo/build/tests/edge_cases_test")
set_tests_properties(edge_cases_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kg_test "/root/repo/build/tests/kg_test")
set_tests_properties(kg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(models_test "/root/repo/build/tests/models_test")
set_tests_properties(models_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(redundancy_test "/root/repo/build/tests/redundancy_test")
set_tests_properties(redundancy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rules_test "/root/repo/build/tests/rules_test")
set_tests_properties(rules_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tasks_test "/root/repo/build/tests/tasks_test")
set_tests_properties(tasks_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trainer_test "/root/repo/build/tests/trainer_test")
set_tests_properties(trainer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;kgc_add_test;/root/repo/tests/CMakeLists.txt;0;")
