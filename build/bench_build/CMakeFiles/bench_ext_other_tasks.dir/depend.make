# Empty dependencies file for bench_ext_other_tasks.
# This may be replaced when dependencies are built.
