file(REMOVE_RECURSE
  "../bench/bench_ext_other_tasks"
  "../bench/bench_ext_other_tasks.pdb"
  "CMakeFiles/bench_ext_other_tasks.dir/bench_ext_other_tasks.cc.o"
  "CMakeFiles/bench_ext_other_tasks.dir/bench_ext_other_tasks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_other_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
