file(REMOVE_RECURSE
  "../bench/bench_fig4_redundancy_cases"
  "../bench/bench_fig4_redundancy_cases.pdb"
  "CMakeFiles/bench_fig4_redundancy_cases.dir/bench_fig4_redundancy_cases.cc.o"
  "CMakeFiles/bench_fig4_redundancy_cases.dir/bench_fig4_redundancy_cases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_redundancy_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
