file(REMOVE_RECURSE
  "../bench/bench_table8_best_model_counts"
  "../bench/bench_table8_best_model_counts.pdb"
  "CMakeFiles/bench_table8_best_model_counts.dir/bench_table8_best_model_counts.cc.o"
  "CMakeFiles/bench_table8_best_model_counts.dir/bench_table8_best_model_counts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_best_model_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
