# Empty compiler generated dependencies file for bench_table8_best_model_counts.
# This may be replaced when dependencies are built.
