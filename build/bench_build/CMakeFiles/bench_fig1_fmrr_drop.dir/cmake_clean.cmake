file(REMOVE_RECURSE
  "../bench/bench_fig1_fmrr_drop"
  "../bench/bench_fig1_fmrr_drop.pdb"
  "CMakeFiles/bench_fig1_fmrr_drop.dir/bench_fig1_fmrr_drop.cc.o"
  "CMakeFiles/bench_fig1_fmrr_drop.dir/bench_fig1_fmrr_drop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fmrr_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
