# Empty dependencies file for bench_fig1_fmrr_drop.
# This may be replaced when dependencies are built.
