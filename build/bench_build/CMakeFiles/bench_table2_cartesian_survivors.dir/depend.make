# Empty dependencies file for bench_table2_cartesian_survivors.
# This may be replaced when dependencies are built.
