file(REMOVE_RECURSE
  "../bench/bench_table2_cartesian_survivors"
  "../bench/bench_table2_cartesian_survivors.pdb"
  "CMakeFiles/bench_table2_cartesian_survivors.dir/bench_table2_cartesian_survivors.cc.o"
  "CMakeFiles/bench_table2_cartesian_survivors.dir/bench_table2_cartesian_survivors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cartesian_survivors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
