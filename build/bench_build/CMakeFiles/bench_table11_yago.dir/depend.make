# Empty dependencies file for bench_table11_yago.
# This may be replaced when dependencies are built.
