file(REMOVE_RECURSE
  "../bench/bench_table11_yago"
  "../bench/bench_table11_yago.pdb"
  "CMakeFiles/bench_table11_yago.dir/bench_table11_yago.cc.o"
  "CMakeFiles/bench_table11_yago.dir/bench_table11_yago.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_yago.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
