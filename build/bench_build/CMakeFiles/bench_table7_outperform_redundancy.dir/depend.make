# Empty dependencies file for bench_table7_outperform_redundancy.
# This may be replaced when dependencies are built.
