file(REMOVE_RECURSE
  "../bench/bench_table7_outperform_redundancy"
  "../bench/bench_table7_outperform_redundancy.pdb"
  "CMakeFiles/bench_table7_outperform_redundancy.dir/bench_table7_outperform_redundancy.cc.o"
  "CMakeFiles/bench_table7_outperform_redundancy.dir/bench_table7_outperform_redundancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_outperform_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
