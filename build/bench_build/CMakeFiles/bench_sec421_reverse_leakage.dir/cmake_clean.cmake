file(REMOVE_RECURSE
  "../bench/bench_sec421_reverse_leakage"
  "../bench/bench_sec421_reverse_leakage.pdb"
  "CMakeFiles/bench_sec421_reverse_leakage.dir/bench_sec421_reverse_leakage.cc.o"
  "CMakeFiles/bench_sec421_reverse_leakage.dir/bench_sec421_reverse_leakage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec421_reverse_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
