# Empty compiler generated dependencies file for bench_sec421_reverse_leakage.
# This may be replaced when dependencies are built.
