file(REMOVE_RECURSE
  "../bench/bench_micro_scoring"
  "../bench/bench_micro_scoring.pdb"
  "CMakeFiles/bench_micro_scoring.dir/bench_micro_scoring.cc.o"
  "CMakeFiles/bench_micro_scoring.dir/bench_micro_scoring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
