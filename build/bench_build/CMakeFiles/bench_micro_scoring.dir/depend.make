# Empty dependencies file for bench_micro_scoring.
# This may be replaced when dependencies are built.
