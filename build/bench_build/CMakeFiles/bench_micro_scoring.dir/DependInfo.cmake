
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_scoring.cc" "bench_build/CMakeFiles/bench_micro_scoring.dir/bench_micro_scoring.cc.o" "gcc" "bench_build/CMakeFiles/bench_micro_scoring.dir/bench_micro_scoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/kgc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/kgc_models.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/kgc_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/kgc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
