# Empty dependencies file for bench_ablation_negative_sampling.
# This may be replaced when dependencies are built.
