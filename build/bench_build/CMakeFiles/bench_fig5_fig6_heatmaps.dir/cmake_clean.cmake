file(REMOVE_RECURSE
  "../bench/bench_fig5_fig6_heatmaps"
  "../bench/bench_fig5_fig6_heatmaps.pdb"
  "CMakeFiles/bench_fig5_fig6_heatmaps.dir/bench_fig5_fig6_heatmaps.cc.o"
  "CMakeFiles/bench_fig5_fig6_heatmaps.dir/bench_fig5_fig6_heatmaps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig6_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
