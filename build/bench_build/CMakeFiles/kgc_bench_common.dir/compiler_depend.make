# Empty compiler generated dependencies file for kgc_bench_common.
# This may be replaced when dependencies are built.
