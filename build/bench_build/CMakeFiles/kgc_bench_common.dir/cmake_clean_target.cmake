file(REMOVE_RECURSE
  "libkgc_bench_common.a"
)
