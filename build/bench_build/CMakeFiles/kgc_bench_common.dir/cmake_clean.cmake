file(REMOVE_RECURSE
  "CMakeFiles/kgc_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/kgc_bench_common.dir/bench_common.cc.o.d"
  "libkgc_bench_common.a"
  "libkgc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
