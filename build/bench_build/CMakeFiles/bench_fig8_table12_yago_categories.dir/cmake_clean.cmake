file(REMOVE_RECURSE
  "../bench/bench_fig8_table12_yago_categories"
  "../bench/bench_fig8_table12_yago_categories.pdb"
  "CMakeFiles/bench_fig8_table12_yago_categories.dir/bench_fig8_table12_yago_categories.cc.o"
  "CMakeFiles/bench_fig8_table12_yago_categories.dir/bench_fig8_table12_yago_categories.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_table12_yago_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
