# Empty dependencies file for bench_fig8_table12_yago_categories.
# This may be replaced when dependencies are built.
