file(REMOVE_RECURSE
  "../bench/bench_table13_fhits1_simple_model"
  "../bench/bench_table13_fhits1_simple_model.pdb"
  "CMakeFiles/bench_table13_fhits1_simple_model.dir/bench_table13_fhits1_simple_model.cc.o"
  "CMakeFiles/bench_table13_fhits1_simple_model.dir/bench_table13_fhits1_simple_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_fhits1_simple_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
