# Empty dependencies file for bench_table13_fhits1_simple_model.
# This may be replaced when dependencies are built.
