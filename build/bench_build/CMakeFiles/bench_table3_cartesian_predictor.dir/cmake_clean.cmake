file(REMOVE_RECURSE
  "../bench/bench_table3_cartesian_predictor"
  "../bench/bench_table3_cartesian_predictor.pdb"
  "CMakeFiles/bench_table3_cartesian_predictor.dir/bench_table3_cartesian_predictor.cc.o"
  "CMakeFiles/bench_table3_cartesian_predictor.dir/bench_table3_cartesian_predictor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cartesian_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
