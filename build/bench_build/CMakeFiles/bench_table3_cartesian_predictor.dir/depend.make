# Empty dependencies file for bench_table3_cartesian_predictor.
# This may be replaced when dependencies are built.
