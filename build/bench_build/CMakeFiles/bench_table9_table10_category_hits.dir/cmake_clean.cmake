file(REMOVE_RECURSE
  "../bench/bench_table9_table10_category_hits"
  "../bench/bench_table9_table10_category_hits.pdb"
  "CMakeFiles/bench_table9_table10_category_hits.dir/bench_table9_table10_category_hits.cc.o"
  "CMakeFiles/bench_table9_table10_category_hits.dir/bench_table9_table10_category_hits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_table10_category_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
