# Empty compiler generated dependencies file for bench_table9_table10_category_hits.
# This may be replaced when dependencies are built.
