file(REMOVE_RECURSE
  "../bench/bench_table6_wn18"
  "../bench/bench_table6_wn18.pdb"
  "CMakeFiles/bench_table6_wn18.dir/bench_table6_wn18.cc.o"
  "CMakeFiles/bench_table6_wn18.dir/bench_table6_wn18.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_wn18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
