# Empty compiler generated dependencies file for bench_table6_wn18.
# This may be replaced when dependencies are built.
