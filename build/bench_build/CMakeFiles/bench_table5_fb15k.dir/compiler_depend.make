# Empty compiler generated dependencies file for bench_table5_fb15k.
# This may be replaced when dependencies are built.
