file(REMOVE_RECURSE
  "../bench/bench_table5_fb15k"
  "../bench/bench_table5_fb15k.pdb"
  "CMakeFiles/bench_table5_fb15k.dir/bench_table5_fb15k.cc.o"
  "CMakeFiles/bench_table5_fb15k.dir/bench_table5_fb15k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fb15k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
