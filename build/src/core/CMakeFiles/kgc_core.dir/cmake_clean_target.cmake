file(REMOVE_RECURSE
  "libkgc_core.a"
)
