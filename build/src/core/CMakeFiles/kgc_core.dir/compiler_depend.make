# Empty compiler generated dependencies file for kgc_core.
# This may be replaced when dependencies are built.
