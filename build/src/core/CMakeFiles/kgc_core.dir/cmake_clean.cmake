file(REMOVE_RECURSE
  "CMakeFiles/kgc_core.dir/audit.cc.o"
  "CMakeFiles/kgc_core.dir/audit.cc.o.d"
  "CMakeFiles/kgc_core.dir/experiment_context.cc.o"
  "CMakeFiles/kgc_core.dir/experiment_context.cc.o.d"
  "libkgc_core.a"
  "libkgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
