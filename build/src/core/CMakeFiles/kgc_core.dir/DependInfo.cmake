
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cc" "src/core/CMakeFiles/kgc_core.dir/audit.cc.o" "gcc" "src/core/CMakeFiles/kgc_core.dir/audit.cc.o.d"
  "/root/repo/src/core/experiment_context.cc" "src/core/CMakeFiles/kgc_core.dir/experiment_context.cc.o" "gcc" "src/core/CMakeFiles/kgc_core.dir/experiment_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/kgc_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kgc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/kgc_models.dir/DependInfo.cmake"
  "/root/repo/build/src/redundancy/CMakeFiles/kgc_redundancy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/kgc_kg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
