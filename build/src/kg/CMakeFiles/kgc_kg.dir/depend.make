# Empty dependencies file for kgc_kg.
# This may be replaced when dependencies are built.
