
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/dataset.cc" "src/kg/CMakeFiles/kgc_kg.dir/dataset.cc.o" "gcc" "src/kg/CMakeFiles/kgc_kg.dir/dataset.cc.o.d"
  "/root/repo/src/kg/kg_io.cc" "src/kg/CMakeFiles/kgc_kg.dir/kg_io.cc.o" "gcc" "src/kg/CMakeFiles/kgc_kg.dir/kg_io.cc.o.d"
  "/root/repo/src/kg/relation_stats.cc" "src/kg/CMakeFiles/kgc_kg.dir/relation_stats.cc.o" "gcc" "src/kg/CMakeFiles/kgc_kg.dir/relation_stats.cc.o.d"
  "/root/repo/src/kg/triple_store.cc" "src/kg/CMakeFiles/kgc_kg.dir/triple_store.cc.o" "gcc" "src/kg/CMakeFiles/kgc_kg.dir/triple_store.cc.o.d"
  "/root/repo/src/kg/vocab.cc" "src/kg/CMakeFiles/kgc_kg.dir/vocab.cc.o" "gcc" "src/kg/CMakeFiles/kgc_kg.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
