file(REMOVE_RECURSE
  "CMakeFiles/kgc_kg.dir/dataset.cc.o"
  "CMakeFiles/kgc_kg.dir/dataset.cc.o.d"
  "CMakeFiles/kgc_kg.dir/kg_io.cc.o"
  "CMakeFiles/kgc_kg.dir/kg_io.cc.o.d"
  "CMakeFiles/kgc_kg.dir/relation_stats.cc.o"
  "CMakeFiles/kgc_kg.dir/relation_stats.cc.o.d"
  "CMakeFiles/kgc_kg.dir/triple_store.cc.o"
  "CMakeFiles/kgc_kg.dir/triple_store.cc.o.d"
  "CMakeFiles/kgc_kg.dir/vocab.cc.o"
  "CMakeFiles/kgc_kg.dir/vocab.cc.o.d"
  "libkgc_kg.a"
  "libkgc_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
