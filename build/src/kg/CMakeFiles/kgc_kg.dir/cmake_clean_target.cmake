file(REMOVE_RECURSE
  "libkgc_kg.a"
)
