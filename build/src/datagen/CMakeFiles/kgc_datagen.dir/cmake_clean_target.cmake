file(REMOVE_RECURSE
  "libkgc_datagen.a"
)
