# Empty compiler generated dependencies file for kgc_datagen.
# This may be replaced when dependencies are built.
