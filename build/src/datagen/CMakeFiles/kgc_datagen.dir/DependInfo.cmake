
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/generator.cc" "src/datagen/CMakeFiles/kgc_datagen.dir/generator.cc.o" "gcc" "src/datagen/CMakeFiles/kgc_datagen.dir/generator.cc.o.d"
  "/root/repo/src/datagen/presets.cc" "src/datagen/CMakeFiles/kgc_datagen.dir/presets.cc.o" "gcc" "src/datagen/CMakeFiles/kgc_datagen.dir/presets.cc.o.d"
  "/root/repo/src/datagen/synthetic_kg.cc" "src/datagen/CMakeFiles/kgc_datagen.dir/synthetic_kg.cc.o" "gcc" "src/datagen/CMakeFiles/kgc_datagen.dir/synthetic_kg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/kgc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
