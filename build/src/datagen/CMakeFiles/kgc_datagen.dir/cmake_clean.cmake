file(REMOVE_RECURSE
  "CMakeFiles/kgc_datagen.dir/generator.cc.o"
  "CMakeFiles/kgc_datagen.dir/generator.cc.o.d"
  "CMakeFiles/kgc_datagen.dir/presets.cc.o"
  "CMakeFiles/kgc_datagen.dir/presets.cc.o.d"
  "CMakeFiles/kgc_datagen.dir/synthetic_kg.cc.o"
  "CMakeFiles/kgc_datagen.dir/synthetic_kg.cc.o.d"
  "libkgc_datagen.a"
  "libkgc_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
