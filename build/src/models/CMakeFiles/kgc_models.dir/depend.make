# Empty dependencies file for kgc_models.
# This may be replaced when dependencies are built.
