file(REMOVE_RECURSE
  "libkgc_models.a"
)
