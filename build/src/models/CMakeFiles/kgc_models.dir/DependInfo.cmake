
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/complex.cc" "src/models/CMakeFiles/kgc_models.dir/complex.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/complex.cc.o.d"
  "/root/repo/src/models/conve.cc" "src/models/CMakeFiles/kgc_models.dir/conve.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/conve.cc.o.d"
  "/root/repo/src/models/distmult.cc" "src/models/CMakeFiles/kgc_models.dir/distmult.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/distmult.cc.o.d"
  "/root/repo/src/models/embedding.cc" "src/models/CMakeFiles/kgc_models.dir/embedding.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/embedding.cc.o.d"
  "/root/repo/src/models/model.cc" "src/models/CMakeFiles/kgc_models.dir/model.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/model.cc.o.d"
  "/root/repo/src/models/model_store.cc" "src/models/CMakeFiles/kgc_models.dir/model_store.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/model_store.cc.o.d"
  "/root/repo/src/models/rescal.cc" "src/models/CMakeFiles/kgc_models.dir/rescal.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/rescal.cc.o.d"
  "/root/repo/src/models/rotate.cc" "src/models/CMakeFiles/kgc_models.dir/rotate.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/rotate.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/models/CMakeFiles/kgc_models.dir/trainer.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/trainer.cc.o.d"
  "/root/repo/src/models/transd.cc" "src/models/CMakeFiles/kgc_models.dir/transd.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/transd.cc.o.d"
  "/root/repo/src/models/transe.cc" "src/models/CMakeFiles/kgc_models.dir/transe.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/transe.cc.o.d"
  "/root/repo/src/models/transh.cc" "src/models/CMakeFiles/kgc_models.dir/transh.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/transh.cc.o.d"
  "/root/repo/src/models/transr.cc" "src/models/CMakeFiles/kgc_models.dir/transr.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/transr.cc.o.d"
  "/root/repo/src/models/tucker.cc" "src/models/CMakeFiles/kgc_models.dir/tucker.cc.o" "gcc" "src/models/CMakeFiles/kgc_models.dir/tucker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/kgc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
