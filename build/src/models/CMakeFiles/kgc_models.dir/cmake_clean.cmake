file(REMOVE_RECURSE
  "CMakeFiles/kgc_models.dir/complex.cc.o"
  "CMakeFiles/kgc_models.dir/complex.cc.o.d"
  "CMakeFiles/kgc_models.dir/conve.cc.o"
  "CMakeFiles/kgc_models.dir/conve.cc.o.d"
  "CMakeFiles/kgc_models.dir/distmult.cc.o"
  "CMakeFiles/kgc_models.dir/distmult.cc.o.d"
  "CMakeFiles/kgc_models.dir/embedding.cc.o"
  "CMakeFiles/kgc_models.dir/embedding.cc.o.d"
  "CMakeFiles/kgc_models.dir/model.cc.o"
  "CMakeFiles/kgc_models.dir/model.cc.o.d"
  "CMakeFiles/kgc_models.dir/model_store.cc.o"
  "CMakeFiles/kgc_models.dir/model_store.cc.o.d"
  "CMakeFiles/kgc_models.dir/rescal.cc.o"
  "CMakeFiles/kgc_models.dir/rescal.cc.o.d"
  "CMakeFiles/kgc_models.dir/rotate.cc.o"
  "CMakeFiles/kgc_models.dir/rotate.cc.o.d"
  "CMakeFiles/kgc_models.dir/trainer.cc.o"
  "CMakeFiles/kgc_models.dir/trainer.cc.o.d"
  "CMakeFiles/kgc_models.dir/transd.cc.o"
  "CMakeFiles/kgc_models.dir/transd.cc.o.d"
  "CMakeFiles/kgc_models.dir/transe.cc.o"
  "CMakeFiles/kgc_models.dir/transe.cc.o.d"
  "CMakeFiles/kgc_models.dir/transh.cc.o"
  "CMakeFiles/kgc_models.dir/transh.cc.o.d"
  "CMakeFiles/kgc_models.dir/transr.cc.o"
  "CMakeFiles/kgc_models.dir/transr.cc.o.d"
  "CMakeFiles/kgc_models.dir/tucker.cc.o"
  "CMakeFiles/kgc_models.dir/tucker.cc.o.d"
  "libkgc_models.a"
  "libkgc_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
