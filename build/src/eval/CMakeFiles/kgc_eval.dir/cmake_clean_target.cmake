file(REMOVE_RECURSE
  "libkgc_eval.a"
)
