
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/category.cc" "src/eval/CMakeFiles/kgc_eval.dir/category.cc.o" "gcc" "src/eval/CMakeFiles/kgc_eval.dir/category.cc.o.d"
  "/root/repo/src/eval/comparison.cc" "src/eval/CMakeFiles/kgc_eval.dir/comparison.cc.o" "gcc" "src/eval/CMakeFiles/kgc_eval.dir/comparison.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/kgc_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/kgc_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/ranker.cc" "src/eval/CMakeFiles/kgc_eval.dir/ranker.cc.o" "gcc" "src/eval/CMakeFiles/kgc_eval.dir/ranker.cc.o.d"
  "/root/repo/src/eval/relation_prediction.cc" "src/eval/CMakeFiles/kgc_eval.dir/relation_prediction.cc.o" "gcc" "src/eval/CMakeFiles/kgc_eval.dir/relation_prediction.cc.o.d"
  "/root/repo/src/eval/triple_classification.cc" "src/eval/CMakeFiles/kgc_eval.dir/triple_classification.cc.o" "gcc" "src/eval/CMakeFiles/kgc_eval.dir/triple_classification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/kgc_models.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/kgc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
