file(REMOVE_RECURSE
  "CMakeFiles/kgc_eval.dir/category.cc.o"
  "CMakeFiles/kgc_eval.dir/category.cc.o.d"
  "CMakeFiles/kgc_eval.dir/comparison.cc.o"
  "CMakeFiles/kgc_eval.dir/comparison.cc.o.d"
  "CMakeFiles/kgc_eval.dir/metrics.cc.o"
  "CMakeFiles/kgc_eval.dir/metrics.cc.o.d"
  "CMakeFiles/kgc_eval.dir/ranker.cc.o"
  "CMakeFiles/kgc_eval.dir/ranker.cc.o.d"
  "CMakeFiles/kgc_eval.dir/relation_prediction.cc.o"
  "CMakeFiles/kgc_eval.dir/relation_prediction.cc.o.d"
  "CMakeFiles/kgc_eval.dir/triple_classification.cc.o"
  "CMakeFiles/kgc_eval.dir/triple_classification.cc.o.d"
  "libkgc_eval.a"
  "libkgc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
