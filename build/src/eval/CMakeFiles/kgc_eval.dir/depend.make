# Empty dependencies file for kgc_eval.
# This may be replaced when dependencies are built.
