file(REMOVE_RECURSE
  "libkgc_util.a"
)
