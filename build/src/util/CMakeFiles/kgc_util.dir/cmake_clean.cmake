file(REMOVE_RECURSE
  "CMakeFiles/kgc_util.dir/file_util.cc.o"
  "CMakeFiles/kgc_util.dir/file_util.cc.o.d"
  "CMakeFiles/kgc_util.dir/logging.cc.o"
  "CMakeFiles/kgc_util.dir/logging.cc.o.d"
  "CMakeFiles/kgc_util.dir/serialize.cc.o"
  "CMakeFiles/kgc_util.dir/serialize.cc.o.d"
  "CMakeFiles/kgc_util.dir/status.cc.o"
  "CMakeFiles/kgc_util.dir/status.cc.o.d"
  "CMakeFiles/kgc_util.dir/string_util.cc.o"
  "CMakeFiles/kgc_util.dir/string_util.cc.o.d"
  "CMakeFiles/kgc_util.dir/table.cc.o"
  "CMakeFiles/kgc_util.dir/table.cc.o.d"
  "libkgc_util.a"
  "libkgc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
