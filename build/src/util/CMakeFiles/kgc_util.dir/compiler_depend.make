# Empty compiler generated dependencies file for kgc_util.
# This may be replaced when dependencies are built.
