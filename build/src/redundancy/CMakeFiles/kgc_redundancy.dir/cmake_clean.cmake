file(REMOVE_RECURSE
  "CMakeFiles/kgc_redundancy.dir/cleaner.cc.o"
  "CMakeFiles/kgc_redundancy.dir/cleaner.cc.o.d"
  "CMakeFiles/kgc_redundancy.dir/detectors.cc.o"
  "CMakeFiles/kgc_redundancy.dir/detectors.cc.o.d"
  "CMakeFiles/kgc_redundancy.dir/leakage.cc.o"
  "CMakeFiles/kgc_redundancy.dir/leakage.cc.o.d"
  "libkgc_redundancy.a"
  "libkgc_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
