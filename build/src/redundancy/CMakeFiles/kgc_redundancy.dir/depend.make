# Empty dependencies file for kgc_redundancy.
# This may be replaced when dependencies are built.
