file(REMOVE_RECURSE
  "libkgc_redundancy.a"
)
