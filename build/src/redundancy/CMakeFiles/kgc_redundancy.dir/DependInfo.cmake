
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/redundancy/cleaner.cc" "src/redundancy/CMakeFiles/kgc_redundancy.dir/cleaner.cc.o" "gcc" "src/redundancy/CMakeFiles/kgc_redundancy.dir/cleaner.cc.o.d"
  "/root/repo/src/redundancy/detectors.cc" "src/redundancy/CMakeFiles/kgc_redundancy.dir/detectors.cc.o" "gcc" "src/redundancy/CMakeFiles/kgc_redundancy.dir/detectors.cc.o.d"
  "/root/repo/src/redundancy/leakage.cc" "src/redundancy/CMakeFiles/kgc_redundancy.dir/leakage.cc.o" "gcc" "src/redundancy/CMakeFiles/kgc_redundancy.dir/leakage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/kgc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
