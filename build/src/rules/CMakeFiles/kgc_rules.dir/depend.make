# Empty dependencies file for kgc_rules.
# This may be replaced when dependencies are built.
