file(REMOVE_RECURSE
  "CMakeFiles/kgc_rules.dir/amie.cc.o"
  "CMakeFiles/kgc_rules.dir/amie.cc.o.d"
  "CMakeFiles/kgc_rules.dir/cartesian_predictor.cc.o"
  "CMakeFiles/kgc_rules.dir/cartesian_predictor.cc.o.d"
  "CMakeFiles/kgc_rules.dir/simple_rule_model.cc.o"
  "CMakeFiles/kgc_rules.dir/simple_rule_model.cc.o.d"
  "libkgc_rules.a"
  "libkgc_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgc_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
