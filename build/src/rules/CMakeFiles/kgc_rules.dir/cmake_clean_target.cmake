file(REMOVE_RECURSE
  "libkgc_rules.a"
)
