
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/amie.cc" "src/rules/CMakeFiles/kgc_rules.dir/amie.cc.o" "gcc" "src/rules/CMakeFiles/kgc_rules.dir/amie.cc.o.d"
  "/root/repo/src/rules/cartesian_predictor.cc" "src/rules/CMakeFiles/kgc_rules.dir/cartesian_predictor.cc.o" "gcc" "src/rules/CMakeFiles/kgc_rules.dir/cartesian_predictor.cc.o.d"
  "/root/repo/src/rules/simple_rule_model.cc" "src/rules/CMakeFiles/kgc_rules.dir/simple_rule_model.cc.o" "gcc" "src/rules/CMakeFiles/kgc_rules.dir/simple_rule_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/kgc_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/redundancy/CMakeFiles/kgc_redundancy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
