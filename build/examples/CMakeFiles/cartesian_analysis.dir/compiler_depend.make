# Empty compiler generated dependencies file for cartesian_analysis.
# This may be replaced when dependencies are built.
