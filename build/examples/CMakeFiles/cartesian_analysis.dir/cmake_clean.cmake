file(REMOVE_RECURSE
  "CMakeFiles/cartesian_analysis.dir/cartesian_analysis.cpp.o"
  "CMakeFiles/cartesian_analysis.dir/cartesian_analysis.cpp.o.d"
  "cartesian_analysis"
  "cartesian_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cartesian_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
