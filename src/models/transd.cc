#include "models/transd.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

TransD::TransD(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransD, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      entity_proj_(num_entities, params.dim),
      relations_(num_relations, params.dim),
      relation_proj_(num_relations, params.dim) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  relations_.InitUniform(rng, bound);
  entities_.NormalizeRowsL2();
  relations_.NormalizeRowsL2();
  // Projection vectors start near zero: M_rh ~ I, i.e. the TransE solution.
  entity_proj_.InitUniform(rng, 0.1);
  relation_proj_.InitUniform(rng, 0.1);
}

// Both sweep directions fit the offset-row kernel with v = r_p,
// coef[i] = (e_p . e) and coef_scale = -1: the distance per candidate is
// |q - e - (e_p.e) r_p| element-wise (heads negate the difference, which
// leaves both L1 and L2 unchanged).

double TransD::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto hp = entity_proj_.Row(h);
  const auto rv = relations_.Row(r);
  const auto rp = relation_proj_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  const double ph = Dot(hp, hv);
  auto q = vec::GetScratch(dim, 0);
  for (size_t j = 0; j < dim; ++j) {
    q[j] = static_cast<float>(hv[j] + ph * rp[j] + rv[j]);
  }
  const auto& ops = vec::Ops();
  float coef = 0.0f;
  ops.rowwise_dot(entity_proj_.Row(t).data(), dim, entities_.Row(t).data(),
                  dim, 1, dim, &coef);
  float dist = 0.0f;
  const auto sweep =
      params_.l1_distance ? ops.l1_offset_rows : ops.l2_offset_rows;
  sweep(q.data(), rp.data(), &coef, -1.0f, entities_.Row(t).data(), 1, dim,
        dim, &dist);
  return -static_cast<double>(dist);
}

void TransD::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const int32_t dim = params_.dim;
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto hp = entity_proj_.Row(triple.head);
  const auto tp = entity_proj_.Row(triple.tail);
  const auto rv = relations_.Row(triple.relation);
  const auto rp = relation_proj_.Row(triple.relation);
  const double ph = Dot(hp, hv);
  const double pt = Dot(tp, tv);

  auto diff = vec::GetScratch(static_cast<size_t>(dim), 0);
  double norm = 0.0;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    diff[k] = static_cast<float>((hv[k] + ph * rp[k]) + rv[k] -
                                 (tv[k] + pt * rp[k]));
    norm += static_cast<double>(diff[k]) * diff[k];
  }
  norm = std::sqrt(norm);
  if (!params_.l1_distance && norm < 1e-12) return;

  auto g = vec::GetScratch(static_cast<size_t>(dim), 1);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double d_score_d_diff =
        params_.l1_distance
            ? -(diff[k] > 0 ? 1.0 : (diff[k] < 0 ? -1.0 : 0.0))
            : -diff[k] / norm;
    g[k] = d_loss_d_score * static_cast<float>(d_score_d_diff);
  }

  const double rg = vec::Dot(rp.data(), g.data(), g.size());  // (r_p . g)
  // dLoss/dh = g + (r_p.g) h_p ; dLoss/dt is the mirrored negation.
  auto ge = vec::GetScratch(static_cast<size_t>(dim), 2);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    ge[k] = g[k] + static_cast<float>(rg) * hp[k];
  }
  entities_.UpdateRow(triple.head, ge, lr);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    ge[k] = g[k] + static_cast<float>(rg) * tp[k];
  }
  entities_.UpdateRow(triple.tail, ge, lr, -1.0f);
  // dLoss/dh_p = (r_p.g) h ; dLoss/dt_p = -(r_p.g) t — read from the
  // entity rows after their updates (the historical update order).
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    ge[k] = static_cast<float>(rg) * hv[k];
  }
  entity_proj_.UpdateRow(triple.head, ge, lr);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    ge[k] = static_cast<float>(rg) * tv[k];
  }
  entity_proj_.UpdateRow(triple.tail, ge, lr, -1.0f);
  // dLoss/dr = g ; dLoss/dr_p = ((h_p.h) - (t_p.t)) g.
  relations_.UpdateRow(triple.relation, g, lr);
  relation_proj_.UpdateRow(triple.relation, g, lr,
                           static_cast<float>(ph - pt));
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
}

void TransD::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  SweepSpec spec;
  DescribeSweep(/*tails=*/true, r, &spec);  // fills coef in scratch slot 1
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  const auto& ops = vec::Ops();
  const auto sweep =
      params_.l1_distance ? ops.l1_offset_rows : ops.l2_offset_rows;
  sweep(q.data(), spec.v, spec.coef, spec.coef_scale, spec.rows,
        spec.num_rows, spec.stride, spec.dim, out.data());
  vec::Negate(out);
}

void TransD::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  SweepSpec spec;
  DescribeSweep(/*tails=*/false, r, &spec);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  const auto& ops = vec::Ops();
  const auto sweep =
      params_.l1_distance ? ops.l1_offset_rows : ops.l2_offset_rows;
  sweep(q.data(), spec.v, spec.coef, spec.coef_scale, spec.rows,
        spec.num_rows, spec.stride, spec.dim, out.data());
  vec::Negate(out);
}

bool TransD::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  const size_t dim = static_cast<size_t>(params_.dim);
  const size_t n = static_cast<size_t>(num_entities_);
  auto coef = vec::GetScratch(n, 1);
  vec::Ops().rowwise_dot(entity_proj_.raw(), dim, entities_.raw(), dim, n,
                         dim, coef.data());
  spec->kind = params_.l1_distance ? SweepKind::kL1Offset : SweepKind::kL2Offset;
  spec->rows = entities_.raw();
  spec->num_rows = n;
  spec->stride = dim;
  spec->dim = dim;
  spec->query_len = dim;
  spec->v = relation_proj_.Row(r).data();
  spec->coef = coef.data();
  spec->coef_scale = -1.0f;
  spec->negate = true;
  spec->stable_rows = true;
  return true;
}

void TransD::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                             std::span<float> q) const {
  const auto av = entities_.Row(anchor);
  const auto ap = entity_proj_.Row(anchor);
  const auto rv = relations_.Row(r);
  const auto rp = relation_proj_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  const double pa = Dot(ap, av);
  if (tails) {
    for (size_t j = 0; j < dim; ++j) {
      q[j] = static_cast<float>(av[j] + pa * rp[j] + rv[j]);
    }
  } else {
    for (size_t j = 0; j < dim; ++j) {
      q[j] = static_cast<float>(av[j] + pa * rp[j] - rv[j]);
    }
  }
}

void TransD::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
}

void TransD::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  entity_proj_.Serialize(writer);
  relations_.Serialize(writer);
  relation_proj_.Serialize(writer);
}

Status TransD::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(entity_proj_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relation_proj_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
