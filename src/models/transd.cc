#include "models/transd.h"

#include <cmath>

namespace kgc {

TransD::TransD(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransD, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      entity_proj_(num_entities, params.dim),
      relations_(num_relations, params.dim),
      relation_proj_(num_relations, params.dim) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  relations_.InitUniform(rng, bound);
  entities_.NormalizeRowsL2();
  relations_.NormalizeRowsL2();
  // Projection vectors start near zero: M_rh ~ I, i.e. the TransE solution.
  entity_proj_.InitUniform(rng, 0.1);
  relation_proj_.InitUniform(rng, 0.1);
}

double TransD::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto tv = entities_.Row(t);
  const auto hp = entity_proj_.Row(h);
  const auto tp = entity_proj_.Row(t);
  const auto rv = relations_.Row(r);
  const auto rp = relation_proj_.Row(r);
  const double ph = Dot(hp, hv);
  const double pt = Dot(tp, tv);
  double sum = 0.0;
  for (int32_t j = 0; j < params_.dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double diff =
        (hv[k] + ph * rp[k]) + rv[k] - (tv[k] + pt * rp[k]);
    sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
  }
  return params_.l1_distance ? -sum : -std::sqrt(sum);
}

void TransD::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const int32_t dim = params_.dim;
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto hp = entity_proj_.Row(triple.head);
  const auto tp = entity_proj_.Row(triple.tail);
  const auto rv = relations_.Row(triple.relation);
  const auto rp = relation_proj_.Row(triple.relation);
  const double ph = Dot(hp, hv);
  const double pt = Dot(tp, tv);

  std::vector<float> diff(static_cast<size_t>(dim));
  double norm = 0.0;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    diff[k] = static_cast<float>((hv[k] + ph * rp[k]) + rv[k] -
                                 (tv[k] + pt * rp[k]));
    norm += static_cast<double>(diff[k]) * diff[k];
  }
  norm = std::sqrt(norm);
  if (!params_.l1_distance && norm < 1e-12) return;

  std::vector<float> g(static_cast<size_t>(dim));
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double d_score_d_diff =
        params_.l1_distance
            ? -(diff[k] > 0 ? 1.0 : (diff[k] < 0 ? -1.0 : 0.0))
            : -diff[k] / norm;
    g[k] = d_loss_d_score * static_cast<float>(d_score_d_diff);
  }

  const double rg = Dot(rp, g);  // (r_p . g)
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    // dLoss/dh = g + (r_p.g) h_p ; dLoss/dh_p = (r_p.g) h.
    entities_.Update(triple.head, j,
                     g[k] + static_cast<float>(rg) * hp[k], lr);
    entity_proj_.Update(triple.head, j, static_cast<float>(rg) * hv[k], lr);
    // dLoss/dt = -(g + (r_p.g) t_p) ; dLoss/dt_p = -(r_p.g) t.
    entities_.Update(triple.tail, j,
                     -(g[k] + static_cast<float>(rg) * tp[k]), lr);
    entity_proj_.Update(triple.tail, j, -static_cast<float>(rg) * tv[k], lr);
    // dLoss/dr = g ; dLoss/dr_p = ((h_p.h) - (t_p.t)) g.
    relations_.Update(triple.relation, j, g[k], lr);
    relation_proj_.Update(triple.relation, j,
                          static_cast<float>(ph - pt) * g[k], lr);
  }
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
}

void TransD::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const int32_t dim = params_.dim;
  const auto hv = entities_.Row(h);
  const auto hp = entity_proj_.Row(h);
  const auto rv = relations_.Row(r);
  const auto rp = relation_proj_.Row(r);
  const double ph = Dot(hp, hv);
  std::vector<float> q(static_cast<size_t>(dim));
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    q[k] = static_cast<float>(hv[k] + ph * rp[k] + rv[k]);
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    const auto ev = entities_.Row(e);
    const auto ep = entity_proj_.Row(e);
    const double pe = Dot(ep, ev);
    double sum = 0.0;
    for (int32_t j = 0; j < dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      const double diff = q[k] - (ev[k] + pe * rp[k]);
      sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
    }
    out[static_cast<size_t>(e)] =
        static_cast<float>(params_.l1_distance ? -sum : -std::sqrt(sum));
  }
}

void TransD::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const int32_t dim = params_.dim;
  const auto tv = entities_.Row(t);
  const auto tp = entity_proj_.Row(t);
  const auto rv = relations_.Row(r);
  const auto rp = relation_proj_.Row(r);
  const double pt = Dot(tp, tv);
  std::vector<float> q(static_cast<size_t>(dim));
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    q[k] = static_cast<float>(tv[k] + pt * rp[k] - rv[k]);
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    const auto ev = entities_.Row(e);
    const auto ep = entity_proj_.Row(e);
    const double pe = Dot(ep, ev);
    double sum = 0.0;
    for (int32_t j = 0; j < dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      const double diff = (ev[k] + pe * rp[k]) - q[k];
      sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
    }
    out[static_cast<size_t>(e)] =
        static_cast<float>(params_.l1_distance ? -sum : -std::sqrt(sum));
  }
}

void TransD::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
}

void TransD::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  entity_proj_.Serialize(writer);
  relations_.Serialize(writer);
  relation_proj_.Serialize(writer);
}

Status TransD::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(entity_proj_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relation_proj_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
