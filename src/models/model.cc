#include "models/model.h"

#include <array>

#include "models/complex.h"
#include "models/conve.h"
#include "models/distmult.h"
#include "models/rescal.h"
#include "models/rotate.h"
#include "models/transd.h"
#include "models/transe.h"
#include "models/transh.h"
#include "models/transr.h"
#include "models/tucker.h"

namespace kgc {

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kTransE:
      return "TransE";
    case ModelType::kTransH:
      return "TransH";
    case ModelType::kTransR:
      return "TransR";
    case ModelType::kTransD:
      return "TransD";
    case ModelType::kRescal:
      return "RESCAL";
    case ModelType::kDistMult:
      return "DistMult";
    case ModelType::kComplEx:
      return "ComplEx";
    case ModelType::kRotatE:
      return "RotatE";
    case ModelType::kTuckER:
      return "TuckER";
    case ModelType::kConvE:
      return "ConvE";
  }
  return "unknown";
}

StatusOr<ModelType> ParseModelType(const std::string& name) {
  static constexpr ModelType kAll[] = {
      ModelType::kTransE, ModelType::kTransH,   ModelType::kTransR,
      ModelType::kTransD, ModelType::kRescal,   ModelType::kDistMult,
      ModelType::kComplEx, ModelType::kRotatE,  ModelType::kTuckER,
      ModelType::kConvE,
  };
  for (ModelType type : kAll) {
    if (name == ModelTypeName(type)) return type;
  }
  return Status::InvalidArgument("unknown model type: " + name);
}

void KgeModel::ScoreTails(EntityId h, RelationId r,
                          std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Score(h, r, e));
  }
}

void KgeModel::ScoreHeads(RelationId r, EntityId t,
                          std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Score(e, r, t));
  }
}

std::unique_ptr<KgeModel> CreateModel(ModelType type, int32_t num_entities,
                                      int32_t num_relations,
                                      const ModelHyperParams& params) {
  switch (type) {
    case ModelType::kTransE:
      return std::make_unique<TransE>(num_entities, num_relations, params);
    case ModelType::kTransH:
      return std::make_unique<TransH>(num_entities, num_relations, params);
    case ModelType::kTransR:
      return std::make_unique<TransR>(num_entities, num_relations, params);
    case ModelType::kTransD:
      return std::make_unique<TransD>(num_entities, num_relations, params);
    case ModelType::kRescal:
      return std::make_unique<Rescal>(num_entities, num_relations, params);
    case ModelType::kDistMult:
      return std::make_unique<DistMult>(num_entities, num_relations, params);
    case ModelType::kComplEx:
      return std::make_unique<ComplEx>(num_entities, num_relations, params);
    case ModelType::kRotatE:
      return std::make_unique<RotatE>(num_entities, num_relations, params);
    case ModelType::kTuckER:
      return std::make_unique<TuckER>(num_entities, num_relations, params);
    case ModelType::kConvE:
      return std::make_unique<ConvE>(num_entities, num_relations, params);
  }
  KGC_CHECK(false);
  return nullptr;
}

ModelHyperParams DefaultHyperParams(ModelType type) {
  ModelHyperParams params;
  switch (type) {
    case ModelType::kTransE:
      params.learning_rate = 0.05;
      params.margin = 1.0;
      break;
    case ModelType::kTransH:
      params.learning_rate = 0.05;
      params.margin = 1.0;
      break;
    case ModelType::kTransR:
      params.learning_rate = 0.02;
      params.margin = 1.0;
      break;
    case ModelType::kTransD:
      params.learning_rate = 0.05;
      params.margin = 1.0;
      break;
    case ModelType::kRescal:
      params.loss = LossKind::kLogistic;
      params.learning_rate = 0.05;
      params.l2_reg = 1e-4;
      params.adagrad = true;
      break;
    case ModelType::kDistMult:
      params.loss = LossKind::kLogistic;
      params.learning_rate = 0.08;
      params.l2_reg = 1e-3;
      break;
    case ModelType::kComplEx:
      params.loss = LossKind::kLogistic;
      params.learning_rate = 0.08;
      params.l2_reg = 1e-3;
      break;
    case ModelType::kRotatE:
      params.loss = LossKind::kMarginRanking;
      params.learning_rate = 0.05;
      params.margin = 6.0;
      break;
    case ModelType::kTuckER:
      params.loss = LossKind::kLogistic;
      params.learning_rate = 0.2;
      params.dim2 = 8;
      params.l2_reg = 1e-4;
      params.adagrad = true;
      break;
    case ModelType::kConvE:
      params.loss = LossKind::kLogistic;
      params.learning_rate = 0.03;
      params.l2_reg = 1e-3;
      params.adagrad = true;
      break;
  }
  return params;
}

std::span<const ModelType> PaperModelLineup() {
  static constexpr std::array<ModelType, 9> kLineup = {
      ModelType::kTransE,  ModelType::kTransH,  ModelType::kTransR,
      ModelType::kTransD,  ModelType::kDistMult, ModelType::kComplEx,
      ModelType::kConvE,   ModelType::kRotatE,  ModelType::kTuckER,
  };
  return kLineup;
}

std::span<const ModelType> FigureModelLineup() {
  static constexpr std::array<ModelType, 6> kLineup = {
      ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
      ModelType::kConvE,  ModelType::kRotatE,   ModelType::kTuckER,
  };
  return kLineup;
}

}  // namespace kgc
