// RESCAL (Nickel et al., ICML 2011).
//
// Collective matrix factorization: each relation is a full interaction
// matrix W_r in R^{d x d}: score(h, r, t) = h^T W_r t.

#ifndef KGC_MODELS_RESCAL_H_
#define KGC_MODELS_RESCAL_H_

#include "models/model.h"

namespace kgc {

class Rescal final : public KgeModel {
 public:
  Rescal(int32_t num_entities, int32_t num_relations,
         const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  EmbeddingTable entities_;
  EmbeddingTable matrices_;  // one d*d row-major W_r per relation
};

}  // namespace kgc

#endif  // KGC_MODELS_RESCAL_H_
