#include "models/complex.h"

#include <cmath>

namespace kgc {

ComplEx::ComplEx(int32_t num_entities, int32_t num_relations,
                 const ModelHyperParams& params)
    : KgeModel(ModelType::kComplEx, num_entities, num_relations, params),
      entities_(num_entities, 2 * params.dim),
      relations_(num_relations, 2 * params.dim) {
  if (params.adagrad) {
    entities_.EnableAdaGrad();
    relations_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitNormal(rng, stddev);
  relations_.InitNormal(rng, stddev);
}

double ComplEx::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto rv = relations_.Row(r);
  const auto tv = entities_.Row(t);
  const size_t d = static_cast<size_t>(params_.dim);
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double hr = hv[j], hi = hv[d + j];
    const double rr = rv[j], ri = rv[d + j];
    const double tr = tv[j], ti = tv[d + j];
    // Re((h r) conj(t)).
    sum += (hr * rr - hi * ri) * tr + (hr * ri + hi * rr) * ti;
  }
  return sum;
}

void ComplEx::ApplyGradient(const Triple& triple, float d_loss_d_score,
                            float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto rv = relations_.Row(triple.relation);
  const auto tv = entities_.Row(triple.tail);
  const size_t d = static_cast<size_t>(params_.dim);
  const float decay = static_cast<float>(params_.l2_reg);
  const float g = d_loss_d_score;
  for (size_t j = 0; j < d; ++j) {
    const float hr = hv[j], hi = hv[d + j];
    const float rr = rv[j], ri = rv[d + j];
    const float tr = tv[j], ti = tv[d + j];
    // score_j = (hr rr - hi ri) tr + (hr ri + hi rr) ti.
    const float ghr = g * (rr * tr + ri * ti) + decay * hr;
    const float ghi = g * (rr * ti - ri * tr) + decay * hi;
    const float grr = g * (hr * tr + hi * ti) + decay * rr;
    const float gri = g * (hr * ti - hi * tr) + decay * ri;
    const float gtr = g * (hr * rr - hi * ri) + decay * tr;
    const float gti = g * (hr * ri + hi * rr) + decay * ti;
    const int32_t jj = static_cast<int32_t>(j);
    const int32_t dj = static_cast<int32_t>(d + j);
    entities_.Update(triple.head, jj, ghr, lr);
    entities_.Update(triple.head, dj, ghi, lr);
    relations_.Update(triple.relation, jj, grr, lr);
    relations_.Update(triple.relation, dj, gri, lr);
    entities_.Update(triple.tail, jj, gtr, lr);
    entities_.Update(triple.tail, dj, gti, lr);
  }
}

void ComplEx::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto hv = entities_.Row(h);
  const auto rv = relations_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  // q = h * r (complex product); score(e) = q_re . e_re + q_im . e_im.
  std::vector<float> q(2 * d);
  for (size_t j = 0; j < d; ++j) {
    q[j] = hv[j] * rv[j] - hv[d + j] * rv[d + j];
    q[d + j] = hv[j] * rv[d + j] + hv[d + j] * rv[j];
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Dot(q, entities_.Row(e)));
  }
}

void ComplEx::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto tv = entities_.Row(t);
  const auto rv = relations_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  // As a function of h: score = h_re . q_re + h_im . q_im with
  // q_re = r_re t_re + r_im t_im, q_im = r_re t_im - r_im t_re.
  std::vector<float> q(2 * d);
  for (size_t j = 0; j < d; ++j) {
    q[j] = rv[j] * tv[j] + rv[d + j] * tv[d + j];
    q[d + j] = rv[j] * tv[d + j] - rv[d + j] * tv[j];
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Dot(q, entities_.Row(e)));
  }
}

void ComplEx::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
}

Status ComplEx::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
