#include "models/complex.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

ComplEx::ComplEx(int32_t num_entities, int32_t num_relations,
                 const ModelHyperParams& params)
    : KgeModel(ModelType::kComplEx, num_entities, num_relations, params),
      entities_(num_entities, 2 * params.dim),
      relations_(num_relations, 2 * params.dim) {
  if (params.adagrad) {
    entities_.EnableAdaGrad();
    relations_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitNormal(rng, stddev);
  relations_.InitNormal(rng, stddev);
}

double ComplEx::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto rv = relations_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  // q = h * r (complex product); Re((h r) conj(t)) = q_re.t_re + q_im.t_im.
  auto q = vec::GetScratch(2 * d, 0);
  const auto& ops = vec::Ops();
  ops.complex_hadamard(hv.data(), rv.data(), d, /*conj_a=*/false, q.data());
  float score = 0.0f;
  ops.dot_rows(q.data(), entities_.Row(t).data(), 1, 2 * d, 2 * d, &score);
  return static_cast<double>(score);
}

void ComplEx::ApplyGradient(const Triple& triple, float d_loss_d_score,
                            float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto rv = relations_.Row(triple.relation);
  const auto tv = entities_.Row(triple.tail);
  const size_t d = static_cast<size_t>(params_.dim);
  const float decay = static_cast<float>(params_.l2_reg);
  const float g = d_loss_d_score;
  auto gh = vec::GetScratch(2 * d, 0);
  auto gr = vec::GetScratch(2 * d, 1);
  auto gt = vec::GetScratch(2 * d, 2);
  for (size_t j = 0; j < d; ++j) {
    const float hr = hv[j], hi = hv[d + j];
    const float rr = rv[j], ri = rv[d + j];
    const float tr = tv[j], ti = tv[d + j];
    // score_j = (hr rr - hi ri) tr + (hr ri + hi rr) ti.
    gh[j] = g * (rr * tr + ri * ti) + decay * hr;
    gh[d + j] = g * (rr * ti - ri * tr) + decay * hi;
    gr[j] = g * (hr * tr + hi * ti) + decay * rr;
    gr[d + j] = g * (hr * ti - hi * tr) + decay * ri;
    gt[j] = g * (hr * rr - hi * ri) + decay * tr;
    gt[d + j] = g * (hr * ri + hi * rr) + decay * ti;
  }
  entities_.UpdateRow(triple.head, gh, lr);
  relations_.UpdateRow(triple.relation, gr, lr);
  entities_.UpdateRow(triple.tail, gt, lr);
}

void ComplEx::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t d = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(2 * d, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), 2 * d, 2 * d,
                      out.data());
}

void ComplEx::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t d = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(2 * d, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), 2 * d, 2 * d,
                      out.data());
}

bool ComplEx::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  (void)r;
  spec->kind = SweepKind::kDot;
  spec->rows = entities_.raw();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = 2 * static_cast<size_t>(params_.dim);
  spec->dim = spec->stride;
  spec->query_len = spec->stride;
  spec->stable_rows = true;
  return true;
}

void ComplEx::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                              std::span<float> q) const {
  const auto av = entities_.Row(anchor);
  const auto rv = relations_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  if (tails) {
    // q = h * r (complex product); score(e) = q_re . e_re + q_im . e_im.
    vec::Ops().complex_hadamard(av.data(), rv.data(), d, /*conj_a=*/false,
                                q.data());
  } else {
    // As a function of h: score = h_re . q_re + h_im . q_im with
    // q = conj(r) * t (Hermitian product).
    vec::Ops().complex_hadamard(rv.data(), av.data(), d, /*conj_a=*/true,
                                q.data());
  }
}

void ComplEx::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
}

Status ComplEx::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
