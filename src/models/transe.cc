#include "models/transe.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

TransE::TransE(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransE, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      relations_(num_relations, params.dim) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  relations_.InitUniform(rng, bound);
  relations_.NormalizeRowsL2();
  entities_.NormalizeRowsL2();
}

double TransE::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto rv = relations_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  // Built exactly like the ScoreTails query so the two agree bit-exactly.
  auto q = vec::GetScratch(dim, 0);
  for (size_t j = 0; j < dim; ++j) q[j] = hv[j] + rv[j];
  float dist = 0.0f;
  const auto& ops = vec::Ops();
  if (params_.l1_distance) {
    ops.l1_rows(q.data(), entities_.Row(t).data(), 1, dim, dim, &dist);
  } else {
    ops.l2_rows(q.data(), entities_.Row(t).data(), 1, dim, dim, &dist);
  }
  return -static_cast<double>(dist);
}

void TransE::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto rv = relations_.Row(triple.relation);
  const auto tv = entities_.Row(triple.tail);

  // score = -dist(h + r - t). For L1, dScore/d diff_j = -sign(diff_j);
  // for L2, -diff_j / ||diff||.
  const int32_t dim = params_.dim;
  double norm = 0.0;
  if (!params_.l1_distance) {
    for (int32_t j = 0; j < dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      const double d = hv[k] + rv[k] - tv[k];
      norm += d * d;
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) return;
  }
  auto g = vec::GetScratch(static_cast<size_t>(dim), 1);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double diff = hv[k] + rv[k] - tv[k];
    const double d_score_d_diff =
        params_.l1_distance ? -(diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0))
                            : -diff / norm;
    g[k] = d_loss_d_score * static_cast<float>(d_score_d_diff);
  }
  entities_.UpdateRow(triple.head, g, lr);
  relations_.UpdateRow(triple.relation, g, lr);
  entities_.UpdateRow(triple.tail, g, lr, -1.0f);
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
}

void TransE::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  const auto& ops = vec::Ops();
  const auto sweep = params_.l1_distance ? ops.l1_rows : ops.l2_rows;
  sweep(q.data(), entities_.raw(), static_cast<size_t>(num_entities_), dim,
        dim, out.data());
  vec::Negate(out);
}

void TransE::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  const auto& ops = vec::Ops();
  const auto sweep = params_.l1_distance ? ops.l1_rows : ops.l2_rows;
  sweep(q.data(), entities_.raw(), static_cast<size_t>(num_entities_), dim,
        dim, out.data());
  vec::Negate(out);
}

bool TransE::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  (void)r;
  spec->kind = params_.l1_distance ? SweepKind::kL1 : SweepKind::kL2;
  spec->rows = entities_.raw();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = static_cast<size_t>(params_.dim);
  spec->dim = spec->stride;
  spec->query_len = spec->stride;
  spec->negate = true;
  spec->stable_rows = true;
  return true;
}

void TransE::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                             std::span<float> q) const {
  const auto av = entities_.Row(anchor);
  const auto rv = relations_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  if (tails) {
    for (size_t j = 0; j < dim; ++j) q[j] = av[j] + rv[j];
  } else {
    for (size_t j = 0; j < dim; ++j) q[j] = av[j] - rv[j];  // -dist(e-(t-r))
  }
}

void TransE::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
}

void TransE::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
}

Status TransE::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
