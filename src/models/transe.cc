#include "models/transe.h"

#include <cmath>

namespace kgc {
namespace {

// Distance between q and t under L1 / L2.
double Distance(std::span<const float> q, std::span<const float> t, bool l1) {
  double sum = 0.0;
  if (l1) {
    for (size_t j = 0; j < q.size(); ++j) sum += std::fabs(q[j] - t[j]);
    return sum;
  }
  for (size_t j = 0; j < q.size(); ++j) {
    const double d = q[j] - t[j];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

TransE::TransE(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransE, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      relations_(num_relations, params.dim) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  relations_.InitUniform(rng, bound);
  relations_.NormalizeRowsL2();
  entities_.NormalizeRowsL2();
}

double TransE::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto rv = relations_.Row(r);
  const auto tv = entities_.Row(t);
  double sum = 0.0;
  if (params_.l1_distance) {
    for (int32_t j = 0; j < params_.dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      sum += std::fabs(hv[k] + rv[k] - tv[k]);
    }
  } else {
    for (int32_t j = 0; j < params_.dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      const double d = hv[k] + rv[k] - tv[k];
      sum += d * d;
    }
    sum = std::sqrt(sum);
  }
  return -sum;
}

void TransE::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto rv = relations_.Row(triple.relation);
  const auto tv = entities_.Row(triple.tail);

  // score = -dist(h + r - t). For L1, dScore/d diff_j = -sign(diff_j);
  // for L2, -diff_j / ||diff||.
  const int32_t dim = params_.dim;
  double norm = 0.0;
  if (!params_.l1_distance) {
    for (int32_t j = 0; j < dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      const double d = hv[k] + rv[k] - tv[k];
      norm += d * d;
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) return;
  }
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double diff = hv[k] + rv[k] - tv[k];
    const double d_score_d_diff =
        params_.l1_distance ? -(diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0))
                            : -diff / norm;
    const float g = d_loss_d_score * static_cast<float>(d_score_d_diff);
    entities_.Update(triple.head, j, g, lr);
    relations_.Update(triple.relation, j, g, lr);
    entities_.Update(triple.tail, j, -g, lr);
  }
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
}

void TransE::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto hv = entities_.Row(h);
  const auto rv = relations_.Row(r);
  std::vector<float> q(static_cast<size_t>(params_.dim));
  for (int32_t j = 0; j < params_.dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    q[k] = hv[k] + rv[k];
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(
        -Distance(q, entities_.Row(e), params_.l1_distance));
  }
}

void TransE::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto rv = relations_.Row(r);
  const auto tv = entities_.Row(t);
  std::vector<float> q(static_cast<size_t>(params_.dim));
  for (int32_t j = 0; j < params_.dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    q[k] = tv[k] - rv[k];  // score(e) = -dist(e - (t - r))
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(
        -Distance(entities_.Row(e), q, params_.l1_distance));
  }
}

void TransE::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
}

void TransE::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
}

Status TransE::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
