// TransH (Wang et al., AAAI 2014).
//
// Each relation carries a hyperplane with unit normal w_r and a translation
// d_r within the plane: score(h, r, t) = -||h_perp + d_r - t_perp|| with
// e_perp = e - (w_r . e) w_r. The projection lets one entity play different
// roles in different relations, addressing TransE's 1-to-n limitations.

#ifndef KGC_MODELS_TRANSH_H_
#define KGC_MODELS_TRANSH_H_

#include "models/model.h"

namespace kgc {

class TransH final : public KgeModel {
 public:
  TransH(int32_t num_entities, int32_t num_relations,
         const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;
  void OnEpochBegin(int epoch) override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  // Projects `e` onto relation r's hyperplane into `out`.
  void Project(std::span<const float> e, std::span<const float> w,
               std::span<float> out) const;

  EmbeddingTable entities_;
  EmbeddingTable translations_;  // d_r
  EmbeddingTable normals_;       // w_r, kept unit-norm
};

}  // namespace kgc

#endif  // KGC_MODELS_TRANSH_H_
