// SGD training loop with negative sampling.
//
// Implements the two training regimes used by the models the paper compares:
// margin-based ranking (Trans* family, RotatE) and logistic/softplus loss
// over positive + sampled negative triples (RESCAL, DistMult, ComplEx,
// TuckER, ConvE). Negatives are produced by corrupting the head or tail of a
// positive; with `bernoulli` the corrupted side is chosen per-relation based
// on its heads-per-tail / tails-per-head statistics (Wang et al. 2014),
// which reduces false negatives on 1-to-n / n-to-1 relations.

#ifndef KGC_MODELS_TRAINER_H_
#define KGC_MODELS_TRAINER_H_

#include "kg/dataset.h"
#include "models/model.h"

namespace kgc {

struct TrainOptions {
  int epochs = 40;
  /// Negatives sampled per positive.
  int negatives = 2;
  /// Bernoulli (relation-aware) corruption side selection; uniform if false.
  bool bernoulli = true;
  uint64_t seed = 13;
  /// Log epoch losses via LogInfo.
  bool verbose = false;
};

struct TrainStats {
  /// Mean per-example loss of the last epoch.
  double final_loss = 0.0;
  double seconds = 0.0;
  int epochs_run = 0;
};

/// Trains `model` on the training split of `dataset` in place.
TrainStats TrainModel(KgeModel& model, const Dataset& dataset,
                      const TrainOptions& options);

/// Per-model-type training defaults tuned for the scaled synthetic
/// benchmarks (margin models: 1 negative; logistic models: several).
TrainOptions DefaultTrainOptions(ModelType type);

}  // namespace kgc

#endif  // KGC_MODELS_TRAINER_H_
