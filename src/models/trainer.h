// SGD training loop with negative sampling.
//
// Implements the two training regimes used by the models the paper compares:
// margin-based ranking (Trans* family, RotatE) and logistic/softplus loss
// over positive + sampled negative triples (RESCAL, DistMult, ComplEx,
// TuckER, ConvE). Negatives are produced by corrupting the head or tail of a
// positive; with `bernoulli` the corrupted side is chosen per-relation based
// on its heads-per-tail / tails-per-head statistics (Wang et al. 2014),
// which reduces false negatives on 1-to-n / n-to-1 relations.

#ifndef KGC_MODELS_TRAINER_H_
#define KGC_MODELS_TRAINER_H_

#include "kg/dataset.h"
#include "models/model.h"

namespace kgc {

struct TrainOptions {
  int epochs = 40;
  /// Negatives sampled per positive.
  int negatives = 2;
  /// Bernoulli (relation-aware) corruption side selection; uniform if false.
  bool bernoulli = true;
  uint64_t seed = 13;
  /// Log epoch losses via LogInfo.
  bool verbose = false;

  /// When set (and checkpoint_every > 0), TrainModel writes an atomic,
  /// checksummed snapshot of the complete training state — model
  /// parameters, optimizer accumulators, RNG state, shuffle order, epoch
  /// counter — to this path every checkpoint_every epochs, resumes from it
  /// if it already exists, and deletes it once training completes. A run
  /// killed mid-training therefore restarts from the last completed
  /// checkpoint epoch and converges bit-exactly to the uninterrupted
  /// result.
  std::string checkpoint_path;
  /// Epochs between checkpoints; <= 0 disables checkpointing.
  int checkpoint_every = 0;
  /// Fault-injection hook: return right after this many epochs have
  /// completed this run (simulating a killed process, checkpoint left
  /// behind). <= 0 disables.
  int abort_after_epoch = 0;
};

struct TrainStats {
  /// Mean per-example loss of the last epoch.
  double final_loss = 0.0;
  double seconds = 0.0;  ///< wall time of this run (excludes pre-resume runs)
  int epochs_run = 0;    ///< total completed epochs, including resumed ones
  /// Epochs restored from a checkpoint (0 = fresh run).
  int resumed_from_epoch = 0;
  /// The phase deadline (util/deadline.h) expired mid-training. A resume
  /// checkpoint was saved first (when checkpointing is configured), so a
  /// retry continues from here bit-exactly. Only observable under a test
  /// deadline handler — the default handler exits the process.
  bool deadline_hit = false;
};

/// Trains `model` on the training split of `dataset` in place.
TrainStats TrainModel(KgeModel& model, const Dataset& dataset,
                      const TrainOptions& options);

/// Per-model-type training defaults tuned for the scaled synthetic
/// benchmarks (margin models: 1 negative; logistic models: several).
TrainOptions DefaultTrainOptions(ModelType type);

}  // namespace kgc

#endif  // KGC_MODELS_TRAINER_H_
