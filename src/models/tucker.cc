#include "models/tucker.h"

#include <cmath>

namespace kgc {

TuckER::TuckER(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTuckER, num_entities, num_relations, params),
      dim_e_(params.dim),
      dim_r_(params.dim2),
      entities_(num_entities, params.dim),
      relations_(num_relations, params.dim2),
      core_(1, params.dim * params.dim2 * params.dim) {
  KGC_CHECK_GT(dim_r_, 0);
  if (params.adagrad) {
    // The core tensor stays on plain SGD: its gradient step is applied with
    // direct array arithmetic in the throughput-critical inner loop.
    entities_.EnableAdaGrad();
    relations_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  const double stddev_e = 1.0 / std::sqrt(static_cast<double>(dim_e_));
  const double stddev_r = 1.0 / std::sqrt(static_cast<double>(dim_r_));
  entities_.InitNormal(rng, stddev_e);
  relations_.InitNormal(rng, stddev_r);
  core_.InitNormal(rng, 0.5);
}

void TuckER::ContractHeadRelation(std::span<const float> h,
                                  std::span<const float> r,
                                  std::span<float> u) const {
  const auto w = core_.Row(0);
  for (int32_t c = 0; c < dim_e_; ++c) u[static_cast<size_t>(c)] = 0.0f;
  for (int32_t a = 0; a < dim_e_; ++a) {
    const float ha = h[static_cast<size_t>(a)];
    if (ha == 0.0f) continue;
    for (int32_t b = 0; b < dim_r_; ++b) {
      const float hr = ha * r[static_cast<size_t>(b)];
      const size_t base = CoreIndex(a, b, 0);
      for (int32_t c = 0; c < dim_e_; ++c) {
        u[static_cast<size_t>(c)] += hr * w[base + static_cast<size_t>(c)];
      }
    }
  }
}

void TuckER::ContractRelationTail(std::span<const float> r,
                                  std::span<const float> t,
                                  std::span<float> v) const {
  const auto w = core_.Row(0);
  for (int32_t a = 0; a < dim_e_; ++a) {
    double sum = 0.0;
    for (int32_t b = 0; b < dim_r_; ++b) {
      const float rb = r[static_cast<size_t>(b)];
      const size_t base = CoreIndex(a, b, 0);
      double inner = 0.0;
      for (int32_t c = 0; c < dim_e_; ++c) {
        inner += static_cast<double>(w[base + static_cast<size_t>(c)]) *
                 t[static_cast<size_t>(c)];
      }
      sum += rb * inner;
    }
    v[static_cast<size_t>(a)] = static_cast<float>(sum);
  }
}

double TuckER::Score(EntityId h, RelationId r, EntityId t) const {
  std::vector<float> u(static_cast<size_t>(dim_e_));
  ContractHeadRelation(entities_.Row(h), relations_.Row(r), u);
  return Dot(u, entities_.Row(t));
}

void TuckER::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto rv = relations_.Row(triple.relation);
  const auto tv = entities_.Row(triple.tail);
  const float g = d_loss_d_score;
  const float decay = static_cast<float>(params_.l2_reg);

  // Gradients need the original values; compute all contractions first.
  // One fused pass over W per direction keeps this the throughput-critical
  // inner loop of TuckER training tight:
  //   inner_ab = sum_c W_abc t_c   ->  v_a = sum_b r_b inner_ab,
  //                                    q_b = sum_a h_a inner_ab,
  // and the core gradient W_abc -= lr g h_a r_b t_c is applied with direct
  // array arithmetic (the core never uses AdaGrad).
  std::vector<float> u(static_cast<size_t>(dim_e_));        // dScore/dt
  std::vector<float> v(static_cast<size_t>(dim_e_), 0.0f);  // dScore/dh
  std::vector<float> q(static_cast<size_t>(dim_r_), 0.0f);  // dScore/dr
  ContractHeadRelation(hv, rv, u);
  {
    const auto w = core_.Row(0);
    for (int32_t a = 0; a < dim_e_; ++a) {
      const float ha = hv[static_cast<size_t>(a)];
      double va = 0.0;
      for (int32_t b = 0; b < dim_r_; ++b) {
        const float* row = w.data() + CoreIndex(a, b, 0);
        double inner = 0.0;
        for (int32_t c = 0; c < dim_e_; ++c) {
          inner += static_cast<double>(row[c]) * tv[static_cast<size_t>(c)];
        }
        va += static_cast<double>(rv[static_cast<size_t>(b)]) * inner;
        q[static_cast<size_t>(b)] += static_cast<float>(ha * inner);
      }
      v[static_cast<size_t>(a)] = static_cast<float>(va);
    }
  }

  // Core gradient: dScore/dW_abc = h_a r_b t_c.
  {
    float* w = core_.mutable_data().data();
    for (int32_t a = 0; a < dim_e_; ++a) {
      const float ha = hv[static_cast<size_t>(a)];
      if (ha == 0.0f) continue;
      for (int32_t b = 0; b < dim_r_; ++b) {
        const float scale = lr * g * ha * rv[static_cast<size_t>(b)];
        float* row = w + CoreIndex(a, b, 0);
        for (int32_t c = 0; c < dim_e_; ++c) {
          row[c] -= scale * tv[static_cast<size_t>(c)];
        }
      }
    }
  }
  for (int32_t a = 0; a < dim_e_; ++a) {
    const size_t k = static_cast<size_t>(a);
    entities_.Update(triple.head, a, g * v[k] + decay * hv[k], lr);
    entities_.Update(triple.tail, a, g * u[k] + decay * tv[k], lr);
  }
  for (int32_t b = 0; b < dim_r_; ++b) {
    const size_t k = static_cast<size_t>(b);
    relations_.Update(triple.relation, b, g * q[k] + decay * rv[k], lr);
  }
}

void TuckER::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  std::vector<float> u(static_cast<size_t>(dim_e_));
  ContractHeadRelation(entities_.Row(h), relations_.Row(r), u);
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Dot(u, entities_.Row(e)));
  }
}

void TuckER::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  std::vector<float> v(static_cast<size_t>(dim_e_));
  ContractRelationTail(relations_.Row(r), entities_.Row(t), v);
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Dot(v, entities_.Row(e)));
  }
}

void TuckER::Serialize(BinaryWriter& writer) const {
  writer.WriteI32(dim_e_);
  writer.WriteI32(dim_r_);
  entities_.Serialize(writer);
  relations_.Serialize(writer);
  core_.Serialize(writer);
}

Status TuckER::Deserialize(BinaryReader& reader) {
  auto de = reader.ReadI32();
  if (!de.ok()) return de.status();
  auto dr = reader.ReadI32();
  if (!dr.ok()) return dr.status();
  dim_e_ = *de;
  dim_r_ = *dr;
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(core_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
