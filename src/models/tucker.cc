#include "models/tucker.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

TuckER::TuckER(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTuckER, num_entities, num_relations, params),
      dim_e_(params.dim),
      dim_r_(params.dim2),
      entities_(num_entities, params.dim),
      relations_(num_relations, params.dim2),
      core_(1, params.dim * params.dim2 * params.dim) {
  KGC_CHECK_GT(dim_r_, 0);
  if (params.adagrad) {
    // The core tensor stays on plain SGD: its gradient step is applied with
    // direct array arithmetic in the throughput-critical inner loop.
    entities_.EnableAdaGrad();
    relations_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  const double stddev_e = 1.0 / std::sqrt(static_cast<double>(dim_e_));
  const double stddev_r = 1.0 / std::sqrt(static_cast<double>(dim_r_));
  entities_.InitNormal(rng, stddev_e);
  relations_.InitNormal(rng, stddev_r);
  core_.InitNormal(rng, 0.5);
}

void TuckER::ContractHeadRelation(std::span<const float> h,
                                  std::span<const float> r,
                                  std::span<float> u) const {
  const auto w = core_.Row(0);
  const size_t de = static_cast<size_t>(dim_e_);
  for (size_t c = 0; c < de; ++c) u[c] = 0.0f;
  for (int32_t a = 0; a < dim_e_; ++a) {
    const float ha = h[static_cast<size_t>(a)];
    if (ha == 0.0f) continue;
    for (int32_t b = 0; b < dim_r_; ++b) {
      const float hr = ha * r[static_cast<size_t>(b)];
      vec::Axpy(hr, w.data() + CoreIndex(a, b, 0), u.data(), de);
    }
  }
}

void TuckER::ContractRelationTail(std::span<const float> r,
                                  std::span<const float> t,
                                  std::span<float> v) const {
  const auto w = core_.Row(0);
  const size_t de = static_cast<size_t>(dim_e_);
  const size_t dr = static_cast<size_t>(dim_r_);
  // For each a the b-rows of W are contiguous: one dot_rows sweep gives
  // inner_b = sum_c W_abc t_c, then v_a = r . inner.
  auto inner = vec::GetScratch(dr, 1);
  for (int32_t a = 0; a < dim_e_; ++a) {
    vec::Ops().dot_rows(t.data(), w.data() + CoreIndex(a, 0, 0), dr, de, de,
                        inner.data());
    v[static_cast<size_t>(a)] =
        static_cast<float>(vec::Dot(r.data(), inner.data(), dr));
  }
}

double TuckER::Score(EntityId h, RelationId r, EntityId t) const {
  auto u = vec::GetScratch(static_cast<size_t>(dim_e_), 0);
  ContractHeadRelation(entities_.Row(h), relations_.Row(r), u);
  const size_t de = static_cast<size_t>(dim_e_);
  float score = 0.0f;
  vec::Ops().dot_rows(u.data(), entities_.Row(t).data(), 1, de, de, &score);
  return static_cast<double>(score);
}

void TuckER::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto rv = relations_.Row(triple.relation);
  const auto tv = entities_.Row(triple.tail);
  const float g = d_loss_d_score;
  const float decay = static_cast<float>(params_.l2_reg);
  const size_t de = static_cast<size_t>(dim_e_);
  const size_t dr = static_cast<size_t>(dim_r_);

  // Gradients need the original values; compute all contractions first.
  // One fused pass over W per direction keeps this the throughput-critical
  // inner loop of TuckER training tight:
  //   inner_ab = sum_c W_abc t_c   ->  v_a = sum_b r_b inner_ab,
  //                                    q_b = sum_a h_a inner_ab,
  // and the core gradient W_abc -= lr g h_a r_b t_c is applied with direct
  // array arithmetic (the core never uses AdaGrad).
  auto u = vec::GetScratch(de, 0);  // dScore/dt
  auto v = vec::GetScratch(de, 2);  // dScore/dh
  auto q = vec::GetScratch(dr, 3);  // dScore/dr
  ContractHeadRelation(hv, rv, u);
  {
    const auto w = core_.Row(0);
    auto inner = vec::GetScratch(dr, 4);
    for (size_t b = 0; b < dr; ++b) q[b] = 0.0f;
    for (int32_t a = 0; a < dim_e_; ++a) {
      const float ha = hv[static_cast<size_t>(a)];
      vec::Ops().dot_rows(tv.data(), w.data() + CoreIndex(a, 0, 0), dr, de,
                          de, inner.data());
      v[static_cast<size_t>(a)] =
          static_cast<float>(vec::Dot(rv.data(), inner.data(), dr));
      for (size_t b = 0; b < dr; ++b) {
        q[b] += static_cast<float>(ha * inner[b]);
      }
    }
  }

  // Core gradient: dScore/dW_abc = h_a r_b t_c.
  {
    float* w = core_.mutable_data().data();
    for (int32_t a = 0; a < dim_e_; ++a) {
      const float ha = hv[static_cast<size_t>(a)];
      if (ha == 0.0f) continue;
      for (int32_t b = 0; b < dim_r_; ++b) {
        const float scale = lr * g * ha * rv[static_cast<size_t>(b)];
        vec::Axpy(-scale, tv.data(), w + CoreIndex(a, b, 0), de);
      }
    }
  }
  auto ge = vec::GetScratch(de, 5);
  for (size_t a = 0; a < de; ++a) ge[a] = g * v[a] + decay * hv[a];
  entities_.UpdateRow(triple.head, ge, lr);
  // The tail gradient reads the (possibly just-updated) head row alias.
  for (size_t a = 0; a < de; ++a) ge[a] = g * u[a] + decay * tv[a];
  entities_.UpdateRow(triple.tail, ge, lr);
  auto gr = vec::GetScratch(dr, 4);
  for (size_t b = 0; b < dr; ++b) gr[b] = g * q[b] + decay * rv[b];
  relations_.UpdateRow(triple.relation, gr, lr);
}

void TuckER::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t de = static_cast<size_t>(dim_e_);
  auto u = vec::GetScratch(de, 0);
  BuildSweepQuery(/*tails=*/true, r, h, u);
  vec::Ops().dot_rows(u.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), de, de, out.data());
}

void TuckER::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t de = static_cast<size_t>(dim_e_);
  auto v = vec::GetScratch(de, 0);
  BuildSweepQuery(/*tails=*/false, r, t, v);
  vec::Ops().dot_rows(v.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), de, de, out.data());
}

bool TuckER::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  (void)r;
  spec->kind = SweepKind::kDot;
  spec->rows = entities_.raw();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = static_cast<size_t>(dim_e_);
  spec->dim = spec->stride;
  spec->query_len = spec->stride;
  spec->stable_rows = true;
  return true;
}

void TuckER::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                             std::span<float> q) const {
  if (tails) {
    ContractHeadRelation(entities_.Row(anchor), relations_.Row(r), q);
  } else {
    // ContractRelationTail scratches slot 1 internally; q must not alias it.
    ContractRelationTail(relations_.Row(r), entities_.Row(anchor), q);
  }
}

void TuckER::Serialize(BinaryWriter& writer) const {
  writer.WriteI32(dim_e_);
  writer.WriteI32(dim_r_);
  entities_.Serialize(writer);
  relations_.Serialize(writer);
  core_.Serialize(writer);
}

Status TuckER::Deserialize(BinaryReader& reader) {
  auto de = reader.ReadI32();
  if (!de.ok()) return de.status();
  auto dr = reader.ReadI32();
  if (!dr.ok()) return dr.status();
  dim_e_ = *de;
  dim_r_ = *dr;
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(core_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
