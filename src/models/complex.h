// ComplEx (Trouillon et al., ICML 2016).
//
// DistMult over complex-valued embeddings:
//   score(h, r, t) = Re(<h, r, conj(t)>),
// which breaks DistMult's forced symmetry and can model anti-symmetric
// relations. Each embedding of complex dimension d is stored as 2d floats,
// reals first then imaginaries.

#ifndef KGC_MODELS_COMPLEX_H_
#define KGC_MODELS_COMPLEX_H_

#include "models/model.h"

namespace kgc {

class ComplEx final : public KgeModel {
 public:
  ComplEx(int32_t num_entities, int32_t num_relations,
          const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  EmbeddingTable entities_;   // [re_0..re_{d-1}, im_0..im_{d-1}]
  EmbeddingTable relations_;
};

}  // namespace kgc

#endif  // KGC_MODELS_COMPLEX_H_
