// Disk cache for trained models.
//
// Bench binaries share one cache directory so each (dataset, model, config)
// pair is trained exactly once across the whole harness. Files carry a magic
// header, format version and full shape information, plus the CRC-32
// integrity footer written by BinaryWriter::Flush; mismatches surface as
// Status errors, the corrupt file is quarantined to `<name>.corrupt`, and
// the caller retrains.

#ifndef KGC_MODELS_MODEL_STORE_H_
#define KGC_MODELS_MODEL_STORE_H_

#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "models/model.h"

namespace kgc {

class ModelStore {
 public:
  /// Creates the cache directory if needed. Falls back to a no-op store
  /// (all loads miss, all saves fail) if the directory cannot be created;
  /// `usable()` reports which mode the store is in.
  explicit ModelStore(std::string dir);

  /// Builds the canonical cache key for a (dataset, model, training) config.
  static std::string MakeKey(const std::string& dataset_name, ModelType type,
                             const ModelHyperParams& params, int epochs,
                             uint64_t train_seed);

  /// Loads a cached model; kNotFound if absent or incompatible. A corrupt
  /// file (bad checksum, truncated, malformed header) is moved aside to
  /// `<path>.corrupt` and reported as an error so the caller retrains; the
  /// key is remembered so the retrained Save counts as a regeneration
  /// (kgc.cache.regenerated) — the quarantine/regenerate pair in the run
  /// report shows every corruption was actually healed.
  StatusOr<std::unique_ptr<KgeModel>> Load(const std::string& key) const;

  Status Save(const std::string& key, const KgeModel& model) const;

  /// Cache file path for `key` (also the base of the `.ckpt` / `.corrupt`
  /// sibling names).
  std::string PathFor(const std::string& key) const;

  const std::string& dir() const { return dir_; }

  /// False when the cache directory could not be created: every load
  /// misses and every save fails, so callers retrain each run. Callers
  /// should surface this state to the user rather than silently degrade.
  bool usable() const { return usable_; }

 private:
  std::string dir_;
  bool usable_ = false;
  // Keys whose cache file was quarantined by Load and not yet re-Saved.
  // Mutable + mutex-guarded: Load is logically const but must remember the
  // quarantine so the healing Save can be counted.
  mutable std::mutex quarantine_mutex_;
  mutable std::set<std::string> quarantined_keys_;
};

}  // namespace kgc

#endif  // KGC_MODELS_MODEL_STORE_H_
