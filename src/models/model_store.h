// Disk cache for trained models.
//
// Bench binaries share one cache directory so each (dataset, model, config)
// pair is trained exactly once across the whole harness. Files carry a magic
// header, format version and full shape information; mismatches surface as
// Status errors and the caller retrains.

#ifndef KGC_MODELS_MODEL_STORE_H_
#define KGC_MODELS_MODEL_STORE_H_

#include <memory>
#include <string>

#include "models/model.h"

namespace kgc {

class ModelStore {
 public:
  /// Creates the cache directory if needed. Falls back to a no-op store
  /// (all loads miss) if the directory cannot be created.
  explicit ModelStore(std::string dir);

  /// Builds the canonical cache key for a (dataset, model, training) config.
  static std::string MakeKey(const std::string& dataset_name, ModelType type,
                             const ModelHyperParams& params, int epochs,
                             uint64_t train_seed);

  /// Loads a cached model; kNotFound if absent or incompatible.
  StatusOr<std::unique_ptr<KgeModel>> Load(const std::string& key) const;

  Status Save(const std::string& key, const KgeModel& model) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(const std::string& key) const;

  std::string dir_;
  bool usable_ = false;
};

}  // namespace kgc

#endif  // KGC_MODELS_MODEL_STORE_H_
