#include "models/model_store.h"

#include "obs/metrics.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgc {
namespace {

constexpr uint32_t kMagic = 0x4b47434dU;  // "KGCM"
// v2: CRC-32 integrity footer + optimizer state in embedding tables.
constexpr uint32_t kVersion = 2;

// Hard ceilings on declared shapes: far above any dataset this harness
// generates, far below anything that could make allocation itself fail.
constexpr int32_t kMaxEntities = 1 << 27;
constexpr int32_t kMaxRelations = 1 << 22;
constexpr int32_t kMaxDim = 1 << 16;

// Reads and validates the fixed-size header of a .kgcm payload, leaving the
// reader positioned at the first parameter table.
struct ModelHeader {
  ModelType type;
  int32_t num_entities;
  int32_t num_relations;
  ModelHyperParams params;
};

StatusOr<ModelHeader> ReadHeader(BinaryReader& reader,
                                 const std::string& key) {
  auto magic = reader.ReadU32();
  if (!magic.ok() || *magic != kMagic) {
    return Status::IoError("bad magic in model file: " + key);
  }
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Status::IoError(
        StrFormat("unsupported model file version %u in %s",
                  *version, key.c_str()));
  }
  auto type_raw = reader.ReadI32();
  if (!type_raw.ok()) return type_raw.status();
  auto num_entities = reader.ReadI32();
  if (!num_entities.ok()) return num_entities.status();
  auto num_relations = reader.ReadI32();
  if (!num_relations.ok()) return num_relations.status();

  ModelHeader header;
  auto dim = reader.ReadI32();
  if (!dim.ok()) return dim.status();
  auto dim2 = reader.ReadI32();
  if (!dim2.ok()) return dim2.status();
  auto lr = reader.ReadDouble();
  if (!lr.ok()) return lr.status();
  auto margin = reader.ReadDouble();
  if (!margin.ok()) return margin.status();
  auto loss = reader.ReadI32();
  if (!loss.ok()) return loss.status();

  if (*type_raw < 0 || *type_raw > static_cast<int32_t>(ModelType::kConvE)) {
    return Status::IoError("bad model type in file: " + key);
  }
  // Bounds-check the declared shape before anything is allocated from it: a
  // truncated or hostile header must not trigger huge allocations or
  // out-of-bounds reads downstream.
  if (*num_entities <= 0 || *num_entities > kMaxEntities ||
      *num_relations <= 0 || *num_relations > kMaxRelations ||
      *dim <= 0 || *dim > kMaxDim || *dim2 < 0 || *dim2 > kMaxDim) {
    return Status::IoError(
        StrFormat("implausible shape in model file %s: %d entities, "
                  "%d relations, dim %d/%d",
                  key.c_str(), *num_entities, *num_relations, *dim, *dim2));
  }
  // The payload holds at least the entity table (entities x dim floats,
  // behind a 16-byte table header); a file shorter than that declared its
  // shape dishonestly. Overflow-safe: both factors are bounded above.
  const uint64_t min_payload_bytes =
      static_cast<uint64_t>(*num_entities) * static_cast<uint64_t>(*dim) *
      sizeof(float);
  if (min_payload_bytes > reader.remaining()) {
    return Status::IoError(
        StrFormat("model file %s declares %d x %d entity table but only "
                  "%zu payload bytes remain",
                  key.c_str(), *num_entities, *dim, reader.remaining()));
  }

  header.type = static_cast<ModelType>(*type_raw);
  header.num_entities = *num_entities;
  header.num_relations = *num_relations;
  header.params.dim = *dim;
  header.params.dim2 = *dim2;
  header.params.learning_rate = *lr;
  header.params.margin = *margin;
  header.params.loss = static_cast<LossKind>(*loss);
  return header;
}

StatusOr<std::unique_ptr<KgeModel>> LoadFromPath(const std::string& path,
                                                 const std::string& key) {
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  auto header = ReadHeader(*reader, key);
  if (!header.ok()) return header.status();
  std::unique_ptr<KgeModel> model =
      CreateModel(header->type, header->num_entities, header->num_relations,
                  header->params);
  KGC_RETURN_IF_ERROR(model->Deserialize(*reader));
  return model;
}

}  // namespace

ModelStore::ModelStore(std::string dir) : dir_(std::move(dir)) {
  const Status status = MakeDirectories(dir_);
  usable_ = status.ok();
  if (!usable_) {
    // Counted as well as logged: an unusable store silently retrains
    // everything, and the run report must show that mode.
    obs::Registry::Get().GetCounter(obs::kCacheStoreUnusable).Increment();
    LogWarning("model cache disabled: %s", status.ToString().c_str());
  }
}

std::string ModelStore::MakeKey(const std::string& dataset_name,
                                ModelType type,
                                const ModelHyperParams& params, int epochs,
                                uint64_t train_seed) {
  std::string dataset = dataset_name;
  for (char& c : dataset) {
    if (c == '/' || c == ' ') c = '_';
  }
  return StrFormat("%s__%s_d%d_d2%d_lr%g_m%g_l%d_r%g_a%d_e%d_s%llu_t%llu",
                   dataset.c_str(), ModelTypeName(type), params.dim,
                   params.dim2, params.learning_rate, params.margin,
                   static_cast<int>(params.loss), params.l2_reg,
                   params.adagrad ? 1 : 0, epochs,
                   static_cast<unsigned long long>(params.seed),
                   static_cast<unsigned long long>(train_seed));
}

std::string ModelStore::PathFor(const std::string& key) const {
  return dir_ + "/" + key + ".kgcm";
}

StatusOr<std::unique_ptr<KgeModel>> ModelStore::Load(
    const std::string& key) const {
  static obs::Counter& hits =
      obs::Registry::Get().GetCounter(obs::kCacheModelHits);
  static obs::Counter& misses =
      obs::Registry::Get().GetCounter(obs::kCacheModelMisses);
  if (!usable_) {
    misses.Increment();
    return Status::NotFound("store unusable");
  }
  const std::string path = PathFor(key);
  auto model = LoadFromPath(path, key);
  if (!model.ok() && model.status().code() != StatusCode::kNotFound) {
    // Corrupt, truncated or incompatible file: move it aside so the caller
    // retrains into a fresh file and the bad bytes stay inspectable.
    QuarantineCorrupt(path, model.status());
    std::lock_guard<std::mutex> lock(quarantine_mutex_);
    quarantined_keys_.insert(key);
  }
  (model.ok() ? hits : misses).Increment();
  return model;
}

Status ModelStore::Save(const std::string& key, const KgeModel& model) const {
  if (!usable_) return Status::FailedPrecondition("store unusable");
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  writer.WriteI32(static_cast<int32_t>(model.type()));
  writer.WriteI32(model.num_entities());
  writer.WriteI32(model.num_relations());
  const ModelHyperParams& params = model.params();
  writer.WriteI32(params.dim);
  writer.WriteI32(params.dim2);
  writer.WriteDouble(params.learning_rate);
  writer.WriteDouble(params.margin);
  writer.WriteI32(static_cast<int32_t>(params.loss));
  model.Serialize(writer);
  const Status status = writer.Flush(PathFor(key));
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(quarantine_mutex_);
    if (quarantined_keys_.erase(key) > 0) {
      static obs::Counter& regenerated =
          obs::Registry::Get().GetCounter(obs::kCacheRegenerated);
      regenerated.Increment();
    }
  }
  return status;
}

}  // namespace kgc
