#include "models/model_store.h"

#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgc {
namespace {

constexpr uint32_t kMagic = 0x4b47434dU;  // "KGCM"
constexpr uint32_t kVersion = 1;

}  // namespace

ModelStore::ModelStore(std::string dir) : dir_(std::move(dir)) {
  const Status status = MakeDirectories(dir_);
  usable_ = status.ok();
  if (!usable_) {
    LogWarning("model cache disabled: %s", status.ToString().c_str());
  }
}

std::string ModelStore::MakeKey(const std::string& dataset_name,
                                ModelType type,
                                const ModelHyperParams& params, int epochs,
                                uint64_t train_seed) {
  std::string dataset = dataset_name;
  for (char& c : dataset) {
    if (c == '/' || c == ' ') c = '_';
  }
  return StrFormat("%s__%s_d%d_d2%d_lr%g_m%g_l%d_r%g_a%d_e%d_s%llu_t%llu",
                   dataset.c_str(), ModelTypeName(type), params.dim,
                   params.dim2, params.learning_rate, params.margin,
                   static_cast<int>(params.loss), params.l2_reg,
                   params.adagrad ? 1 : 0, epochs,
                   static_cast<unsigned long long>(params.seed),
                   static_cast<unsigned long long>(train_seed));
}

std::string ModelStore::PathFor(const std::string& key) const {
  return dir_ + "/" + key + ".kgcm";
}

StatusOr<std::unique_ptr<KgeModel>> ModelStore::Load(
    const std::string& key) const {
  if (!usable_) return Status::NotFound("store unusable");
  auto reader = BinaryReader::FromFile(PathFor(key));
  if (!reader.ok()) return reader.status();

  auto magic = reader->ReadU32();
  if (!magic.ok() || *magic != kMagic) {
    return Status::IoError("bad magic in model file: " + key);
  }
  auto version = reader->ReadU32();
  if (!version.ok() || *version != kVersion) {
    return Status::IoError("unsupported model file version: " + key);
  }
  auto type_raw = reader->ReadI32();
  if (!type_raw.ok()) return type_raw.status();
  auto num_entities = reader->ReadI32();
  if (!num_entities.ok()) return num_entities.status();
  auto num_relations = reader->ReadI32();
  if (!num_relations.ok()) return num_relations.status();

  ModelHyperParams params;
  auto dim = reader->ReadI32();
  if (!dim.ok()) return dim.status();
  auto dim2 = reader->ReadI32();
  if (!dim2.ok()) return dim2.status();
  auto lr = reader->ReadDouble();
  if (!lr.ok()) return lr.status();
  auto margin = reader->ReadDouble();
  if (!margin.ok()) return margin.status();
  auto loss = reader->ReadI32();
  if (!loss.ok()) return loss.status();
  params.dim = *dim;
  params.dim2 = *dim2;
  params.learning_rate = *lr;
  params.margin = *margin;
  params.loss = static_cast<LossKind>(*loss);

  if (*type_raw < 0 || *type_raw > static_cast<int32_t>(ModelType::kConvE)) {
    return Status::IoError("bad model type in file: " + key);
  }
  std::unique_ptr<KgeModel> model = CreateModel(
      static_cast<ModelType>(*type_raw), *num_entities, *num_relations,
      params);
  KGC_RETURN_IF_ERROR(model->Deserialize(*reader));
  return model;
}

Status ModelStore::Save(const std::string& key, const KgeModel& model) const {
  if (!usable_) return Status::FailedPrecondition("store unusable");
  BinaryWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  writer.WriteI32(static_cast<int32_t>(model.type()));
  writer.WriteI32(model.num_entities());
  writer.WriteI32(model.num_relations());
  const ModelHyperParams& params = model.params();
  writer.WriteI32(params.dim);
  writer.WriteI32(params.dim2);
  writer.WriteDouble(params.learning_rate);
  writer.WriteDouble(params.margin);
  writer.WriteI32(static_cast<int32_t>(params.loss));
  model.Serialize(writer);
  return writer.Flush(PathFor(key));
}

}  // namespace kgc
