#include "models/rescal.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

Rescal::Rescal(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kRescal, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      matrices_(num_relations, params.dim * params.dim) {
  if (params.adagrad) {
    entities_.EnableAdaGrad();
    matrices_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  entities_.InitNormal(rng, 1.0 / std::sqrt(static_cast<double>(params.dim)));
  matrices_.InitNormal(rng, 1.0 / static_cast<double>(params.dim));
}

double Rescal::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto w = matrices_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  // q = h^T W exactly as in ScoreTails, then score = q . t.
  auto q = vec::GetScratch(dim, 0);
  for (size_t j = 0; j < dim; ++j) q[j] = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    vec::Axpy(hv[i], w.data() + i * dim, q.data(), dim);
  }
  float score = 0.0f;
  vec::Ops().dot_rows(q.data(), entities_.Row(t).data(), 1, dim, dim, &score);
  return static_cast<double>(score);
}

void Rescal::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const size_t dim = static_cast<size_t>(params_.dim);
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto w = matrices_.Row(triple.relation);
  const auto& ops = vec::Ops();

  // Cache W t and W^T h before mutating anything.
  auto wt = vec::GetScratch(dim, 0);
  auto wth = vec::GetScratch(dim, 1);
  ops.dot_rows(tv.data(), w.data(), dim, dim, dim, wt.data());
  for (size_t j = 0; j < dim; ++j) wth[j] = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    vec::Axpy(hv[i], w.data() + i * dim, wth.data(), dim);
  }

  const float decay = static_cast<float>(params_.l2_reg);
  auto g = vec::GetScratch(dim, 2);
  for (size_t i = 0; i < dim; ++i) {
    g[i] = d_loss_d_score * wt[i] + decay * hv[i];
  }
  entities_.UpdateRow(triple.head, g, lr);
  // The tail gradient reads the (possibly just-updated) head row alias.
  for (size_t i = 0; i < dim; ++i) {
    g[i] = d_loss_d_score * wth[i] + decay * tv[i];
  }
  entities_.UpdateRow(triple.tail, g, lr);
  // Matrix gradient reads the entity rows after their updates (the
  // historical update order).
  auto gw = vec::GetScratch(dim * dim, 3);
  for (size_t i = 0; i < dim; ++i) {
    const size_t base = i * dim;
    for (size_t j = 0; j < dim; ++j) {
      gw[base + j] = d_loss_d_score * hv[i] * tv[j] + decay * w[base + j];
    }
  }
  matrices_.UpdateRow(triple.relation, gw, lr);
}

void Rescal::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), dim, dim,
                      out.data());
}

void Rescal::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), dim, dim,
                      out.data());
}

bool Rescal::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  (void)r;
  spec->kind = SweepKind::kDot;
  spec->rows = entities_.raw();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = static_cast<size_t>(params_.dim);
  spec->dim = spec->stride;
  spec->query_len = spec->stride;
  spec->stable_rows = true;
  return true;
}

void Rescal::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                             std::span<float> q) const {
  const size_t dim = static_cast<size_t>(params_.dim);
  const auto av = entities_.Row(anchor);
  const auto w = matrices_.Row(r);
  if (tails) {
    // q = h^T W, then score(e) = q . e.
    for (size_t j = 0; j < dim; ++j) q[j] = 0.0f;
    for (size_t i = 0; i < dim; ++i) {
      vec::Axpy(av[i], w.data() + i * dim, q.data(), dim);
    }
  } else {
    // q = W t, then score(e) = e . q.
    vec::Ops().dot_rows(av.data(), w.data(), dim, dim, dim, q.data());
  }
}

void Rescal::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  matrices_.Serialize(writer);
}

Status Rescal::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(matrices_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
