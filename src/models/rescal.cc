#include "models/rescal.h"

#include <cmath>

namespace kgc {

Rescal::Rescal(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kRescal, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      matrices_(num_relations, params.dim * params.dim) {
  if (params.adagrad) {
    entities_.EnableAdaGrad();
    matrices_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  entities_.InitNormal(rng, 1.0 / std::sqrt(static_cast<double>(params.dim)));
  matrices_.InitNormal(rng, 1.0 / static_cast<double>(params.dim));
}

double Rescal::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto tv = entities_.Row(t);
  const auto w = matrices_.Row(r);
  const int32_t dim = params_.dim;
  double sum = 0.0;
  for (int32_t i = 0; i < dim; ++i) {
    double row = 0.0;
    const size_t base = static_cast<size_t>(i * dim);
    for (int32_t j = 0; j < dim; ++j) {
      row += static_cast<double>(w[base + static_cast<size_t>(j)]) *
             tv[static_cast<size_t>(j)];
    }
    sum += static_cast<double>(hv[static_cast<size_t>(i)]) * row;
  }
  return sum;
}

void Rescal::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const int32_t dim = params_.dim;
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto w = matrices_.Row(triple.relation);

  // Cache W t and W^T h before mutating anything.
  std::vector<float> wt(static_cast<size_t>(dim), 0.0f);
  std::vector<float> wth(static_cast<size_t>(dim), 0.0f);
  for (int32_t i = 0; i < dim; ++i) {
    const size_t base = static_cast<size_t>(i * dim);
    for (int32_t j = 0; j < dim; ++j) {
      const float wij = w[base + static_cast<size_t>(j)];
      wt[static_cast<size_t>(i)] += wij * tv[static_cast<size_t>(j)];
      wth[static_cast<size_t>(j)] += wij * hv[static_cast<size_t>(i)];
    }
  }

  const float decay = static_cast<float>(params_.l2_reg);
  for (int32_t i = 0; i < dim; ++i) {
    const size_t k = static_cast<size_t>(i);
    entities_.Update(triple.head, i,
                     d_loss_d_score * wt[k] + decay * hv[k], lr);
    entities_.Update(triple.tail, i,
                     d_loss_d_score * wth[k] + decay * tv[k], lr);
  }
  for (int32_t i = 0; i < dim; ++i) {
    for (int32_t j = 0; j < dim; ++j) {
      const float gw = d_loss_d_score * hv[static_cast<size_t>(i)] *
                           tv[static_cast<size_t>(j)] +
                       decay * w[static_cast<size_t>(i * dim + j)];
      matrices_.Update(triple.relation, i * dim + j, gw, lr);
    }
  }
}

void Rescal::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const int32_t dim = params_.dim;
  const auto hv = entities_.Row(h);
  const auto w = matrices_.Row(r);
  // q = h^T W, then score(e) = q . e.
  std::vector<float> q(static_cast<size_t>(dim), 0.0f);
  for (int32_t i = 0; i < dim; ++i) {
    const size_t base = static_cast<size_t>(i * dim);
    const float hi = hv[static_cast<size_t>(i)];
    for (int32_t j = 0; j < dim; ++j) {
      q[static_cast<size_t>(j)] += hi * w[base + static_cast<size_t>(j)];
    }
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Dot(q, entities_.Row(e)));
  }
}

void Rescal::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const int32_t dim = params_.dim;
  const auto tv = entities_.Row(t);
  const auto w = matrices_.Row(r);
  // q = W t, then score(e) = e . q.
  std::vector<float> q(static_cast<size_t>(dim), 0.0f);
  for (int32_t i = 0; i < dim; ++i) {
    const size_t base = static_cast<size_t>(i * dim);
    double sum = 0.0;
    for (int32_t j = 0; j < dim; ++j) {
      sum += static_cast<double>(w[base + static_cast<size_t>(j)]) *
             tv[static_cast<size_t>(j)];
    }
    q[static_cast<size_t>(i)] = static_cast<float>(sum);
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    out[static_cast<size_t>(e)] = static_cast<float>(Dot(entities_.Row(e), q));
  }
}

void Rescal::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  matrices_.Serialize(writer);
}

Status Rescal::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(matrices_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
