#include "models/rotate.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

RotatE::RotatE(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kRotatE, num_entities, num_relations, params),
      entities_(num_entities, 2 * params.dim),
      phases_(num_relations, params.dim) {
  Rng rng(params.seed);
  entities_.InitUniform(rng, 0.5);
  // Phases uniform over the circle.
  auto& data = phases_.mutable_data();
  for (float& value : data) {
    value = static_cast<float>(rng.UniformDouble(-M_PI, M_PI));
  }
}

double RotatE::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto theta = phases_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  // Built exactly like the ScoreTails query so the two agree bit-exactly.
  auto q = vec::GetScratch(2 * d, 0);
  for (size_t j = 0; j < d; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    q[j] = hv[j] * c - hv[d + j] * s;
    q[d + j] = hv[j] * s + hv[d + j] * c;
  }
  float dist = 0.0f;
  vec::Ops().cabs_rows(q.data(), entities_.Row(t).data(), 1, 2 * d, d, &dist);
  return -static_cast<double>(dist);
}

void RotatE::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto theta = phases_.Row(triple.relation);
  const size_t d = static_cast<size_t>(params_.dim);
  const float g = d_loss_d_score;
  auto gh = vec::GetScratch(2 * d, 0);
  auto gt = vec::GetScratch(2 * d, 1);
  auto gtheta = vec::GetScratch(d, 2);
  for (size_t j = 0; j < d; ++j) {
    const double c = std::cos(theta[j]);
    const double s = std::sin(theta[j]);
    const double qx = hv[j] * c - hv[d + j] * s;  // (h o r)_re
    const double qy = hv[j] * s + hv[d + j] * c;  // (h o r)_im
    const double dx = qx - tv[j];
    const double dy = qy - tv[d + j];
    const double m = std::sqrt(dx * dx + dy * dy);
    if (m < 1e-12) {
      // Zero gradients leave the SGD update a bit-exact no-op, matching the
      // historical per-element skip.
      gh[j] = gh[d + j] = gt[j] = gt[d + j] = gtheta[j] = 0.0f;
      continue;
    }
    // score_j = -m, so dLoss/ddx = g * (-dx/m).
    const double gdx = -g * dx / m;
    const double gdy = -g * dy / m;
    // ddx/dh_re = c, ddx/dh_im = -s; ddy/dh_re = s, ddy/dh_im = c.
    gh[j] = static_cast<float>(gdx * c + gdy * s);
    gh[d + j] = static_cast<float>(-gdx * s + gdy * c);
    gt[j] = static_cast<float>(-gdx);
    gt[d + j] = static_cast<float>(-gdy);
    // ddx/dtheta = -qy ; ddy/dtheta = qx.
    gtheta[j] = static_cast<float>(gdx * -qy + gdy * qx);
  }
  entities_.UpdateRow(triple.head, gh, lr);
  entities_.UpdateRow(triple.tail, gt, lr);
  phases_.UpdateRow(triple.relation, gtheta, lr);
}

void RotatE::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t d = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(2 * d, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  vec::Ops().cabs_rows(q.data(), entities_.raw(),
                       static_cast<size_t>(num_entities_), 2 * d, d,
                       out.data());
  vec::Negate(out);
}

void RotatE::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t d = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(2 * d, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  vec::Ops().cabs_rows(q.data(), entities_.raw(),
                       static_cast<size_t>(num_entities_), 2 * d, d,
                       out.data());
  vec::Negate(out);
}

bool RotatE::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  (void)r;
  const size_t d = static_cast<size_t>(params_.dim);
  spec->kind = SweepKind::kCabs;
  spec->rows = entities_.raw();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = 2 * d;
  spec->dim = d;  // half_dim for the cabs kernel
  spec->query_len = 2 * d;
  spec->negate = true;
  spec->stable_rows = true;
  return true;
}

void RotatE::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                             std::span<float> q) const {
  const auto av = entities_.Row(anchor);
  const auto theta = phases_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  if (tails) {
    for (size_t j = 0; j < d; ++j) {
      const float c = std::cos(theta[j]);
      const float s = std::sin(theta[j]);
      q[j] = av[j] * c - av[d + j] * s;
      q[d + j] = av[j] * s + av[d + j] * c;
    }
  } else {
    // |h o r - t| = |h - t o r^{-1}| since |r_j| = 1: rotate t backwards.
    for (size_t j = 0; j < d; ++j) {
      const float c = std::cos(theta[j]);
      const float s = std::sin(theta[j]);
      q[j] = av[j] * c + av[d + j] * s;
      q[d + j] = -av[j] * s + av[d + j] * c;
    }
  }
}

void RotatE::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  phases_.Serialize(writer);
}

Status RotatE::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(phases_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
