#include "models/rotate.h"

#include <cmath>

namespace kgc {

RotatE::RotatE(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kRotatE, num_entities, num_relations, params),
      entities_(num_entities, 2 * params.dim),
      phases_(num_relations, params.dim) {
  Rng rng(params.seed);
  entities_.InitUniform(rng, 0.5);
  // Phases uniform over the circle.
  auto& data = phases_.mutable_data();
  for (float& value : data) {
    value = static_cast<float>(rng.UniformDouble(-M_PI, M_PI));
  }
}

double RotatE::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto tv = entities_.Row(t);
  const auto theta = phases_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double c = std::cos(theta[j]);
    const double s = std::sin(theta[j]);
    const double dx = hv[j] * c - hv[d + j] * s - tv[j];
    const double dy = hv[j] * s + hv[d + j] * c - tv[d + j];
    sum += std::sqrt(dx * dx + dy * dy);
  }
  return -sum;
}

void RotatE::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto theta = phases_.Row(triple.relation);
  const size_t d = static_cast<size_t>(params_.dim);
  const float g = d_loss_d_score;
  for (size_t j = 0; j < d; ++j) {
    const double c = std::cos(theta[j]);
    const double s = std::sin(theta[j]);
    const double qx = hv[j] * c - hv[d + j] * s;  // (h o r)_re
    const double qy = hv[j] * s + hv[d + j] * c;  // (h o r)_im
    const double dx = qx - tv[j];
    const double dy = qy - tv[d + j];
    const double m = std::sqrt(dx * dx + dy * dy);
    if (m < 1e-12) continue;
    // score_j = -m, so dLoss/ddx = g * (-dx/m).
    const double gdx = -g * dx / m;
    const double gdy = -g * dy / m;
    // ddx/dh_re = c, ddx/dh_im = -s; ddy/dh_re = s, ddy/dh_im = c.
    const float gh_re = static_cast<float>(gdx * c + gdy * s);
    const float gh_im = static_cast<float>(-gdx * s + gdy * c);
    const float gt_re = static_cast<float>(-gdx);
    const float gt_im = static_cast<float>(-gdy);
    // ddx/dtheta = -qy ; ddy/dtheta = qx.
    const float gtheta = static_cast<float>(gdx * -qy + gdy * qx);
    const int32_t jj = static_cast<int32_t>(j);
    entities_.Update(triple.head, jj, gh_re, lr);
    entities_.Update(triple.head, static_cast<int32_t>(d + j), gh_im, lr);
    entities_.Update(triple.tail, jj, gt_re, lr);
    entities_.Update(triple.tail, static_cast<int32_t>(d + j), gt_im, lr);
    phases_.Update(triple.relation, jj, gtheta, lr);
  }
}

void RotatE::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto hv = entities_.Row(h);
  const auto theta = phases_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  std::vector<float> q(2 * d);
  for (size_t j = 0; j < d; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    q[j] = hv[j] * c - hv[d + j] * s;
    q[d + j] = hv[j] * s + hv[d + j] * c;
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    const auto ev = entities_.Row(e);
    double sum = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double dx = q[j] - ev[j];
      const double dy = q[d + j] - ev[d + j];
      sum += std::sqrt(dx * dx + dy * dy);
    }
    out[static_cast<size_t>(e)] = static_cast<float>(-sum);
  }
}

void RotatE::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto tv = entities_.Row(t);
  const auto theta = phases_.Row(r);
  const size_t d = static_cast<size_t>(params_.dim);
  // |h o r - t| = |h - t o r^{-1}| since |r_j| = 1: rotate t backwards.
  std::vector<float> q(2 * d);
  for (size_t j = 0; j < d; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    q[j] = tv[j] * c + tv[d + j] * s;
    q[d + j] = -tv[j] * s + tv[d + j] * c;
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    const auto ev = entities_.Row(e);
    double sum = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double dx = ev[j] - q[j];
      const double dy = ev[d + j] - q[d + j];
      sum += std::sqrt(dx * dx + dy * dy);
    }
    out[static_cast<size_t>(e)] = static_cast<float>(-sum);
  }
}

void RotatE::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  phases_.Serialize(writer);
}

Status RotatE::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(phases_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
