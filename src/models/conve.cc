#include "models/conve.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

ConvE::ConvE(int32_t num_entities, int32_t num_relations,
             const ModelHyperParams& params)
    : KgeModel(ModelType::kConvE, num_entities, num_relations, params),
      grid_h_(params.dim / kGridWidth),
      out_h_(2 * (params.dim / kGridWidth) - kKernel + 1),
      out_w_(kGridWidth - kKernel + 1),
      feat_size_(kFilters * out_h_ * out_w_),
      entities_(num_entities, params.dim),
      relations_(2 * num_relations, params.dim),
      kernels_(kFilters, kKernel * kKernel),
      conv_bias_(1, kFilters),
      fc_(feat_size_, params.dim),
      fc_bias_(1, params.dim),
      entity_bias_(num_entities, 1) {
  KGC_CHECK_EQ(params.dim % kGridWidth, 0);
  KGC_CHECK_GT(out_h_, 0);
  if (params.adagrad) {
    entities_.EnableAdaGrad();
    relations_.EnableAdaGrad();
    kernels_.EnableAdaGrad();
    conv_bias_.EnableAdaGrad();
    fc_.EnableAdaGrad();
    fc_bias_.EnableAdaGrad();
    entity_bias_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitNormal(rng, stddev);
  relations_.InitNormal(rng, stddev);
  kernels_.InitNormal(rng, 0.2);
  fc_.InitNormal(rng, 1.0 / std::sqrt(static_cast<double>(feat_size_)));
  // Small positive conv bias keeps ReLU units alive early in training;
  // fc_bias_ and entity_bias_ start at zero.
  for (int32_t f = 0; f < kFilters; ++f) {
    conv_bias_.Row(0)[static_cast<size_t>(f)] = 0.05f;
  }
}

void ConvE::RunForward(EntityId e, int32_t relation_row, Forward& fwd) const {
  const int32_t dim = params_.dim;
  const int32_t in_h = 2 * grid_h_;
  const int32_t in_w = kGridWidth;
  fwd.input.resize(static_cast<size_t>(in_h * in_w));
  const auto ev = entities_.Row(e);
  const auto rv = relations_.Row(relation_row);
  for (int32_t j = 0; j < dim; ++j) {
    fwd.input[static_cast<size_t>(j)] = ev[static_cast<size_t>(j)];
    fwd.input[static_cast<size_t>(dim + j)] = rv[static_cast<size_t>(j)];
  }

  fwd.pre.resize(static_cast<size_t>(feat_size_));
  fwd.feat.resize(static_cast<size_t>(feat_size_));
  const auto cb = conv_bias_.Row(0);
  for (int32_t f = 0; f < kFilters; ++f) {
    const auto kernel = kernels_.Row(f);
    for (int32_t oy = 0; oy < out_h_; ++oy) {
      for (int32_t ox = 0; ox < out_w_; ++ox) {
        double sum = cb[static_cast<size_t>(f)];
        for (int32_t ky = 0; ky < kKernel; ++ky) {
          for (int32_t kx = 0; kx < kKernel; ++kx) {
            sum += static_cast<double>(
                       kernel[static_cast<size_t>(ky * kKernel + kx)]) *
                   fwd.input[static_cast<size_t>((oy + ky) * in_w + ox + kx)];
          }
        }
        const size_t idx =
            static_cast<size_t>((f * out_h_ + oy) * out_w_ + ox);
        fwd.pre[idx] = static_cast<float>(sum);
        fwd.feat[idx] = sum > 0 ? static_cast<float>(sum) : 0.0f;
      }
    }
  }

  fwd.z.resize(static_cast<size_t>(dim));
  fwd.v.resize(static_cast<size_t>(dim));
  const auto fb = fc_bias_.Row(0);
  for (int32_t d = 0; d < dim; ++d) {
    fwd.z[static_cast<size_t>(d)] = fb[static_cast<size_t>(d)];
  }
  for (int32_t i = 0; i < feat_size_; ++i) {
    const float fi = fwd.feat[static_cast<size_t>(i)];
    if (fi == 0.0f) continue;
    vec::Axpy(fi, fc_.Row(i).data(), fwd.z.data(), static_cast<size_t>(dim));
  }
  // The FC head stays linear: without batch-norm a second ReLU collapses
  // to dead units under SGD (documented deviation from the original).
  fwd.v = fwd.z;
}

double ConvE::Score(EntityId h, RelationId r, EntityId t) const {
  // The training score sums both reciprocal forms so that the gradient the
  // trainer derives from it is exactly what ApplyGradient applies (one Step
  // per form). Scoring only the forward form would leave the reciprocal
  // side without feedback and let it drift unboundedly through the shared
  // parameters.
  Forward fwd;
  const size_t dim = static_cast<size_t>(params_.dim);
  RunForward(h, r, fwd);
  float dot = 0.0f;
  const auto& ops = vec::Ops();
  ops.dot_rows(fwd.v.data(), entities_.Row(t).data(), 1, dim, dim, &dot);
  double score = static_cast<double>(dot) + entity_bias_.Row(t)[0];
  RunForward(t, num_relations_ + r, fwd);
  ops.dot_rows(fwd.v.data(), entities_.Row(h).data(), 1, dim, dim, &dot);
  score += static_cast<double>(dot) + entity_bias_.Row(h)[0];
  return score;
}

void ConvE::Step(EntityId e_in, int32_t relation_row, EntityId e_out, float g,
                 float lr) {
  Forward fwd;
  RunForward(e_in, relation_row, fwd);
  const int32_t dim = params_.dim;
  const auto out_v = entities_.Row(e_out);

  const float decay = static_cast<float>(params_.l2_reg);

  // dLoss/dz = dLoss/dv = g * e_out (linear FC head).
  std::vector<float> gz(static_cast<size_t>(dim));
  for (int32_t d = 0; d < dim; ++d) {
    const size_t k = static_cast<size_t>(d);
    gz[k] = g * out_v[k];
  }
  // Output entity & bias (weight-decayed: the dense stack otherwise drifts
  // without batch-norm).
  for (int32_t d = 0; d < dim; ++d) {
    const size_t k = static_cast<size_t>(d);
    entities_.Update(e_out, d, g * fwd.v[k] + decay * out_v[k], lr);
  }
  entity_bias_.Update(e_out, 0, g, lr);

  // FC layer: z = fc^T feat + b.
  std::vector<float> gfeat(static_cast<size_t>(feat_size_), 0.0f);
  for (int32_t i = 0; i < feat_size_; ++i) {
    const float fi = fwd.feat[static_cast<size_t>(i)];
    const auto w = fc_.Row(i);
    float acc = 0.0f;
    for (int32_t d = 0; d < dim; ++d) {
      const size_t k = static_cast<size_t>(d);
      acc += w[k] * gz[k];
      fc_.Update(i, d, fi * gz[k] + decay * w[k], lr);
    }
    gfeat[static_cast<size_t>(i)] = acc;
  }
  for (int32_t d = 0; d < dim; ++d) {
    fc_bias_.Update(0, d, gz[static_cast<size_t>(d)], lr);
  }

  // Conv layer.
  const int32_t in_h = 2 * grid_h_;
  const int32_t in_w = kGridWidth;
  std::vector<float> ginput(static_cast<size_t>(in_h * in_w), 0.0f);
  for (int32_t f = 0; f < kFilters; ++f) {
    const auto kernel = kernels_.Row(f);
    float gbias = 0.0f;
    for (int32_t oy = 0; oy < out_h_; ++oy) {
      for (int32_t ox = 0; ox < out_w_; ++ox) {
        const size_t idx =
            static_cast<size_t>((f * out_h_ + oy) * out_w_ + ox);
        if (fwd.pre[idx] <= 0) continue;
        const float gpre = gfeat[idx];
        if (gpre == 0.0f) continue;
        gbias += gpre;
        for (int32_t ky = 0; ky < kKernel; ++ky) {
          for (int32_t kx = 0; kx < kKernel; ++kx) {
            const size_t in_idx =
                static_cast<size_t>((oy + ky) * in_w + ox + kx);
            // Propagate through the pre-update kernel value, then step it.
            ginput[in_idx] += gpre * kernel[static_cast<size_t>(
                                          ky * kKernel + kx)];
            kernels_.Update(f, ky * kKernel + kx,
                            gpre * fwd.input[in_idx], lr);
          }
        }
      }
    }
    conv_bias_.Update(0, f, gbias, lr);
  }

  // Input grid gradients flow to the input entity (top half) and the
  // relation embedding (bottom half).
  for (int32_t j = 0; j < dim; ++j) {
    entities_.Update(e_in, j, ginput[static_cast<size_t>(j)], lr);
    relations_.Update(relation_row, j, ginput[static_cast<size_t>(dim + j)],
                      lr);
  }
}

void ConvE::ApplyGradient(const Triple& triple, float d_loss_d_score,
                          float lr) {
  // Reciprocal training: each example trains both directions.
  Step(triple.head, triple.relation, triple.tail, d_loss_d_score, lr);
  Step(triple.tail, num_relations_ + triple.relation, triple.head,
       d_loss_d_score, lr);
}

void ConvE::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  const size_t n = static_cast<size_t>(num_entities_);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(), n, dim, dim, out.data());
  // entity_bias_ is an (num_entities x 1) table, i.e. one contiguous array.
  vec::Axpy(1.0f, entity_bias_.raw(), out.data(), n);
}

void ConvE::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  const size_t n = static_cast<size_t>(num_entities_);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(), n, dim, dim, out.data());
  vec::Axpy(1.0f, entity_bias_.raw(), out.data(), n);
}

bool ConvE::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  (void)r;
  spec->kind = SweepKind::kDot;
  spec->rows = entities_.raw();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = static_cast<size_t>(params_.dim);
  spec->dim = spec->stride;
  spec->query_len = spec->stride;
  spec->bias = entity_bias_.raw();
  spec->stable_rows = true;
  return true;
}

void ConvE::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                            std::span<float> q) const {
  Forward fwd;
  RunForward(anchor, tails ? r : num_relations_ + r, fwd);
  for (size_t j = 0; j < fwd.v.size(); ++j) q[j] = fwd.v[j];
}

void ConvE::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
  kernels_.Serialize(writer);
  conv_bias_.Serialize(writer);
  fc_.Serialize(writer);
  fc_bias_.Serialize(writer);
  entity_bias_.Serialize(writer);
}

Status ConvE::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(kernels_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(conv_bias_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(fc_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(fc_bias_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(entity_bias_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
