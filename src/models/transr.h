// TransR (Lin et al., AAAI 2015).
//
// Entities live in R^d, relations in R^k; each relation owns a projection
// matrix M_r in R^{k x d}: score(h, r, t) = -||M_r h + r - M_r t||.
// This build uses k = d to keep parameter counts comparable.

#ifndef KGC_MODELS_TRANSR_H_
#define KGC_MODELS_TRANSR_H_

#include <vector>

#include "models/model.h"

namespace kgc {

class TransR final : public KgeModel {
 public:
  TransR(int32_t num_entities, int32_t num_relations,
         const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;
  void OnEpochBegin(int epoch) override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  // out = M_r e.
  void ProjectEntity(RelationId r, EntityId e, std::span<float> out) const;

  // Evaluation-time cache of all projected entities for one relation; the
  // ranker visits triples grouped by relation, so hits dominate. Invalidated
  // by any parameter update (version counter). The cache lives in
  // thread-local storage (keyed by owning model) so concurrent ranking
  // shards — each of which walks its own contiguous run of relation groups —
  // amortize independently without racing on shared state.
  struct ProjectionCache {
    uint64_t owner = 0;  // instance_id_ of the model that filled the cache
    RelationId relation = -1;
    uint64_t version = 0;
    std::vector<float> projected;  // num_entities x dim
  };
  const std::vector<float>& ProjectedEntities(RelationId r) const;

  EmbeddingTable entities_;
  EmbeddingTable relations_;
  EmbeddingTable matrices_;  // one d*d row-major matrix per relation
  uint64_t version_ = 1;
  // Process-unique id: keys the thread-local projection caches so a model
  // allocated at a recycled address can never be served another's entries.
  const uint64_t instance_id_;
};

}  // namespace kgc

#endif  // KGC_MODELS_TRANSR_H_
