#include "models/trainer.h"

#include <cmath>

#include "kg/relation_stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace kgc {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double Softplus(double x) {
  // Numerically stable log(1 + exp(x)).
  return x > 0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
}

// Samples a corruption of `positive` not present in `train`.
Triple SampleNegative(const Triple& positive, const TripleStore& train,
                      double p_corrupt_head, Rng& rng) {
  const int32_t num_entities = train.num_entities();
  for (int attempt = 0; attempt < 8; ++attempt) {
    Triple corrupted = positive;
    const EntityId replacement =
        static_cast<EntityId>(rng.Uniform(static_cast<uint64_t>(num_entities)));
    if (rng.Bernoulli(p_corrupt_head)) {
      corrupted.head = replacement;
    } else {
      corrupted.tail = replacement;
    }
    if (corrupted != positive && !train.Contains(corrupted)) return corrupted;
  }
  // Statistically unreachable on non-degenerate graphs; fall back to an
  // unchecked corruption.
  Triple corrupted = positive;
  corrupted.tail = static_cast<EntityId>(
      rng.Uniform(static_cast<uint64_t>(num_entities)));
  return corrupted;
}

}  // namespace

TrainStats TrainModel(KgeModel& model, const Dataset& dataset,
                      const TrainOptions& options) {
  Stopwatch watch;
  const TripleStore& train = dataset.train_store();
  const TripleList& triples = dataset.train();
  KGC_CHECK(!triples.empty());

  // Per-relation head-corruption probability tph / (tph + hpt).
  std::vector<double> p_head(static_cast<size_t>(dataset.num_relations()),
                             0.5);
  if (options.bernoulli) {
    for (RelationId r = 0; r < dataset.num_relations(); ++r) {
      const RelationStats stats = ComputeRelationStats(train, r);
      const double denom = stats.tails_per_head + stats.heads_per_tail;
      if (denom > 0) {
        p_head[static_cast<size_t>(r)] = stats.tails_per_head / denom;
      }
    }
  }

  Rng rng(options.seed);
  const float lr = static_cast<float>(model.params().learning_rate);
  const bool margin_loss =
      model.params().loss == LossKind::kMarginRanking;
  const double margin = model.params().margin;

  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  TrainStats stats;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    model.OnEpochBegin(epoch);
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t examples = 0;
    for (size_t idx : order) {
      const Triple& positive = triples[idx];
      const double p = p_head[static_cast<size_t>(positive.relation)];
      if (margin_loss) {
        for (int n = 0; n < options.negatives; ++n) {
          const Triple negative = SampleNegative(positive, train, p, rng);
          const double s_pos = model.Score(positive.head, positive.relation,
                                           positive.tail);
          const double s_neg = model.Score(negative.head, negative.relation,
                                           negative.tail);
          const double violation = margin - s_pos + s_neg;
          ++examples;
          if (violation > 0) {
            epoch_loss += violation;
            model.ApplyGradient(positive, -1.0f, lr);
            model.ApplyGradient(negative, 1.0f, lr);
          }
        }
      } else {
        const double s_pos =
            model.Score(positive.head, positive.relation, positive.tail);
        epoch_loss += Softplus(-s_pos);
        ++examples;
        model.ApplyGradient(positive, static_cast<float>(-Sigmoid(-s_pos)),
                            lr);
        for (int n = 0; n < options.negatives; ++n) {
          const Triple negative = SampleNegative(positive, train, p, rng);
          const double s_neg = model.Score(negative.head, negative.relation,
                                           negative.tail);
          epoch_loss += Softplus(s_neg);
          ++examples;
          model.ApplyGradient(negative, static_cast<float>(Sigmoid(s_neg)),
                              lr);
        }
      }
    }
    stats.final_loss = examples > 0 ? epoch_loss / static_cast<double>(examples)
                                    : 0.0;
    stats.epochs_run = epoch + 1;
    if (options.verbose && (epoch % 5 == 0 || epoch + 1 == options.epochs)) {
      LogInfo("%s epoch %d/%d loss %.4f (%.1fs)", model.name(), epoch + 1,
              options.epochs, stats.final_loss, watch.ElapsedSeconds());
    }
  }
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

TrainOptions DefaultTrainOptions(ModelType type) {
  TrainOptions options;
  switch (type) {
    case ModelType::kTransE:
    case ModelType::kTransH:
    case ModelType::kTransD:
      options.epochs = 60;
      options.negatives = 1;
      break;
    case ModelType::kTransR:
      options.epochs = 40;
      options.negatives = 1;
      break;
    case ModelType::kRotatE:
      options.epochs = 50;
      options.negatives = 2;
      break;
    case ModelType::kRescal:
      options.epochs = 40;
      options.negatives = 4;
      break;
    case ModelType::kDistMult:
    case ModelType::kComplEx:
      options.epochs = 50;
      options.negatives = 4;
      break;
    case ModelType::kTuckER:
      options.epochs = 20;
      options.negatives = 2;
      break;
    case ModelType::kConvE:
      options.epochs = 12;
      options.negatives = 2;
      break;
  }
  return options;
}

}  // namespace kgc
