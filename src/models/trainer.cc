#include "models/trainer.h"

#include <cmath>
#include <cstdio>

#include "kg/relation_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace kgc {
namespace {

constexpr uint32_t kCkptMagic = 0x4b47434bU;  // "KGCK"
constexpr uint32_t kCkptVersion = 1;

// Everything the loop below needs to continue exactly where a killed run
// stopped: progress counters plus the stochastic state (RNG + the shuffle
// permutation, which is reshuffled in place and so carries history).
struct ResumePoint {
  int completed_epochs = 0;
  double last_loss = 0.0;
  Rng::State rng;
  std::vector<size_t> order;
};

Status SaveCheckpoint(const KgeModel& model, const TrainOptions& options,
                      int completed_epochs, double last_loss, const Rng& rng,
                      const std::vector<size_t>& order) {
  BinaryWriter writer;
  writer.WriteU32(kCkptMagic);
  writer.WriteU32(kCkptVersion);
  writer.WriteI32(static_cast<int32_t>(model.type()));
  writer.WriteI32(model.num_entities());
  writer.WriteI32(model.num_relations());
  writer.WriteI32(options.epochs);
  writer.WriteI32(options.negatives);
  writer.WriteU32(options.bernoulli ? 1 : 0);
  writer.WriteU64(options.seed);
  writer.WriteI32(completed_epochs);
  writer.WriteDouble(last_loss);
  const Rng::State rng_state = rng.state();
  for (uint64_t word : rng_state.words) writer.WriteU64(word);
  writer.WriteU32(rng_state.has_cached_normal ? 1 : 0);
  writer.WriteDouble(rng_state.cached_normal);
  writer.WriteU64(order.size());
  for (size_t index : order) writer.WriteU64(index);
  model.Serialize(writer);
  return writer.Flush(options.checkpoint_path);
}

// Restores `model` and the stochastic state from options.checkpoint_path.
// Any mismatch with the current configuration is an error: the checkpoint
// belongs to a different run and must not silently steer this one.
StatusOr<ResumePoint> LoadCheckpoint(KgeModel& model,
                                     const TrainOptions& options,
                                     size_t num_triples) {
  auto reader = BinaryReader::FromFile(options.checkpoint_path);
  if (!reader.ok()) return reader.status();

  auto magic = reader->ReadU32();
  if (!magic.ok() || *magic != kCkptMagic) {
    return Status::IoError("bad checkpoint magic: " + options.checkpoint_path);
  }
  auto version = reader->ReadU32();
  if (!version.ok() || *version != kCkptVersion) {
    return Status::IoError("unsupported checkpoint version: " +
                           options.checkpoint_path);
  }
  auto type_raw = reader->ReadI32();
  if (!type_raw.ok()) return type_raw.status();
  auto num_entities = reader->ReadI32();
  if (!num_entities.ok()) return num_entities.status();
  auto num_relations = reader->ReadI32();
  if (!num_relations.ok()) return num_relations.status();
  auto epochs = reader->ReadI32();
  if (!epochs.ok()) return epochs.status();
  auto negatives = reader->ReadI32();
  if (!negatives.ok()) return negatives.status();
  auto bernoulli = reader->ReadU32();
  if (!bernoulli.ok()) return bernoulli.status();
  auto seed = reader->ReadU64();
  if (!seed.ok()) return seed.status();
  if (*type_raw != static_cast<int32_t>(model.type()) ||
      *num_entities != model.num_entities() ||
      *num_relations != model.num_relations() ||
      *epochs != options.epochs || *negatives != options.negatives ||
      (*bernoulli != 0) != options.bernoulli || *seed != options.seed) {
    return Status::FailedPrecondition(
        "checkpoint does not match the current training configuration: " +
        options.checkpoint_path);
  }

  ResumePoint resume;
  auto completed = reader->ReadI32();
  if (!completed.ok()) return completed.status();
  if (*completed < 1 || *completed > options.epochs) {
    return Status::IoError("implausible epoch count in checkpoint: " +
                           options.checkpoint_path);
  }
  resume.completed_epochs = *completed;
  auto loss = reader->ReadDouble();
  if (!loss.ok()) return loss.status();
  resume.last_loss = *loss;

  for (uint64_t& word : resume.rng.words) {
    auto value = reader->ReadU64();
    if (!value.ok()) return value.status();
    word = *value;
  }
  auto has_cached = reader->ReadU32();
  if (!has_cached.ok()) return has_cached.status();
  resume.rng.has_cached_normal = (*has_cached != 0);
  auto cached = reader->ReadDouble();
  if (!cached.ok()) return cached.status();
  resume.rng.cached_normal = *cached;

  auto order_size = reader->ReadU64();
  if (!order_size.ok()) return order_size.status();
  if (*order_size != num_triples ||
      *order_size > reader->remaining() / sizeof(uint64_t)) {
    return Status::IoError("shuffle order size mismatch in checkpoint: " +
                           options.checkpoint_path);
  }
  resume.order.resize(static_cast<size_t>(*order_size));
  for (size_t& index : resume.order) {
    auto value = reader->ReadU64();
    if (!value.ok()) return value.status();
    if (*value >= num_triples) {
      return Status::IoError("shuffle order index out of range in checkpoint: " +
                             options.checkpoint_path);
    }
    index = static_cast<size_t>(*value);
  }
  // Validate the parameter payload against a scratch model first so a
  // malformed (but checksum-valid) file cannot leave `model` half
  // overwritten — the caller falls back to training from scratch and must
  // start from its pristine initialization.
  BinaryReader payload = *reader;
  std::unique_ptr<KgeModel> scratch =
      CreateModel(model.type(), model.num_entities(), model.num_relations(),
                  model.params());
  KGC_RETURN_IF_ERROR(scratch->Deserialize(*reader));
  KGC_RETURN_IF_ERROR(model.Deserialize(payload));
  return resume;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double Softplus(double x) {
  // Numerically stable log(1 + exp(x)).
  return x > 0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
}

// Samples a corruption of `positive` not present in `train`.
Triple SampleNegative(const Triple& positive, const TripleStore& train,
                      double p_corrupt_head, Rng& rng) {
  const int32_t num_entities = train.num_entities();
  for (int attempt = 0; attempt < 8; ++attempt) {
    Triple corrupted = positive;
    const EntityId replacement =
        static_cast<EntityId>(rng.Uniform(static_cast<uint64_t>(num_entities)));
    if (rng.Bernoulli(p_corrupt_head)) {
      corrupted.head = replacement;
    } else {
      corrupted.tail = replacement;
    }
    if (corrupted != positive && !train.Contains(corrupted)) return corrupted;
  }
  // Statistically unreachable on non-degenerate graphs; fall back to an
  // unchecked corruption.
  Triple corrupted = positive;
  corrupted.tail = static_cast<EntityId>(
      rng.Uniform(static_cast<uint64_t>(num_entities)));
  return corrupted;
}

}  // namespace

TrainStats TrainModel(KgeModel& model, const Dataset& dataset,
                      const TrainOptions& options) {
  Stopwatch watch;
  const TripleStore& train = dataset.train_store();
  const TripleList& triples = dataset.train();
  KGC_CHECK(!triples.empty());

  DeadlinePhase deadline_phase("train");
  obs::TraceSpan train_span("train_model");
  train_span.AddArgStr("model", model.name());
  train_span.AddArgStr("dataset", dataset.name().c_str());
  train_span.AddArgInt("epochs", options.epochs);
  static obs::Counter& epochs_counter =
      obs::Registry::Get().GetCounter(obs::kTrainerEpochs);
  static obs::Counter& examples_counter =
      obs::Registry::Get().GetCounter(obs::kTrainerExamples);
  static obs::Counter& negatives_counter =
      obs::Registry::Get().GetCounter(obs::kTrainerNegatives);
  static obs::Counter& checkpoint_saves =
      obs::Registry::Get().GetCounter(obs::kTrainerCheckpointSaves);
  static obs::Counter& resumes =
      obs::Registry::Get().GetCounter(obs::kTrainerResumes);
  static obs::Gauge& last_loss =
      obs::Registry::Get().GetGauge(obs::kTrainerLastLoss);
  static obs::HdrHistogram& epoch_seconds =
      obs::Registry::Get().GetDurationHistogram(obs::kTrainerEpochSeconds);

  // Per-relation head-corruption probability tph / (tph + hpt).
  std::vector<double> p_head(static_cast<size_t>(dataset.num_relations()),
                             0.5);
  if (options.bernoulli) {
    for (RelationId r = 0; r < dataset.num_relations(); ++r) {
      const RelationStats stats = ComputeRelationStats(train, r);
      const double denom = stats.tails_per_head + stats.heads_per_tail;
      if (denom > 0) {
        p_head[static_cast<size_t>(r)] = stats.tails_per_head / denom;
      }
    }
  }

  Rng rng(options.seed);
  const float lr = static_cast<float>(model.params().learning_rate);
  const bool margin_loss =
      model.params().loss == LossKind::kMarginRanking;
  const double margin = model.params().margin;

  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  TrainStats stats;
  int start_epoch = 0;
  const bool checkpointing =
      !options.checkpoint_path.empty() && options.checkpoint_every > 0;
  if (checkpointing && FileExists(options.checkpoint_path)) {
    auto resume = LoadCheckpoint(model, options, triples.size());
    if (resume.ok()) {
      start_epoch = resume->completed_epochs;
      stats.final_loss = resume->last_loss;
      stats.epochs_run = resume->completed_epochs;
      stats.resumed_from_epoch = resume->completed_epochs;
      rng.set_state(resume->rng);
      order = std::move(resume->order);
      resumes.Increment();
      LogInfo("%s: resuming from checkpoint at epoch %d/%d", model.name(),
              start_epoch, options.epochs);
    } else {
      // Never let a bad checkpoint poison the run: quarantine it and train
      // from scratch. (A config mismatch means the file belongs to a
      // different run; corruption means a torn or rotted write.)
      QuarantineCorrupt(options.checkpoint_path, resume.status());
    }
  }

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    obs::TraceSpan epoch_span("train_epoch");
    epoch_span.AddArgInt("epoch", epoch);
    Stopwatch epoch_watch;
    model.OnEpochBegin(epoch);
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t examples = 0;
    for (size_t idx : order) {
      const Triple& positive = triples[idx];
      const double p = p_head[static_cast<size_t>(positive.relation)];
      if (margin_loss) {
        for (int n = 0; n < options.negatives; ++n) {
          const Triple negative = SampleNegative(positive, train, p, rng);
          const double s_pos = model.Score(positive.head, positive.relation,
                                           positive.tail);
          const double s_neg = model.Score(negative.head, negative.relation,
                                           negative.tail);
          const double violation = margin - s_pos + s_neg;
          ++examples;
          if (violation > 0) {
            epoch_loss += violation;
            model.ApplyGradient(positive, -1.0f, lr);
            model.ApplyGradient(negative, 1.0f, lr);
          }
        }
      } else {
        const double s_pos =
            model.Score(positive.head, positive.relation, positive.tail);
        epoch_loss += Softplus(-s_pos);
        ++examples;
        model.ApplyGradient(positive, static_cast<float>(-Sigmoid(-s_pos)),
                            lr);
        for (int n = 0; n < options.negatives; ++n) {
          const Triple negative = SampleNegative(positive, train, p, rng);
          const double s_neg = model.Score(negative.head, negative.relation,
                                           negative.tail);
          epoch_loss += Softplus(s_neg);
          ++examples;
          model.ApplyGradient(negative, static_cast<float>(Sigmoid(s_neg)),
                              lr);
        }
      }
    }
    stats.final_loss = examples > 0 ? epoch_loss / static_cast<double>(examples)
                                    : 0.0;
    stats.epochs_run = epoch + 1;
    epochs_counter.Increment();
    examples_counter.Add(examples);
    // Every positive draws options.negatives corruptions in both loss modes.
    negatives_counter.Add(order.size() *
                          static_cast<size_t>(options.negatives));
    last_loss.Set(stats.final_loss);
    epoch_seconds.Observe(epoch_watch.ElapsedSeconds());
    if (options.verbose && (epoch % 5 == 0 || epoch + 1 == options.epochs)) {
      LogInfo("%s epoch %d/%d loss %.4f (%.1fs)", model.name(), epoch + 1,
              options.epochs, stats.final_loss, watch.ElapsedSeconds());
    }
    const bool final_epoch = epoch + 1 == options.epochs;
    if (checkpointing && !final_epoch &&
        (epoch + 1) % options.checkpoint_every == 0) {
      const Status saved = SaveCheckpoint(model, options, epoch + 1,
                                          stats.final_loss, rng, order);
      if (saved.ok()) {
        checkpoint_saves.Increment();
      } else {
        // Checkpointing is best-effort: a failed snapshot only costs resume
        // granularity, never training correctness.
        LogWarning("checkpoint save failed: %s", saved.ToString().c_str());
      }
    }
    if (options.abort_after_epoch > 0 &&
        epoch + 1 - start_epoch >= options.abort_after_epoch) {
      stats.seconds = watch.ElapsedSeconds();
      return stats;  // simulated kill: checkpoint (if any) stays behind
    }
    // Cooperative watchdog: the end of an epoch is the trainer's phase
    // boundary. On expiry, persist a resume point at exactly this epoch
    // (the every-N schedule may not have) so the orderly timeout exit
    // loses nothing, then hand off to the deadline handler.
    if (PhaseCheck("train_epoch") && !final_epoch) {
      if (checkpointing) {
        const Status saved = SaveCheckpoint(model, options, epoch + 1,
                                            stats.final_loss, rng, order);
        if (saved.ok()) {
          checkpoint_saves.Increment();
        } else {
          LogWarning("deadline checkpoint save failed: %s",
                     saved.ToString().c_str());
        }
      }
      stats.deadline_hit = true;
      stats.seconds = watch.ElapsedSeconds();
      HandleDeadlineExpiry("train_epoch");
      return stats;  // only reached under a test deadline handler
    }
  }
  if (checkpointing) {
    std::remove(options.checkpoint_path.c_str());
  }
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

TrainOptions DefaultTrainOptions(ModelType type) {
  TrainOptions options;
  switch (type) {
    case ModelType::kTransE:
    case ModelType::kTransH:
    case ModelType::kTransD:
      options.epochs = 60;
      options.negatives = 1;
      break;
    case ModelType::kTransR:
      options.epochs = 40;
      options.negatives = 1;
      break;
    case ModelType::kRotatE:
      options.epochs = 50;
      options.negatives = 2;
      break;
    case ModelType::kRescal:
      options.epochs = 40;
      options.negatives = 4;
      break;
    case ModelType::kDistMult:
    case ModelType::kComplEx:
      options.epochs = 50;
      options.negatives = 4;
      break;
    case ModelType::kTuckER:
      options.epochs = 20;
      options.negatives = 2;
      break;
    case ModelType::kConvE:
      options.epochs = 12;
      options.negatives = 2;
      break;
  }
  return options;
}

}  // namespace kgc
