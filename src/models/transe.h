// TransE (Bordes et al., NeurIPS 2013).
//
// Entities and relations share one d-dimensional space; a relation is a
// translation: score(h, r, t) = -||h + r - t||  (L1 or L2).

#ifndef KGC_MODELS_TRANSE_H_
#define KGC_MODELS_TRANSE_H_

#include "models/model.h"

namespace kgc {

class TransE final : public KgeModel {
 public:
  TransE(int32_t num_entities, int32_t num_relations,
         const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;
  void OnEpochBegin(int epoch) override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

  const EmbeddingTable& entities() const { return entities_; }
  const EmbeddingTable& relations() const { return relations_; }

 private:
  EmbeddingTable entities_;
  EmbeddingTable relations_;
};

}  // namespace kgc

#endif  // KGC_MODELS_TRANSE_H_
