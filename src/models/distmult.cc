#include "models/distmult.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

DistMult::DistMult(int32_t num_entities, int32_t num_relations,
                   const ModelHyperParams& params)
    : KgeModel(ModelType::kDistMult, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      relations_(num_relations, params.dim) {
  if (params.adagrad) {
    entities_.EnableAdaGrad();
    relations_.EnableAdaGrad();
  }
  Rng rng(params.seed);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitNormal(rng, stddev);
  relations_.InitNormal(rng, stddev);
}

double DistMult::Score(EntityId h, RelationId r, EntityId t) const {
  // All-double triple product: rounding the h*r query to float (as the
  // sweeps do) would break the model's exact head/tail symmetry.
  const auto hv = entities_.Row(h);
  const auto rv = relations_.Row(r);
  const auto tv = entities_.Row(t);
  double sum = 0.0;
  for (int32_t j = 0; j < params_.dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    sum += static_cast<double>(hv[k]) * rv[k] * tv[k];
  }
  return sum;
}

void DistMult::ApplyGradient(const Triple& triple, float d_loss_d_score,
                             float lr) {
  const auto hv = entities_.Row(triple.head);
  const auto rv = relations_.Row(triple.relation);
  const auto tv = entities_.Row(triple.tail);
  const float decay = static_cast<float>(params_.l2_reg);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto gh = vec::GetScratch(dim, 0);
  auto gr = vec::GetScratch(dim, 1);
  auto gt = vec::GetScratch(dim, 2);
  for (size_t k = 0; k < dim; ++k) {
    gh[k] = d_loss_d_score * rv[k] * tv[k] + decay * hv[k];
    gr[k] = d_loss_d_score * hv[k] * tv[k] + decay * rv[k];
    gt[k] = d_loss_d_score * hv[k] * rv[k] + decay * tv[k];
  }
  entities_.UpdateRow(triple.head, gh, lr);
  relations_.UpdateRow(triple.relation, gr, lr);
  entities_.UpdateRow(triple.tail, gt, lr);
}

void DistMult::ScoreTails(EntityId h, RelationId r,
                          std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), dim, dim,
                      out.data());
}

void DistMult::ScoreHeads(RelationId r, EntityId t,
                          std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  vec::Ops().dot_rows(q.data(), entities_.raw(),
                      static_cast<size_t>(num_entities_), dim, dim,
                      out.data());
}

bool DistMult::DescribeSweep(bool tails, RelationId r,
                             SweepSpec* spec) const {
  (void)tails;
  (void)r;
  spec->kind = SweepKind::kDot;
  spec->rows = entities_.raw();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = static_cast<size_t>(params_.dim);
  spec->dim = spec->stride;
  spec->query_len = spec->stride;
  spec->stable_rows = true;
  return true;
}

void DistMult::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                               std::span<float> q) const {
  (void)tails;  // the h*r and t*r queries have the same form
  const auto av = entities_.Row(anchor);
  const auto rv = relations_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  for (size_t j = 0; j < dim; ++j) q[j] = av[j] * rv[j];
}

void DistMult::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
}

Status DistMult::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
