// Dense embedding storage with built-in SGD / AdaGrad updates.

#ifndef KGC_MODELS_EMBEDDING_H_
#define KGC_MODELS_EMBEDDING_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/aligned.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/vecmath.h"

namespace kgc {

/// A rows x dim table of float parameters. Supports plain SGD and AdaGrad
/// updates; AdaGrad accumulators are allocated lazily on first use.
///
/// Storage is contiguous row-major and 64-byte aligned so the scoring
/// kernels (util/vecmath.h) can stream rows directly; the serialization
/// format is unchanged from the std::vector days (plain float payload).
class EmbeddingTable {
 public:
  EmbeddingTable() = default;
  EmbeddingTable(int64_t rows, int64_t dim)
      : rows_(rows), dim_(dim),
        data_(static_cast<size_t>(rows * dim), 0.0f) {
    KGC_CHECK_GE(rows, 0);
    KGC_CHECK_GT(dim, 0);
  }

  int64_t rows() const { return rows_; }
  int64_t dim() const { return dim_; }

  std::span<float> Row(int64_t i) {
    KGC_DCHECK(i >= 0 && i < rows_);
    return {data_.data() + i * dim_, static_cast<size_t>(dim_)};
  }
  std::span<const float> Row(int64_t i) const {
    KGC_DCHECK(i >= 0 && i < rows_);
    return {data_.data() + i * dim_, static_cast<size_t>(dim_)};
  }

  /// Pointer to the first element of row 0; rows are `dim()` floats apart.
  /// This is the base pointer the row-sweep kernels walk.
  const float* raw() const { return data_.data(); }

  /// Uniform initialization in [-bound, bound]; the conventional bound is
  /// 6/sqrt(dim) (Bordes et al. 2013).
  void InitUniform(Rng& rng, double bound);

  /// Gaussian initialization with the given stddev.
  void InitNormal(Rng& rng, double stddev);

  /// L2-normalizes every row (used for entity embeddings in Trans* models).
  void NormalizeRowsL2();

  /// L2-normalizes one row in place; no-op on a zero row.
  void NormalizeRowL2(int64_t i);

  /// Enables AdaGrad with a unit prior: updates scale by
  /// 1/sqrt(1 + accumulated g^2). The prior removes AdaGrad's initial jolt
  /// (the first step would otherwise be ~lr regardless of gradient size,
  /// which destabilizes dense layers), making early training behave like
  /// plain SGD and later training self-stabilize.
  void EnableAdaGrad();
  bool adagrad_enabled() const { return !adagrad_.empty(); }

  /// Applies one gradient element: param[i][j] -= lr * g (SGD), or the
  /// AdaGrad-scaled equivalent. Gradients are clipped to [-5, 5] as a cheap
  /// divergence guard (matters for the deep ConvE stack).
  void Update(int64_t i, int64_t j, float g, float lr) {
    g = std::clamp(g, -5.0f, 5.0f);
    const size_t idx = static_cast<size_t>(i * dim_ + j);
    if (!adagrad_.empty()) {
      adagrad_[idx] += g * g;
      data_[idx] -= lr * g / std::sqrt(adagrad_[idx] + 1e-8f);
    } else {
      data_[idx] -= lr * g;
    }
  }

  /// Applies a dense gradient to one row through the fused row-update
  /// kernels: the SGD/AdaGrad branch and the row base-index arithmetic are
  /// resolved once per row instead of once per float. `gscale` multiplies
  /// every gradient element before clipping, so callers that previously
  /// scaled into a temporary can pass the raw gradient plus a scale.
  void UpdateRow(int64_t i, std::span<const float> grad, float lr,
                 float gscale = 1.0f) {
    KGC_DCHECK(static_cast<int64_t>(grad.size()) == dim_);
    const size_t base = static_cast<size_t>(i * dim_);
    const auto& ops = vec::Ops();
    if (!adagrad_.empty()) {
      ops.adagrad_update_row(data_.data() + base, adagrad_.data() + base,
                             grad.data(), gscale,
                             static_cast<size_t>(dim_), lr);
    } else {
      ops.sgd_update_row(data_.data() + base, grad.data(), gscale,
                         static_cast<size_t>(dim_), lr);
    }
  }

  /// Raw parameter access (serialization, tests).
  const AlignedVector<float>& data() const { return data_; }
  AlignedVector<float>& mutable_data() { return data_; }

  void Serialize(BinaryWriter& writer) const;
  Status Deserialize(BinaryReader& reader);

 private:
  int64_t rows_ = 0;
  int64_t dim_ = 0;
  AlignedVector<float> data_;
  AlignedVector<float> adagrad_;
};

/// Dot product of two equal-length spans (kernel-dispatched).
inline double Dot(std::span<const float> a, std::span<const float> b) {
  KGC_DCHECK(a.size() == b.size());
  return vec::Dot(a.data(), b.data(), a.size());
}

/// L2 norm of a span.
inline double NormL2(std::span<const float> a) {
  return std::sqrt(Dot(a, a));
}

}  // namespace kgc

#endif  // KGC_MODELS_EMBEDDING_H_
