// RotatE (Sun et al., ICLR 2019).
//
// Entities are complex vectors; each relation is an element-wise rotation
// r_j = e^{i theta_j} (modulus 1 by construction):
//   score(h, r, t) = -|| h o r - t ||,
// the norm being the sum of complex element moduli. Rotations compose and
// invert cleanly, letting RotatE represent symmetric, anti-symmetric,
// inverse and composed relations -- which is exactly why it thrives on
// reverse-heavy benchmarks.

#ifndef KGC_MODELS_ROTATE_H_
#define KGC_MODELS_ROTATE_H_

#include "models/model.h"

namespace kgc {

class RotatE final : public KgeModel {
 public:
  RotatE(int32_t num_entities, int32_t num_relations,
         const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  EmbeddingTable entities_;  // [re_0..re_{d-1}, im_0..im_{d-1}]
  EmbeddingTable phases_;    // theta per complex dimension
};

}  // namespace kgc

#endif  // KGC_MODELS_ROTATE_H_
