// KgeModel: the interface all knowledge-graph embedding models implement.
//
// A model scores triples (higher = more plausible) and knows how to apply an
// SGD step given the upstream loss gradient dLoss/dScore computed by the
// Trainer. Batch scorers over all candidate heads / tails are the
// performance-critical path of link-prediction evaluation; every model
// overrides them with a vectorised implementation.

#ifndef KGC_MODELS_MODEL_H_
#define KGC_MODELS_MODEL_H_

#include <memory>
#include <span>
#include <string>

#include "kg/link_predictor.h"
#include "kg/triple.h"
#include "models/embedding.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace kgc {

/// Supported model families.
enum class ModelType {
  kTransE = 0,
  kTransH = 1,
  kTransR = 2,
  kTransD = 3,
  kRescal = 4,
  kDistMult = 5,
  kComplEx = 6,
  kRotatE = 7,
  kTuckER = 8,
  kConvE = 9,
};

/// Canonical display name, e.g. "TransE".
const char* ModelTypeName(ModelType type);

/// Parses a display name; returns kInvalidArgument on unknown names.
StatusOr<ModelType> ParseModelType(const std::string& name);

/// Loss used by the trainer for this model.
enum class LossKind {
  kMarginRanking = 0,  ///< max(0, margin - s(pos) + s(neg))
  kLogistic = 1,       ///< softplus(-y * s)
};

/// Model hyperparameters. Defaults are tuned for the scaled synthetic
/// datasets (~2k entities); see models/factory.cc for per-model overrides.
struct ModelHyperParams {
  int32_t dim = 32;
  /// Secondary dimension (relation dim for TuckER / TransR-style models).
  int32_t dim2 = 8;
  double learning_rate = 0.05;
  double margin = 1.0;
  LossKind loss = LossKind::kMarginRanking;
  /// L1 (true) or L2 distance for translational models.
  bool l1_distance = false;
  /// Initialization seed.
  uint64_t seed = 7;
  /// L2 regularization coefficient applied to touched rows (0 = off).
  double l2_reg = 0.0;
  /// Use AdaGrad-scaled updates (the logistic-loss models' reference
  /// implementations all use adaptive optimizers).
  bool adagrad = false;
};

/// Abstract embedding model.
class KgeModel : public LinkPredictor {
 public:
  KgeModel(ModelType type, int32_t num_entities, int32_t num_relations,
           ModelHyperParams params)
      : type_(type),
        num_entities_(num_entities),
        num_relations_(num_relations),
        params_(params) {}
  ~KgeModel() override = default;

  KgeModel(const KgeModel&) = delete;
  KgeModel& operator=(const KgeModel&) = delete;

  ModelType type() const { return type_; }
  const char* name() const override { return ModelTypeName(type_); }
  int32_t num_entities() const override { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }
  const ModelHyperParams& params() const { return params_; }

  /// Plausibility score of (h, r, t); higher is more plausible.
  virtual double Score(EntityId h, RelationId r, EntityId t) const = 0;

  /// Applies one SGD step for the triple: every parameter p touched by the
  /// score moves by -lr * d_loss_d_score * dScore/dp.
  virtual void ApplyGradient(const Triple& triple, float d_loss_d_score,
                             float lr) = 0;

  /// Scores (h, r, e) for every entity e into out[e].
  /// out.size() must be num_entities().
  void ScoreTails(EntityId h, RelationId r,
                  std::span<float> out) const override;

  /// Scores (e, r, t) for every entity e into out[e].
  void ScoreHeads(RelationId r, EntityId t,
                  std::span<float> out) const override;

  /// Hook called by the trainer when an epoch begins (entity normalization
  /// for translational models happens here).
  virtual void OnEpochBegin(int epoch) { (void)epoch; }

  /// Serialization of all parameter tables (type tag handled by ModelStore).
  virtual void Serialize(BinaryWriter& writer) const = 0;
  virtual Status Deserialize(BinaryReader& reader) = 0;

 protected:
  ModelType type_;
  int32_t num_entities_;
  int32_t num_relations_;
  ModelHyperParams params_;
};

/// Creates a freshly initialized model of the given type.
std::unique_ptr<KgeModel> CreateModel(ModelType type, int32_t num_entities,
                                      int32_t num_relations,
                                      const ModelHyperParams& params);

/// Per-model default hyperparameters for the scaled synthetic benchmarks.
ModelHyperParams DefaultHyperParams(ModelType type);

/// All model types evaluated by the paper's main tables, in table order:
/// TransE, TransH, TransR, TransD, DistMult, ComplEx, ConvE, RotatE, TuckER.
/// RESCAL is intentionally excluded: the paper only revisits it in the
/// historical accuracy-evolution discussion, not in the main result tables.
std::span<const ModelType> PaperModelLineup();

/// The six models of the comparison figures (Fig. 1, 5, 6):
/// TransE, DistMult, ComplEx, ConvE, RotatE, TuckER. RESCAL is intentionally
/// excluded here too — the figures track the paper's figure lineup, which
/// drops it along with the remaining translational variants.
std::span<const ModelType> FigureModelLineup();

}  // namespace kgc

#endif  // KGC_MODELS_MODEL_H_
