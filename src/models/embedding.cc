#include "models/embedding.h"

namespace kgc {

void EmbeddingTable::InitUniform(Rng& rng, double bound) {
  for (float& value : data_) {
    value = static_cast<float>(rng.UniformDouble(-bound, bound));
  }
}

void EmbeddingTable::InitNormal(Rng& rng, double stddev) {
  for (float& value : data_) {
    value = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

void EmbeddingTable::NormalizeRowsL2() {
  for (int64_t i = 0; i < rows_; ++i) NormalizeRowL2(i);
}

void EmbeddingTable::NormalizeRowL2(int64_t i) {
  std::span<float> row = Row(i);
  const double norm = NormL2(row);
  if (norm < 1e-12) return;
  const float inv = static_cast<float>(1.0 / norm);
  for (float& value : row) value *= inv;
}

void EmbeddingTable::EnableAdaGrad() {
  if (adagrad_.empty()) adagrad_.assign(data_.size(), 1.0f);
}

void EmbeddingTable::Serialize(BinaryWriter& writer) const {
  writer.WriteI64(rows_);
  writer.WriteI64(dim_);
  writer.WriteFloatVector(data_);
}

Status EmbeddingTable::Deserialize(BinaryReader& reader) {
  auto rows = reader.ReadI64();
  if (!rows.ok()) return rows.status();
  auto dim = reader.ReadI64();
  if (!dim.ok()) return dim.status();
  auto data = reader.ReadFloatVector();
  if (!data.ok()) return data.status();
  if (*rows < 0 || *dim <= 0 ||
      data->size() != static_cast<size_t>(*rows * *dim)) {
    return Status::IoError("embedding table shape mismatch");
  }
  rows_ = *rows;
  dim_ = *dim;
  data_ = std::move(*data);
  adagrad_.clear();
  return Status::Ok();
}

}  // namespace kgc
