#include "models/embedding.h"

namespace kgc {

void EmbeddingTable::InitUniform(Rng& rng, double bound) {
  for (float& value : data_) {
    value = static_cast<float>(rng.UniformDouble(-bound, bound));
  }
}

void EmbeddingTable::InitNormal(Rng& rng, double stddev) {
  for (float& value : data_) {
    value = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

void EmbeddingTable::NormalizeRowsL2() {
  for (int64_t i = 0; i < rows_; ++i) NormalizeRowL2(i);
}

void EmbeddingTable::NormalizeRowL2(int64_t i) {
  std::span<float> row = Row(i);
  const double norm = NormL2(row);
  if (norm < 1e-12) return;
  const float inv = static_cast<float>(1.0 / norm);
  vec::Ops().scale(row.data(), row.size(), inv);
}

void EmbeddingTable::EnableAdaGrad() {
  if (adagrad_.empty()) adagrad_.assign(data_.size(), 1.0f);
}

void EmbeddingTable::Serialize(BinaryWriter& writer) const {
  writer.WriteI64(rows_);
  writer.WriteI64(dim_);
  writer.WriteFloatVector(data_);
  // Optimizer state rides along (flag + accumulators) so a deserialized
  // model can resume training bit-exactly, not just score.
  writer.WriteU32(adagrad_.empty() ? 0 : 1);
  if (!adagrad_.empty()) writer.WriteFloatVector(adagrad_);
}

Status EmbeddingTable::Deserialize(BinaryReader& reader) {
  auto rows = reader.ReadI64();
  if (!rows.ok()) return rows.status();
  auto dim = reader.ReadI64();
  if (!dim.ok()) return dim.status();
  auto data = reader.ReadFloatVector();
  if (!data.ok()) return data.status();
  if (*rows < 0 || *dim <= 0 ||
      data->size() != static_cast<size_t>(*rows * *dim)) {
    return Status::IoError("embedding table shape mismatch");
  }
  auto has_adagrad = reader.ReadU32();
  if (!has_adagrad.ok()) return has_adagrad.status();
  std::vector<float> adagrad;
  if (*has_adagrad == 1) {
    auto accumulators = reader.ReadFloatVector();
    if (!accumulators.ok()) return accumulators.status();
    if (accumulators->size() != data->size()) {
      return Status::IoError("adagrad accumulator shape mismatch");
    }
    adagrad = std::move(*accumulators);
  } else if (*has_adagrad != 0) {
    return Status::IoError("bad adagrad flag in embedding table");
  }
  rows_ = *rows;
  dim_ = *dim;
  // The reader hands back plain std::vector payloads; copy into the
  // aligned storage (format on disk is unchanged).
  data_.assign(data->begin(), data->end());
  adagrad_.assign(adagrad.begin(), adagrad.end());
  return Status::Ok();
}

}  // namespace kgc
