// TuckER (Balazevic et al., EMNLP 2019).
//
// Tucker decomposition of the knowledge-graph binary tensor:
//   score(h, r, t) = W x1 h x2 r x3 t = sum_{abc} W_abc h_a r_b t_c
// with a shared core tensor W in R^{de x dr x de}, entity embeddings of
// dimension de and relation embeddings of dimension dr (params.dim2).

#ifndef KGC_MODELS_TUCKER_H_
#define KGC_MODELS_TUCKER_H_

#include <vector>

#include "models/model.h"

namespace kgc {

class TuckER final : public KgeModel {
 public:
  TuckER(int32_t num_entities, int32_t num_relations,
         const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  // W index helper: W[a][b][c] with a,c in [0,de), b in [0,dr).
  size_t CoreIndex(int32_t a, int32_t b, int32_t c) const {
    return (static_cast<size_t>(a) * static_cast<size_t>(dim_r_) +
            static_cast<size_t>(b)) * static_cast<size_t>(dim_e_) +
           static_cast<size_t>(c);
  }

  // u_c = sum_{ab} W_abc h_a r_b.
  void ContractHeadRelation(std::span<const float> h, std::span<const float> r,
                            std::span<float> u) const;
  // v_a = sum_{bc} W_abc r_b t_c.
  void ContractRelationTail(std::span<const float> r, std::span<const float> t,
                            std::span<float> v) const;

  int32_t dim_e_;
  int32_t dim_r_;
  EmbeddingTable entities_;
  EmbeddingTable relations_;
  EmbeddingTable core_;  // single row of de*dr*de floats
};

}  // namespace kgc

#endif  // KGC_MODELS_TUCKER_H_
