// TransD (Ji et al., ACL 2015).
//
// Improves TransR by building an entity-relation specific projection from two
// vectors instead of a full matrix: M_rh = r_p h_p^T + I, so
//   h_perp = h + (h_p . h) r_p,   t_perp = t + (t_p . t) r_p,
//   score(h, r, t) = -||h_perp + r - t_perp||.

#ifndef KGC_MODELS_TRANSD_H_
#define KGC_MODELS_TRANSD_H_

#include "models/model.h"

namespace kgc {

class TransD final : public KgeModel {
 public:
  TransD(int32_t num_entities, int32_t num_relations,
         const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;
  void OnEpochBegin(int epoch) override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  EmbeddingTable entities_;
  EmbeddingTable entity_proj_;    // h_p
  EmbeddingTable relations_;
  EmbeddingTable relation_proj_;  // r_p
};

}  // namespace kgc

#endif  // KGC_MODELS_TRANSD_H_
