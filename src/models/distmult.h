// DistMult (Yang et al., ICLR 2015).
//
// RESCAL restricted to diagonal relation matrices:
// score(h, r, t) = <h, w_r, t> = sum_i h_i w_i t_i.
// The symmetry s(h,r,t) = s(t,r,h) is inherent (and is why DistMult can only
// model symmetric relations -- one of the observations the paper leans on).

#ifndef KGC_MODELS_DISTMULT_H_
#define KGC_MODELS_DISTMULT_H_

#include "models/model.h"

namespace kgc {

class DistMult final : public KgeModel {
 public:
  DistMult(int32_t num_entities, int32_t num_relations,
           const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

 private:
  EmbeddingTable entities_;
  EmbeddingTable relations_;
};

}  // namespace kgc

#endif  // KGC_MODELS_DISTMULT_H_
