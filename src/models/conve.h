// ConvE (Dettmers et al., AAAI 2018) -- from-scratch mini conv net.
//
// The head and relation embeddings are reshaped into 2-D grids, stacked, and
// passed through a 3x3 convolution + ReLU, then a fully-connected projection
// back to embedding space; the score is the dot product with the tail
// embedding plus a per-entity bias:
//
//   score(h, r, t) = ReLU(vec(ReLU(conv([h~; r~]))) W) . t + b_t
//
// Deviations from the original (documented in DESIGN.md): no batch-norm or
// dropout (we train small models where neither is load-bearing), 8 filters.
// As in the reference implementation, head prediction uses reciprocal
// relations: the model owns 2|R| relation embeddings and scores (?, r, t) as
// tail prediction under r_inverse. Training applies each example in both
// directions, and Score() is the SUM of both directional forms so the
// trainer's loss gradient matches what ApplyGradient applies. Batch scorers
// stay one-sided (each side ranks under its own relation form, the standard
// reciprocal-relation evaluation).

#ifndef KGC_MODELS_CONVE_H_
#define KGC_MODELS_CONVE_H_

#include <vector>

#include "models/model.h"

namespace kgc {

class ConvE final : public KgeModel {
 public:
  ConvE(int32_t num_entities, int32_t num_relations,
        const ModelHyperParams& params);

  double Score(EntityId h, RelationId r, EntityId t) const override;
  void ApplyGradient(const Triple& triple, float d_loss_d_score,
                     float lr) override;
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;
  bool DescribeSweep(bool tails, RelationId r,
                     SweepSpec* spec) const override;
  void BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                       std::span<float> q) const override;

  void Serialize(BinaryWriter& writer) const override;
  Status Deserialize(BinaryReader& reader) override;

  static constexpr int32_t kFilters = 8;
  static constexpr int32_t kKernel = 3;
  static constexpr int32_t kGridWidth = 4;

 private:
  struct Forward {
    std::vector<float> input;  // (2*grid_h) x grid_w
    std::vector<float> pre;    // conv pre-activations, filters x oh x ow
    std::vector<float> feat;   // ReLU(pre)
    std::vector<float> z;      // FC pre-activations, dim
    std::vector<float> v;      // ReLU(z)
  };

  // Runs the conv stack for (entity_row, relation_row) producing v.
  void RunForward(EntityId e, int32_t relation_row, Forward& fwd) const;

  // One SGD step for score = v(e_in, rel_row) . e_out + b[e_out].
  void Step(EntityId e_in, int32_t relation_row, EntityId e_out, float g,
            float lr);

  int32_t grid_h_;       // dim / kGridWidth
  int32_t out_h_;        // 2*grid_h - kKernel + 1
  int32_t out_w_;        // kGridWidth - kKernel + 1
  int32_t feat_size_;    // kFilters * out_h_ * out_w_
  EmbeddingTable entities_;
  EmbeddingTable relations_;     // 2*num_relations rows (reciprocals)
  EmbeddingTable kernels_;       // kFilters x (kKernel*kKernel)
  EmbeddingTable conv_bias_;     // 1 x kFilters
  EmbeddingTable fc_;            // feat_size x dim
  EmbeddingTable fc_bias_;       // 1 x dim
  EmbeddingTable entity_bias_;   // num_entities x 1
};

}  // namespace kgc

#endif  // KGC_MODELS_CONVE_H_
