#include "models/transr.h"

#include <atomic>
#include <cmath>

#include "util/vecmath.h"

namespace kgc {
namespace {

uint64_t NextInstanceId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

TransR::TransR(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransR, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      relations_(num_relations, params.dim),
      matrices_(num_relations, params.dim * params.dim),
      instance_id_(NextInstanceId()) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  relations_.InitUniform(rng, bound);
  entities_.NormalizeRowsL2();
  relations_.NormalizeRowsL2();
  // M_r starts near identity (the TransE solution), as in the original paper.
  for (int32_t r = 0; r < num_relations; ++r) {
    auto m = matrices_.Row(r);
    for (int32_t i = 0; i < params.dim; ++i) {
      for (int32_t j = 0; j < params.dim; ++j) {
        const double jitter = rng.UniformDouble(-0.05, 0.05);
        m[static_cast<size_t>(i * params.dim + j)] =
            static_cast<float>((i == j ? 1.0 : 0.0) + jitter);
      }
    }
  }
}

void TransR::ProjectEntity(RelationId r, EntityId e,
                           std::span<float> out) const {
  // out[i] = dot(row i of M_r, e): a matvec is a dot_rows sweep over the
  // matrix rows with the entity vector as the query.
  const auto m = matrices_.Row(r);
  const auto ev = entities_.Row(e);
  const size_t dim = static_cast<size_t>(params_.dim);
  vec::Ops().dot_rows(ev.data(), m.data(), dim, dim, dim, out.data());
}

double TransR::Score(EntityId h, RelationId r, EntityId t) const {
  const size_t dim = static_cast<size_t>(params_.dim);
  auto hp = vec::GetScratch(dim, 0);
  auto tp = vec::GetScratch(dim, 1);
  ProjectEntity(r, h, hp);
  ProjectEntity(r, t, tp);
  const auto rv = relations_.Row(r);
  auto q = vec::GetScratch(dim, 2);
  for (size_t j = 0; j < dim; ++j) q[j] = hp[j] + rv[j];
  const auto& ops = vec::Ops();
  const auto sweep = params_.l1_distance ? ops.l1_rows : ops.l2_rows;
  float dist = 0.0f;
  sweep(q.data(), tp.data(), 1, dim, dim, &dist);
  return -static_cast<double>(dist);
}

void TransR::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const int32_t dim = params_.dim;
  const size_t dsz = static_cast<size_t>(dim);
  auto hp = vec::GetScratch(dsz, 0);
  auto tp = vec::GetScratch(dsz, 1);
  ProjectEntity(triple.relation, triple.head, hp);
  ProjectEntity(triple.relation, triple.tail, tp);
  const auto rv = relations_.Row(triple.relation);
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);

  auto diff = vec::GetScratch(dsz, 2);
  double norm = 0.0;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    diff[k] = hp[k] + rv[k] - tp[k];
    norm += static_cast<double>(diff[k]) * diff[k];
  }
  norm = std::sqrt(norm);
  if (!params_.l1_distance && norm < 1e-12) return;

  auto g = vec::GetScratch(dsz, 3);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double d_score_d_diff =
        params_.l1_distance
            ? -(diff[k] > 0 ? 1.0 : (diff[k] < 0 ? -1.0 : 0.0))
            : -diff[k] / norm;
    g[k] = d_loss_d_score * static_cast<float>(d_score_d_diff);
  }

  // dLoss/dr = g; dLoss/dh = M^T g; dLoss/dt = -M^T g;
  // dLoss/dM[i][j] = g_i (h_j - t_j).
  const auto m = matrices_.Row(triple.relation);
  auto mt_g = vec::GetScratch(dsz, 4);
  for (float& x : mt_g) x = 0.0f;
  for (int32_t i = 0; i < dim; ++i) {
    const size_t row = static_cast<size_t>(i * dim);
    vec::Axpy(g[static_cast<size_t>(i)], m.data() + row, mt_g.data(), dsz);
  }
  relations_.UpdateRow(triple.relation, g, lr);
  entities_.UpdateRow(triple.head, mt_g, lr);
  entities_.UpdateRow(triple.tail, mt_g, lr, -1.0f);
  // The matrix gradient reads the entity rows after their updates above
  // (the historical update order).
  auto gm = vec::GetScratch(dsz * dsz, 5);
  for (int32_t i = 0; i < dim; ++i) {
    const size_t row = static_cast<size_t>(i * dim);
    for (int32_t j = 0; j < dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      gm[row + k] = g[static_cast<size_t>(i)] * (hv[k] - tv[k]);
    }
  }
  matrices_.UpdateRow(triple.relation, gm, lr);
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
  ++version_;
}

const std::vector<float>& TransR::ProjectedEntities(RelationId r) const {
  static thread_local ProjectionCache cache;
  if (cache.owner != instance_id_ || cache.relation != r ||
      cache.version != version_) {
    cache.owner = instance_id_;
    cache.relation = r;
    cache.version = version_;
    cache.projected.resize(static_cast<size_t>(num_entities_) *
                           static_cast<size_t>(params_.dim));
    for (EntityId e = 0; e < num_entities_; ++e) {
      std::span<float> out(cache.projected.data() +
                               static_cast<size_t>(e) *
                                   static_cast<size_t>(params_.dim),
                           static_cast<size_t>(params_.dim));
      ProjectEntity(r, e, out);
    }
  }
  return cache.projected;
}

void TransR::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  const std::vector<float>& projected = ProjectedEntities(r);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  const auto& ops = vec::Ops();
  const auto sweep = params_.l1_distance ? ops.l1_rows : ops.l2_rows;
  sweep(q.data(), projected.data(), static_cast<size_t>(num_entities_), dim,
        dim, out.data());
  vec::Negate(out);
}

void TransR::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const size_t dim = static_cast<size_t>(params_.dim);
  const std::vector<float>& projected = ProjectedEntities(r);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  const auto& ops = vec::Ops();
  const auto sweep = params_.l1_distance ? ops.l1_rows : ops.l2_rows;
  sweep(q.data(), projected.data(), static_cast<size_t>(num_entities_), dim,
        dim, out.data());
  vec::Negate(out);
}

bool TransR::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  const std::vector<float>& projected = ProjectedEntities(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  spec->kind = params_.l1_distance ? SweepKind::kL1 : SweepKind::kL2;
  spec->rows = projected.data();
  spec->num_rows = static_cast<size_t>(num_entities_);
  spec->stride = dim;
  spec->dim = dim;
  spec->query_len = dim;
  spec->negate = true;
  // The projected table is a thread-local buffer refilled per relation, so
  // its address cannot key any cache that outlives this relation's group.
  spec->stable_rows = false;
  return true;
}

void TransR::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                             std::span<float> q) const {
  const size_t dim = static_cast<size_t>(params_.dim);
  const std::vector<float>& projected = ProjectedEntities(r);
  const auto rv = relations_.Row(r);
  const float* ap = projected.data() + static_cast<size_t>(anchor) * dim;
  if (tails) {
    for (size_t j = 0; j < dim; ++j) q[j] = ap[j] + rv[j];
  } else {
    for (size_t j = 0; j < dim; ++j) q[j] = ap[j] - rv[j];
  }
}

void TransR::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
}

void TransR::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
  matrices_.Serialize(writer);
}

Status TransR::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(matrices_.Deserialize(reader));
  ++version_;
  return Status::Ok();
}

}  // namespace kgc
