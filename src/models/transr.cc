#include "models/transr.h"

#include <atomic>
#include <cmath>

namespace kgc {
namespace {

uint64_t NextInstanceId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

TransR::TransR(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransR, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      relations_(num_relations, params.dim),
      matrices_(num_relations, params.dim * params.dim),
      instance_id_(NextInstanceId()) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  relations_.InitUniform(rng, bound);
  entities_.NormalizeRowsL2();
  relations_.NormalizeRowsL2();
  // M_r starts near identity (the TransE solution), as in the original paper.
  for (int32_t r = 0; r < num_relations; ++r) {
    auto m = matrices_.Row(r);
    for (int32_t i = 0; i < params.dim; ++i) {
      for (int32_t j = 0; j < params.dim; ++j) {
        const double jitter = rng.UniformDouble(-0.05, 0.05);
        m[static_cast<size_t>(i * params.dim + j)] =
            static_cast<float>((i == j ? 1.0 : 0.0) + jitter);
      }
    }
  }
}

void TransR::ProjectEntity(RelationId r, EntityId e,
                           std::span<float> out) const {
  const auto m = matrices_.Row(r);
  const auto ev = entities_.Row(e);
  const int32_t dim = params_.dim;
  for (int32_t i = 0; i < dim; ++i) {
    double sum = 0.0;
    const size_t row = static_cast<size_t>(i * dim);
    for (int32_t j = 0; j < dim; ++j) {
      sum += static_cast<double>(m[row + static_cast<size_t>(j)]) *
             ev[static_cast<size_t>(j)];
    }
    out[static_cast<size_t>(i)] = static_cast<float>(sum);
  }
}

double TransR::Score(EntityId h, RelationId r, EntityId t) const {
  const int32_t dim = params_.dim;
  std::vector<float> hp(static_cast<size_t>(dim));
  std::vector<float> tp(static_cast<size_t>(dim));
  ProjectEntity(r, h, hp);
  ProjectEntity(r, t, tp);
  const auto rv = relations_.Row(r);
  double sum = 0.0;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double diff = hp[k] + rv[k] - tp[k];
    sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
  }
  return params_.l1_distance ? -sum : -std::sqrt(sum);
}

void TransR::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const int32_t dim = params_.dim;
  std::vector<float> hp(static_cast<size_t>(dim));
  std::vector<float> tp(static_cast<size_t>(dim));
  ProjectEntity(triple.relation, triple.head, hp);
  ProjectEntity(triple.relation, triple.tail, tp);
  const auto rv = relations_.Row(triple.relation);
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);

  std::vector<float> diff(static_cast<size_t>(dim));
  double norm = 0.0;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    diff[k] = hp[k] + rv[k] - tp[k];
    norm += static_cast<double>(diff[k]) * diff[k];
  }
  norm = std::sqrt(norm);
  if (!params_.l1_distance && norm < 1e-12) return;

  std::vector<float> g(static_cast<size_t>(dim));
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double d_score_d_diff =
        params_.l1_distance
            ? -(diff[k] > 0 ? 1.0 : (diff[k] < 0 ? -1.0 : 0.0))
            : -diff[k] / norm;
    g[k] = d_loss_d_score * static_cast<float>(d_score_d_diff);
  }

  // dLoss/dr = g; dLoss/dh = M^T g; dLoss/dt = -M^T g;
  // dLoss/dM[i][j] = g_i (h_j - t_j).
  const auto m = matrices_.Row(triple.relation);
  std::vector<float> mt_g(static_cast<size_t>(dim), 0.0f);
  for (int32_t i = 0; i < dim; ++i) {
    const size_t row = static_cast<size_t>(i * dim);
    for (int32_t j = 0; j < dim; ++j) {
      mt_g[static_cast<size_t>(j)] +=
          m[row + static_cast<size_t>(j)] * g[static_cast<size_t>(i)];
    }
  }
  for (int32_t j = 0; j < dim; ++j) {
    relations_.Update(triple.relation, j, g[static_cast<size_t>(j)], lr);
    entities_.Update(triple.head, j, mt_g[static_cast<size_t>(j)], lr);
    entities_.Update(triple.tail, j, -mt_g[static_cast<size_t>(j)], lr);
  }
  for (int32_t i = 0; i < dim; ++i) {
    for (int32_t j = 0; j < dim; ++j) {
      const float gm = g[static_cast<size_t>(i)] *
                       (hv[static_cast<size_t>(j)] - tv[static_cast<size_t>(j)]);
      matrices_.Update(triple.relation, i * dim + j, gm, lr);
    }
  }
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
  ++version_;
}

const std::vector<float>& TransR::ProjectedEntities(RelationId r) const {
  static thread_local ProjectionCache cache;
  if (cache.owner != instance_id_ || cache.relation != r ||
      cache.version != version_) {
    cache.owner = instance_id_;
    cache.relation = r;
    cache.version = version_;
    cache.projected.resize(static_cast<size_t>(num_entities_) *
                           static_cast<size_t>(params_.dim));
    for (EntityId e = 0; e < num_entities_; ++e) {
      std::span<float> out(cache.projected.data() +
                               static_cast<size_t>(e) *
                                   static_cast<size_t>(params_.dim),
                           static_cast<size_t>(params_.dim));
      ProjectEntity(r, e, out);
    }
  }
  return cache.projected;
}

void TransR::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const int32_t dim = params_.dim;
  const std::vector<float>& projected = ProjectedEntities(r);
  const auto rv = relations_.Row(r);
  std::vector<float> q(static_cast<size_t>(dim));
  const float* hp = projected.data() +
                    static_cast<size_t>(h) * static_cast<size_t>(dim);
  for (int32_t j = 0; j < dim; ++j) {
    q[static_cast<size_t>(j)] = hp[j] + rv[static_cast<size_t>(j)];
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    const float* tp = projected.data() +
                      static_cast<size_t>(e) * static_cast<size_t>(dim);
    double sum = 0.0;
    for (int32_t j = 0; j < dim; ++j) {
      const double diff = q[static_cast<size_t>(j)] - tp[j];
      sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
    }
    out[static_cast<size_t>(e)] =
        static_cast<float>(params_.l1_distance ? -sum : -std::sqrt(sum));
  }
}

void TransR::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const int32_t dim = params_.dim;
  const std::vector<float>& projected = ProjectedEntities(r);
  const auto rv = relations_.Row(r);
  std::vector<float> q(static_cast<size_t>(dim));
  const float* tp = projected.data() +
                    static_cast<size_t>(t) * static_cast<size_t>(dim);
  for (int32_t j = 0; j < dim; ++j) {
    q[static_cast<size_t>(j)] = tp[j] - rv[static_cast<size_t>(j)];
  }
  for (EntityId e = 0; e < num_entities_; ++e) {
    const float* hp = projected.data() +
                      static_cast<size_t>(e) * static_cast<size_t>(dim);
    double sum = 0.0;
    for (int32_t j = 0; j < dim; ++j) {
      const double diff = hp[j] - q[static_cast<size_t>(j)];
      sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
    }
    out[static_cast<size_t>(e)] =
        static_cast<float>(params_.l1_distance ? -sum : -std::sqrt(sum));
  }
}

void TransR::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
}

void TransR::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  relations_.Serialize(writer);
  matrices_.Serialize(writer);
}

Status TransR::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(relations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(matrices_.Deserialize(reader));
  ++version_;
  return Status::Ok();
}

}  // namespace kgc
