#include "models/transh.h"

#include <cmath>

namespace kgc {

TransH::TransH(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransH, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      translations_(num_relations, params.dim),
      normals_(num_relations, params.dim) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  translations_.InitUniform(rng, bound);
  normals_.InitUniform(rng, bound);
  entities_.NormalizeRowsL2();
  translations_.NormalizeRowsL2();
  normals_.NormalizeRowsL2();
}

void TransH::Project(std::span<const float> e, std::span<const float> w,
                     std::span<float> out) const {
  const double we = Dot(w, e);
  for (size_t j = 0; j < e.size(); ++j) {
    out[j] = e[j] - static_cast<float>(we) * w[j];
  }
}

double TransH::Score(EntityId h, RelationId r, EntityId t) const {
  const auto hv = entities_.Row(h);
  const auto tv = entities_.Row(t);
  const auto dv = translations_.Row(r);
  const auto wv = normals_.Row(r);
  const double wh = Dot(wv, hv);
  const double wt = Dot(wv, tv);
  double sum = 0.0;
  for (int32_t j = 0; j < params_.dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double diff = (hv[k] - wh * wv[k]) + dv[k] - (tv[k] - wt * wv[k]);
    sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
  }
  return params_.l1_distance ? -sum : -std::sqrt(sum);
}

void TransH::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const int32_t dim = params_.dim;
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto dv = translations_.Row(triple.relation);
  const auto wv = normals_.Row(triple.relation);
  const double wh = Dot(wv, hv);
  const double wt = Dot(wv, tv);

  // diff = h - (w.h)w + d - t + (w.t)w ; score = -dist(diff).
  std::vector<float> diff(static_cast<size_t>(dim));
  double norm = 0.0;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    diff[k] = static_cast<float>((hv[k] - wh * wv[k]) + dv[k] -
                                 (tv[k] - wt * wv[k]));
    norm += static_cast<double>(diff[k]) * diff[k];
  }
  norm = std::sqrt(norm);
  if (!params_.l1_distance && norm < 1e-12) return;

  // g[j] = dLoss/d diff_j.
  std::vector<float> g(static_cast<size_t>(dim));
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double d_score_d_diff =
        params_.l1_distance
            ? -(diff[k] > 0 ? 1.0 : (diff[k] < 0 ? -1.0 : 0.0))
            : -diff[k] / norm;
    g[k] = d_loss_d_score * static_cast<float>(d_score_d_diff);
  }

  const double wg = Dot(wv, g);
  // u = t - h enters the w-gradient: diff(w) = (w.(t-h)) w + const.
  // dLoss/dw_k = (t-h)_k (w.g) + (w.(t-h)) g_k.
  const double wu = wt - wh;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    // dLoss/dh = g - (w.g) w; dLoss/dt = -(g - (w.g) w); dLoss/dd = g.
    const float gh = g[k] - static_cast<float>(wg) * wv[k];
    entities_.Update(triple.head, j, gh, lr);
    entities_.Update(triple.tail, j, -gh, lr);
    translations_.Update(triple.relation, j, g[k], lr);
    const float gw = static_cast<float>((tv[k] - hv[k]) * wg + wu * g[k]);
    normals_.Update(triple.relation, j, gw, lr);
  }
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
  normals_.NormalizeRowL2(triple.relation);
}

void TransH::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto wv = normals_.Row(r);
  const auto dv = translations_.Row(r);
  std::vector<float> q(static_cast<size_t>(params_.dim));
  Project(entities_.Row(h), wv, q);
  for (int32_t j = 0; j < params_.dim; ++j) {
    q[static_cast<size_t>(j)] += dv[static_cast<size_t>(j)];
  }
  std::vector<float> tp(static_cast<size_t>(params_.dim));
  for (EntityId e = 0; e < num_entities_; ++e) {
    Project(entities_.Row(e), wv, tp);
    double sum = 0.0;
    for (int32_t j = 0; j < params_.dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      const double diff = q[k] - tp[k];
      sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
    }
    out[static_cast<size_t>(e)] =
        static_cast<float>(params_.l1_distance ? -sum : -std::sqrt(sum));
  }
}

void TransH::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  const auto wv = normals_.Row(r);
  const auto dv = translations_.Row(r);
  std::vector<float> q(static_cast<size_t>(params_.dim));
  Project(entities_.Row(t), wv, q);
  for (int32_t j = 0; j < params_.dim; ++j) {
    q[static_cast<size_t>(j)] -= dv[static_cast<size_t>(j)];
  }
  std::vector<float> hp(static_cast<size_t>(params_.dim));
  for (EntityId e = 0; e < num_entities_; ++e) {
    Project(entities_.Row(e), wv, hp);
    double sum = 0.0;
    for (int32_t j = 0; j < params_.dim; ++j) {
      const size_t k = static_cast<size_t>(j);
      const double diff = hp[k] - q[k];
      sum += params_.l1_distance ? std::fabs(diff) : diff * diff;
    }
    out[static_cast<size_t>(e)] =
        static_cast<float>(params_.l1_distance ? -sum : -std::sqrt(sum));
  }
}

void TransH::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
  normals_.NormalizeRowsL2();
}

void TransH::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  translations_.Serialize(writer);
  normals_.Serialize(writer);
}

Status TransH::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(translations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(normals_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
