#include "models/transh.h"

#include <cmath>

#include "util/vecmath.h"

namespace kgc {

TransH::TransH(int32_t num_entities, int32_t num_relations,
               const ModelHyperParams& params)
    : KgeModel(ModelType::kTransH, num_entities, num_relations, params),
      entities_(num_entities, params.dim),
      translations_(num_relations, params.dim),
      normals_(num_relations, params.dim) {
  Rng rng(params.seed);
  const double bound = 6.0 / std::sqrt(static_cast<double>(params.dim));
  entities_.InitUniform(rng, bound);
  translations_.InitUniform(rng, bound);
  normals_.InitUniform(rng, bound);
  entities_.NormalizeRowsL2();
  translations_.NormalizeRowsL2();
  normals_.NormalizeRowsL2();
}

void TransH::Project(std::span<const float> e, std::span<const float> w,
                     std::span<float> out) const {
  const double we = Dot(w, e);
  for (size_t j = 0; j < e.size(); ++j) {
    out[j] = e[j] - static_cast<float>(we) * w[j];
  }
}

// Both sweep directions reduce to the same offset-row kernel: the distance
// between a fixed query q and the projected entity e - (w.e) w is
// |q + (w.e) w - e| element-wise, so coef[i] = w.e_i and coef_scale = +1.

double TransH::Score(EntityId h, RelationId r, EntityId t) const {
  const auto wv = normals_.Row(r);
  const auto dv = translations_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  Project(entities_.Row(h), wv, q);
  for (size_t j = 0; j < dim; ++j) q[j] += dv[j];
  const auto& ops = vec::Ops();
  float coef = 0.0f;
  ops.dot_rows(wv.data(), entities_.Row(t).data(), 1, dim, dim, &coef);
  float dist = 0.0f;
  const auto sweep =
      params_.l1_distance ? ops.l1_offset_rows : ops.l2_offset_rows;
  sweep(q.data(), wv.data(), &coef, 1.0f, entities_.Row(t).data(), 1, dim,
        dim, &dist);
  return -static_cast<double>(dist);
}

void TransH::ApplyGradient(const Triple& triple, float d_loss_d_score,
                           float lr) {
  const int32_t dim = params_.dim;
  const auto hv = entities_.Row(triple.head);
  const auto tv = entities_.Row(triple.tail);
  const auto dv = translations_.Row(triple.relation);
  const auto wv = normals_.Row(triple.relation);
  const double wh = Dot(wv, hv);
  const double wt = Dot(wv, tv);

  // diff = h - (w.h)w + d - t + (w.t)w ; score = -dist(diff).
  auto diff = vec::GetScratch(static_cast<size_t>(dim), 0);
  double norm = 0.0;
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    diff[k] = static_cast<float>((hv[k] - wh * wv[k]) + dv[k] -
                                 (tv[k] - wt * wv[k]));
    norm += static_cast<double>(diff[k]) * diff[k];
  }
  norm = std::sqrt(norm);
  if (!params_.l1_distance && norm < 1e-12) return;

  // g[j] = dLoss/d diff_j.
  auto g = vec::GetScratch(static_cast<size_t>(dim), 1);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    const double d_score_d_diff =
        params_.l1_distance
            ? -(diff[k] > 0 ? 1.0 : (diff[k] < 0 ? -1.0 : 0.0))
            : -diff[k] / norm;
    g[k] = d_loss_d_score * static_cast<float>(d_score_d_diff);
  }

  const double wg = vec::Dot(wv.data(), g.data(), g.size());
  const double wu = wt - wh;
  // dLoss/dh = g - (w.g) w; dLoss/dt is its negation; dLoss/dd = g.
  auto gh = vec::GetScratch(static_cast<size_t>(dim), 2);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    gh[k] = g[k] - static_cast<float>(wg) * wv[k];
  }
  entities_.UpdateRow(triple.head, gh, lr);
  entities_.UpdateRow(triple.tail, gh, lr, -1.0f);
  translations_.UpdateRow(triple.relation, g, lr);
  // dLoss/dw_k = (t-h)_k (w.g) + (w.(t-h)) g_k, read from the entity rows
  // after their updates above (matching the historical update order).
  auto gw = vec::GetScratch(static_cast<size_t>(dim), 3);
  for (int32_t j = 0; j < dim; ++j) {
    const size_t k = static_cast<size_t>(j);
    gw[k] = static_cast<float>((tv[k] - hv[k]) * wg + wu * g[k]);
  }
  normals_.UpdateRow(triple.relation, gw, lr);
  entities_.NormalizeRowL2(triple.head);
  entities_.NormalizeRowL2(triple.tail);
  normals_.NormalizeRowL2(triple.relation);
}

void TransH::ScoreTails(EntityId h, RelationId r, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  SweepSpec spec;
  DescribeSweep(/*tails=*/true, r, &spec);  // fills coef in scratch slot 1
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/true, r, h, q);
  const auto& ops = vec::Ops();
  const auto sweep =
      params_.l1_distance ? ops.l1_offset_rows : ops.l2_offset_rows;
  sweep(q.data(), spec.v, spec.coef, spec.coef_scale, spec.rows,
        spec.num_rows, spec.stride, spec.dim, out.data());
  vec::Negate(out);
}

void TransH::ScoreHeads(RelationId r, EntityId t, std::span<float> out) const {
  KGC_CHECK_EQ(static_cast<int64_t>(out.size()), num_entities_);
  SweepSpec spec;
  DescribeSweep(/*tails=*/false, r, &spec);
  const size_t dim = static_cast<size_t>(params_.dim);
  auto q = vec::GetScratch(dim, 0);
  BuildSweepQuery(/*tails=*/false, r, t, q);
  const auto& ops = vec::Ops();
  const auto sweep =
      params_.l1_distance ? ops.l1_offset_rows : ops.l2_offset_rows;
  sweep(q.data(), spec.v, spec.coef, spec.coef_scale, spec.rows,
        spec.num_rows, spec.stride, spec.dim, out.data());
  vec::Negate(out);
}

bool TransH::DescribeSweep(bool tails, RelationId r, SweepSpec* spec) const {
  (void)tails;
  const auto wv = normals_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  const size_t n = static_cast<size_t>(num_entities_);
  auto coef = vec::GetScratch(n, 1);
  vec::Ops().dot_rows(wv.data(), entities_.raw(), n, dim, dim, coef.data());
  spec->kind = params_.l1_distance ? SweepKind::kL1Offset : SweepKind::kL2Offset;
  spec->rows = entities_.raw();
  spec->num_rows = n;
  spec->stride = dim;
  spec->dim = dim;
  spec->query_len = dim;
  spec->v = wv.data();
  spec->coef = coef.data();
  spec->coef_scale = 1.0f;
  spec->negate = true;
  spec->stable_rows = true;
  return true;
}

void TransH::BuildSweepQuery(bool tails, RelationId r, EntityId anchor,
                             std::span<float> q) const {
  const auto wv = normals_.Row(r);
  const auto dv = translations_.Row(r);
  const size_t dim = static_cast<size_t>(params_.dim);
  Project(entities_.Row(anchor), wv, q);
  if (tails) {
    for (size_t j = 0; j < dim; ++j) q[j] += dv[j];
  } else {
    for (size_t j = 0; j < dim; ++j) q[j] -= dv[j];
  }
}

void TransH::OnEpochBegin(int epoch) {
  (void)epoch;
  entities_.NormalizeRowsL2();
  normals_.NormalizeRowsL2();
}

void TransH::Serialize(BinaryWriter& writer) const {
  entities_.Serialize(writer);
  translations_.Serialize(writer);
  normals_.Serialize(writer);
}

Status TransH::Deserialize(BinaryReader& reader) {
  KGC_RETURN_IF_ERROR(entities_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(translations_.Deserialize(reader));
  KGC_RETURN_IF_ERROR(normals_.Deserialize(reader));
  return Status::Ok();
}

}  // namespace kgc
