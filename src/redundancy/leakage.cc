#include "redundancy/leakage.h"

#include <numeric>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace kgc {
namespace {

// Counts triples of `list` matching `pred`, sharded across threads with one
// counter per shard. Integer partial sums are merged in shard order, so the
// total is identical to the serial count for any thread count.
template <typename Pred>
size_t ParallelCount(const TripleList& list, int threads, const Pred& pred) {
  std::vector<size_t> partial(
      static_cast<size_t>(std::max(PlannedShards(list.size(), threads), 1)),
      0);
  ParallelFor(list.size(), threads, [&](size_t begin, size_t end, int shard) {
    size_t count = 0;
    for (size_t i = begin; i < end; ++i) {
      if (pred(list[i])) ++count;
    }
    partial[static_cast<size_t>(shard)] = count;
  });
  return std::accumulate(partial.begin(), partial.end(), size_t{0});
}

}  // namespace

RedundancyCatalog RedundancyCatalog::Detect(const TripleStore& store,
                                            const DetectorOptions& options) {
  obs::TraceSpan span("redundancy_detect");
  span.AddArgInt("relations", store.num_relations());
  RedundancyCatalog catalog;
  catalog.duplicate_pairs = FindDuplicateRelations(store, options);
  catalog.reverse_pairs = FindReverseDuplicateRelations(store, options);
  for (const RelationPairOverlap& stat :
       FindSymmetricRelations(store, options)) {
    catalog.symmetric_relations.push_back(stat.r1);
  }
  return catalog;
}

std::vector<RelationId> RedundancyCatalog::ReversePartners(
    RelationId r) const {
  std::vector<RelationId> partners;
  for (const RelationPairOverlap& pair : reverse_pairs) {
    if (pair.r1 == r) partners.push_back(pair.r2);
    if (pair.r2 == r) partners.push_back(pair.r1);
  }
  return partners;
}

std::vector<RelationId> RedundancyCatalog::DuplicatePartners(
    RelationId r) const {
  std::vector<RelationId> partners;
  for (const RelationPairOverlap& pair : duplicate_pairs) {
    if (pair.r1 == r) partners.push_back(pair.r2);
    if (pair.r2 == r) partners.push_back(pair.r1);
  }
  return partners;
}

std::vector<RelationId> RedundancyCatalog::ReverseDuplicatePartners(
    RelationId r) const {
  std::vector<RelationId> partners;
  for (const RelationPairOverlap& pair : reverse_duplicate_pairs) {
    if (pair.r1 == r) partners.push_back(pair.r2);
    if (pair.r2 == r) partners.push_back(pair.r1);
  }
  return partners;
}

bool RedundancyCatalog::IsSymmetric(RelationId r) const {
  for (RelationId s : symmetric_relations) {
    if (s == r) return true;
  }
  return false;
}

namespace {

// True if `store` contains a reverse counterpart of (h, r, t) under the
// catalog: (t, r2, h) for some reverse partner r2, or (t, r, h) for a
// symmetric relation.
bool HasReverseIn(const TripleStore& store, const RedundancyCatalog& catalog,
                  const Triple& triple, bool exclude_self) {
  if (catalog.IsSymmetric(triple.relation)) {
    if (store.Contains(triple.tail, triple.relation, triple.head)) {
      // A self-loop (h == t) is its own reverse; never count it.
      if (triple.head != triple.tail) return true;
    }
  }
  for (RelationId r2 : catalog.ReversePartners(triple.relation)) {
    if (store.Contains(triple.tail, r2, triple.head)) {
      if (!exclude_self || r2 != triple.relation ||
          triple.head != triple.tail) {
        return true;
      }
    }
  }
  return false;
}

// True if `store` contains a duplicate counterpart (h, r2, t) of the triple
// for some duplicate partner r2.
bool HasDuplicateIn(const TripleStore& store, const RedundancyCatalog& catalog,
                    const Triple& triple) {
  for (RelationId r2 : catalog.DuplicatePartners(triple.relation)) {
    if (store.Contains(triple.head, r2, triple.tail)) return true;
  }
  return false;
}

// True if `store` contains a reverse-duplicate counterpart (t, r2, h) for a
// reverse-duplicate partner r2.
bool HasReverseDuplicateIn(const TripleStore& store,
                           const RedundancyCatalog& catalog,
                           const Triple& triple) {
  for (RelationId r2 : catalog.ReverseDuplicatePartners(triple.relation)) {
    if (store.Contains(triple.tail, r2, triple.head)) return true;
  }
  return false;
}

}  // namespace

ReverseLeakageStats ComputeReverseLeakage(const Dataset& dataset,
                                          const RedundancyCatalog& catalog,
                                          int threads) {
  obs::TraceSpan span("reverse_leakage");
  span.AddArgInt("train_triples", static_cast<long long>(dataset.train().size()));
  span.AddArgInt("test_triples", static_cast<long long>(dataset.test().size()));
  static obs::Counter& classified =
      obs::Registry::Get().GetCounter(obs::kRedundancyTriplesClassified);
  classified.Add(dataset.train().size() + dataset.test().size());

  ReverseLeakageStats stats;
  const TripleStore& train = dataset.train_store();

  stats.train_triples_in_reverse_pairs =
      ParallelCount(dataset.train(), threads, [&](const Triple& t) {
        return HasReverseIn(train, catalog, t, /*exclude_self=*/true);
      });
  if (!dataset.train().empty()) {
    stats.train_reverse_fraction =
        static_cast<double>(stats.train_triples_in_reverse_pairs) /
        static_cast<double>(dataset.train().size());
  }

  stats.test_triples_with_reverse_in_train =
      ParallelCount(dataset.test(), threads, [&](const Triple& t) {
        return HasReverseIn(train, catalog, t, /*exclude_self=*/false);
      });
  if (!dataset.test().empty()) {
    stats.test_reverse_fraction =
        static_cast<double>(stats.test_triples_with_reverse_in_train) /
        static_cast<double>(dataset.test().size());
  }
  return stats;
}

RedundancyBitmap ComputeRedundancyBitmap(const Dataset& dataset,
                                         const RedundancyCatalog& catalog,
                                         int threads) {
  obs::TraceSpan span("redundancy_bitmap");
  span.AddArgInt("test_triples", static_cast<long long>(dataset.test().size()));
  static obs::Counter& classified =
      obs::Registry::Get().GetCounter(obs::kRedundancyTriplesClassified);
  classified.Add(dataset.test().size());

  RedundancyBitmap bitmap;
  const TripleStore& train = dataset.train_store();
  const TripleStore& test = dataset.test_store();
  const TripleList& triples = dataset.test();
  bitmap.cases.resize(triples.size(), 0);

  // Each shard classifies its contiguous slice of the test split, writing
  // case codes into disjoint `cases` slots and tallying into its own
  // partial bitmap; partials merge in shard order (integer sums, so the
  // result equals the serial sweep for any thread count).
  std::vector<RedundancyBitmap> partial(
      static_cast<size_t>(std::max(PlannedShards(triples.size(), threads), 1)));
  ParallelFor(triples.size(), threads,
              [&](size_t begin, size_t end, int shard) {
    RedundancyBitmap& local = partial[static_cast<size_t>(shard)];
    for (size_t i = begin; i < end; ++i) {
      const Triple& t = triples[i];
      const bool reverse_train =
          HasReverseIn(train, catalog, t, /*exclude_self=*/false);
      const bool dup_train = HasDuplicateIn(train, catalog, t);
      const bool revdup_train = HasReverseDuplicateIn(train, catalog, t);
      // Within the test split the triple itself is present; the reverse
      // check must not count the triple as its own counterpart.
      const bool reverse_test =
          HasReverseIn(test, catalog, t, /*exclude_self=*/true);
      const bool dup_test = HasDuplicateIn(test, catalog, t);
      const bool revdup_test = HasReverseDuplicateIn(test, catalog, t);

      uint8_t code = 0;
      if (reverse_train) code |= 0b1000;
      if (dup_train || revdup_train) code |= 0b0100;
      if (reverse_test) code |= 0b0010;
      if (dup_test || revdup_test) code |= 0b0001;
      bitmap.cases[i] = code;
      local.histogram[code]++;

      if (reverse_train) ++local.reverse_in_train;
      if (dup_train) ++local.duplicate_in_train;
      if (revdup_train) ++local.reverse_duplicate_in_train;
      if (reverse_test) ++local.reverse_in_test;
      if (dup_test) ++local.duplicate_in_test;
      if (revdup_test) ++local.reverse_duplicate_in_test;
    }
  });
  for (const RedundancyBitmap& local : partial) {
    for (size_t c = 0; c < bitmap.histogram.size(); ++c) {
      bitmap.histogram[c] += local.histogram[c];
    }
    bitmap.reverse_in_train += local.reverse_in_train;
    bitmap.duplicate_in_train += local.duplicate_in_train;
    bitmap.reverse_duplicate_in_train += local.reverse_duplicate_in_train;
    bitmap.reverse_in_test += local.reverse_in_test;
    bitmap.duplicate_in_test += local.duplicate_in_test;
    bitmap.reverse_duplicate_in_test += local.reverse_duplicate_in_test;
  }
  return bitmap;
}

std::string RedundancyCaseName(uint8_t case_index) {
  std::string name(4, '0');
  for (int bit = 0; bit < 4; ++bit) {
    if (case_index & (1 << (3 - bit))) name[static_cast<size_t>(bit)] = '1';
  }
  return name;
}

}  // namespace kgc
