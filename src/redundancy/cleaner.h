// Dataset cleaning: constructs the de-leaked counterparts of a benchmark,
// following the published procedures (paper §5.1):
//
//   FB15k-237  : drop one relation from every duplicate / reverse-duplicate
//                (incl. semantic reverse) pair, then remove valid/test
//                triples whose entity pair is directly linked in training
//                through any relation (Toutanova & Chen 2015).
//   WN18RR     : keep one relation from each reverse pair; symmetric
//                relations are retained (their residual leakage is one of
//                the paper's observations).
//   YAGO3-10-DR: drop the duplicate relation (playsFor), de-duplicate the
//                symmetric relations' training pairs, and remove valid/test
//                symmetric triples whose entity pair is linked in training.

#ifndef KGC_REDUNDANCY_CLEANER_H_
#define KGC_REDUNDANCY_CLEANER_H_

#include <string>
#include <vector>

#include "kg/dataset.h"
#include "redundancy/leakage.h"

namespace kgc {

/// Report of what a cleaning pass removed.
struct CleaningReport {
  std::vector<RelationId> dropped_relations;
  size_t train_removed = 0;
  size_t valid_removed = 0;
  size_t test_removed = 0;
};

/// FB15k -> FB15k-237 style cleaning. The catalog is typically obtained from
/// RedundancyCatalog::Detect on the training store. Of every redundant pair
/// the relation with fewer training triples is dropped.
Dataset MakeFb237Like(const Dataset& original, const RedundancyCatalog& catalog,
                      std::string name, CleaningReport* report = nullptr);

/// WN18 -> WN18RR style cleaning: only reverse pairs between *distinct*
/// relations are collapsed; symmetric relations survive untouched.
Dataset MakeWn18rrLike(const Dataset& original,
                       const RedundancyCatalog& catalog, std::string name,
                       CleaningReport* report = nullptr);

/// YAGO3-10 -> YAGO3-10-DR style cleaning (paper §5.1(8)).
Dataset MakeYagoDrLike(const Dataset& original,
                       const RedundancyCatalog& catalog, std::string name,
                       CleaningReport* report = nullptr);

}  // namespace kgc

#endif  // KGC_REDUNDANCY_CLEANER_H_
