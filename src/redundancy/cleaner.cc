#include "redundancy/cleaner.h"

#include <unordered_set>

namespace kgc {
namespace {

// Of each redundant pair keeps the relation with more training triples
// (ties keep the smaller id). Returns the set of relations to drop.
std::unordered_set<RelationId> PickDrops(
    const TripleStore& train,
    const std::vector<RelationPairOverlap>& pairs) {
  std::unordered_set<RelationId> drops;
  for (const RelationPairOverlap& pair : pairs) {
    if (pair.r1 == pair.r2) continue;
    // If one side was already dropped by an earlier pair, the other side is
    // kept -- transitively chained duplicates collapse onto one survivor.
    if (drops.contains(pair.r1) || drops.contains(pair.r2)) continue;
    const size_t size1 = train.RelationSize(pair.r1);
    const size_t size2 = train.RelationSize(pair.r2);
    drops.insert(size1 >= size2 ? pair.r2 : pair.r1);
  }
  return drops;
}

TripleList FilterRelations(const TripleList& triples,
                           const std::unordered_set<RelationId>& drops,
                           size_t* removed) {
  TripleList kept;
  kept.reserve(triples.size());
  for (const Triple& t : triples) {
    if (drops.contains(t.relation)) {
      ++*removed;
    } else {
      kept.push_back(t);
    }
  }
  return kept;
}

// Removes triples whose entity pair is linked (either direction) in `train`.
TripleList FilterLinked(const TripleList& triples, const TripleStore& train,
                        size_t* removed) {
  TripleList kept;
  kept.reserve(triples.size());
  for (const Triple& t : triples) {
    if (train.AnyRelationLinks(t.head, t.tail) ||
        train.AnyRelationLinks(t.tail, t.head)) {
      ++*removed;
    } else {
      kept.push_back(t);
    }
  }
  return kept;
}

void RecordDrops(const std::unordered_set<RelationId>& drops,
                 CleaningReport* report) {
  if (report == nullptr) return;
  report->dropped_relations.assign(drops.begin(), drops.end());
}

}  // namespace

Dataset MakeFb237Like(const Dataset& original,
                      const RedundancyCatalog& catalog, std::string name,
                      CleaningReport* report) {
  const TripleStore& train = original.train_store();
  // Duplicate, reverse and reverse-duplicate pairs are all collapsed.
  std::vector<RelationPairOverlap> pairs = catalog.duplicate_pairs;
  pairs.insert(pairs.end(), catalog.reverse_pairs.begin(),
               catalog.reverse_pairs.end());
  pairs.insert(pairs.end(), catalog.reverse_duplicate_pairs.begin(),
               catalog.reverse_duplicate_pairs.end());
  const std::unordered_set<RelationId> drops = PickDrops(train, pairs);
  RecordDrops(drops, report);

  CleaningReport local;
  CleaningReport* r = report != nullptr ? report : &local;
  TripleList new_train = FilterRelations(original.train(), drops,
                                         &r->train_removed);
  TripleList new_valid = FilterRelations(original.valid(), drops,
                                         &r->valid_removed);
  TripleList new_test = FilterRelations(original.test(), drops,
                                        &r->test_removed);

  // Re-index training after relation drops, then remove valid/test triples
  // whose entity pair is directly linked in training.
  TripleStore cleaned_train(new_train, original.num_entities(),
                            original.num_relations());
  new_valid = FilterLinked(new_valid, cleaned_train, &r->valid_removed);
  new_test = FilterLinked(new_test, cleaned_train, &r->test_removed);

  return Dataset(std::move(name), original.vocab(), std::move(new_train),
                 std::move(new_valid), std::move(new_test));
}

Dataset MakeWn18rrLike(const Dataset& original,
                       const RedundancyCatalog& catalog, std::string name,
                       CleaningReport* report) {
  const TripleStore& train = original.train_store();
  const std::unordered_set<RelationId> drops =
      PickDrops(train, catalog.reverse_pairs);
  RecordDrops(drops, report);

  CleaningReport local;
  CleaningReport* r = report != nullptr ? report : &local;
  TripleList new_train = FilterRelations(original.train(), drops,
                                         &r->train_removed);
  TripleList new_valid = FilterRelations(original.valid(), drops,
                                         &r->valid_removed);
  TripleList new_test = FilterRelations(original.test(), drops,
                                        &r->test_removed);
  return Dataset(std::move(name), original.vocab(), std::move(new_train),
                 std::move(new_valid), std::move(new_test));
}

Dataset MakeYagoDrLike(const Dataset& original,
                       const RedundancyCatalog& catalog, std::string name,
                       CleaningReport* report) {
  const TripleStore& train = original.train_store();
  const std::unordered_set<RelationId> drops =
      PickDrops(train, catalog.duplicate_pairs);
  RecordDrops(drops, report);

  CleaningReport local;
  CleaningReport* r = report != nullptr ? report : &local;
  TripleList new_train = FilterRelations(original.train(), drops,
                                         &r->train_removed);
  TripleList new_valid = FilterRelations(original.valid(), drops,
                                         &r->valid_removed);
  TripleList new_test = FilterRelations(original.test(), drops,
                                        &r->test_removed);

  std::unordered_set<RelationId> symmetric(
      catalog.symmetric_relations.begin(), catalog.symmetric_relations.end());

  // In training, keep only one direction of each symmetric pair.
  {
    std::unordered_set<Triple, TripleHash> kept_set;
    TripleList deduped;
    deduped.reserve(new_train.size());
    for (const Triple& t : new_train) {
      if (symmetric.contains(t.relation)) {
        const Triple reversed{t.tail, t.relation, t.head};
        if (kept_set.contains(reversed)) {
          ++r->train_removed;
          continue;
        }
        kept_set.insert(t);
      }
      deduped.push_back(t);
    }
    new_train = std::move(deduped);
  }

  // Remove valid/test symmetric triples whose entity pair is linked in the
  // (deduplicated) training set.
  TripleStore cleaned_train(new_train, original.num_entities(),
                            original.num_relations());
  auto filter_symmetric = [&](TripleList& split, size_t* removed) {
    TripleList kept;
    kept.reserve(split.size());
    for (const Triple& t : split) {
      if (symmetric.contains(t.relation) &&
          (cleaned_train.AnyRelationLinks(t.head, t.tail) ||
           cleaned_train.AnyRelationLinks(t.tail, t.head))) {
        ++*removed;
      } else {
        kept.push_back(t);
      }
    }
    split = std::move(kept);
  };
  filter_symmetric(new_valid, &r->valid_removed);
  filter_symmetric(new_test, &r->test_removed);

  return Dataset(std::move(name), original.vocab(), std::move(new_train),
                 std::move(new_valid), std::move(new_test));
}

}  // namespace kgc
