#include "redundancy/detectors.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace kgc {
namespace {

obs::Counter& PairsComparedCounter() {
  static obs::Counter& counter =
      obs::Registry::Get().GetCounter(obs::kRedundancyPairsCompared);
  return counter;
}

obs::Counter& PairsFlaggedCounter() {
  static obs::Counter& counter =
      obs::Registry::Get().GetCounter(obs::kRedundancyPairsFlagged);
  return counter;
}

// Runs body(r) for every relation id in [0, num_relations), statically
// sharded across threads; each shard appends matches to its own vector and
// the shard vectors are concatenated in shard order, which reproduces the
// exact output sequence of the serial ascending-id sweep.
template <typename Evidence, typename Body>
std::vector<Evidence> ParallelRelationSweep(int32_t num_relations,
                                            int threads, const Body& body) {
  const size_t n =
      num_relations > 0 ? static_cast<size_t>(num_relations) : size_t{0};
  std::vector<std::vector<Evidence>> local(
      static_cast<size_t>(std::max(PlannedShards(n, threads), 1)));
  ParallelFor(n, threads, [&](size_t begin, size_t end, int shard) {
    std::vector<Evidence>& out = local[static_cast<size_t>(shard)];
    for (size_t r = begin; r < end; ++r) {
      body(static_cast<RelationId>(r), out);
    }
  });
  std::vector<Evidence> result;
  for (std::vector<Evidence>& shard_out : local) {
    result.insert(result.end(), shard_out.begin(), shard_out.end());
  }
  return result;
}

// Iterates over the smaller set for intersection counting.
size_t IntersectionCount(const PairSetView& a, const PairSetView& b,
                         bool reverse_b) {
  const PairSetView& small = a.size() <= b.size() ? a : b;
  const PairSetView& large = a.size() <= b.size() ? b : a;
  // When probing with reversal, the probe key must be flipped regardless of
  // which set we iterate (reversal is an involution, so |A ∩ B⁻¹| can be
  // counted by flipping the iterated element either way).
  size_t count = 0;
  for (uint64_t key : small) {
    uint64_t probe = key;
    if (reverse_b) {
      const auto [h, t] = UnpackPair(key);
      probe = PackPair(t, h);
    }
    if (large.contains(probe)) ++count;
  }
  return count;
}

}  // namespace

size_t PairIntersectionSize(const PairSetView& a, const PairSetView& b) {
  return IntersectionCount(a, b, /*reverse_b=*/false);
}

size_t PairReverseIntersectionSize(const PairSetView& a,
                                   const PairSetView& b) {
  return IntersectionCount(a, b, /*reverse_b=*/true);
}

namespace {

std::vector<RelationPairOverlap> FindOverlappingPairs(
    const TripleStore& store, const DetectorOptions& options,
    bool reversed) {
  const int32_t num_relations = store.num_relations();
  // Candidate pruning: a pair can only pass both thresholds if the relations
  // share at least one subject-object pair; index pairs by one member entity
  // would be overkill at our scale, so we do the quadratic sweep with an
  // early size-ratio cut: if |r1| * θ1 > |r2| the overlap |T∩| ≤ |r2| cannot
  // reach θ1·|r1|. The sweep is sharded over r1; each r1 scans r2 > r1.
  return ParallelRelationSweep<RelationPairOverlap>(
      num_relations, options.threads,
      [&](RelationId r1, std::vector<RelationPairOverlap>& out) {
        const PairSetView pairs1 = store.Pairs(r1);
        if (pairs1.size() < options.min_relation_size) return;
        size_t compared = 0;
        for (RelationId r2 = r1 + 1; r2 < num_relations; ++r2) {
          const PairSetView pairs2 = store.Pairs(r2);
          if (pairs2.size() < options.min_relation_size) continue;
          const double size1 = static_cast<double>(pairs1.size());
          const double size2 = static_cast<double>(pairs2.size());
          if (size2 < options.theta1 * size1 ||
              size1 < options.theta2 * size2) {
            continue;
          }
          ++compared;
          const size_t overlap = IntersectionCount(pairs1, pairs2, reversed);
          RelationPairOverlap stat;
          stat.r1 = r1;
          stat.r2 = r2;
          stat.coverage_r1 = static_cast<double>(overlap) / size1;
          stat.coverage_r2 = static_cast<double>(overlap) / size2;
          if (stat.coverage_r1 > options.theta1 &&
              stat.coverage_r2 > options.theta2) {
            out.push_back(stat);
          }
        }
        // Per-r1 totals are independent of the shard plan, so the counter
        // stays bit-identical across thread counts.
        PairsComparedCounter().Add(compared);
      });
}

}  // namespace

std::vector<RelationPairOverlap> FindDuplicateRelations(
    const TripleStore& store, const DetectorOptions& options) {
  obs::TraceSpan span("find_duplicate_relations");
  std::vector<RelationPairOverlap> result =
      FindOverlappingPairs(store, options, /*reversed=*/false);
  PairsFlaggedCounter().Add(result.size());
  return result;
}

std::vector<RelationPairOverlap> FindReverseDuplicateRelations(
    const TripleStore& store, const DetectorOptions& options) {
  obs::TraceSpan span("find_reverse_duplicates");
  std::vector<RelationPairOverlap> result =
      FindOverlappingPairs(store, options, /*reversed=*/true);
  PairsFlaggedCounter().Add(result.size());
  return result;
}

std::vector<RelationPairOverlap> FindSymmetricRelations(
    const TripleStore& store, const DetectorOptions& options) {
  obs::TraceSpan span("find_symmetric_relations");
  std::vector<RelationPairOverlap> result =
      ParallelRelationSweep<RelationPairOverlap>(
      store.num_relations(), options.threads,
      [&](RelationId r, std::vector<RelationPairOverlap>& out) {
        const PairSetView pairs = store.Pairs(r);
        if (pairs.size() < options.min_relation_size) return;
        PairsComparedCounter().Increment();
        const size_t overlap = PairReverseIntersectionSize(pairs, pairs);
        const double coverage =
            static_cast<double>(overlap) / static_cast<double>(pairs.size());
        if (coverage > options.theta1) {
          RelationPairOverlap stat;
          stat.r1 = r;
          stat.r2 = r;
          stat.coverage_r1 = coverage;
          stat.coverage_r2 = coverage;
          out.push_back(stat);
        }
      });
  PairsFlaggedCounter().Add(result.size());
  return result;
}

std::vector<CartesianEvidence> FindCartesianRelations(
    const TripleStore& store, const DetectorOptions& options) {
  obs::TraceSpan span("find_cartesian_relations");
  std::vector<CartesianEvidence> result =
      ParallelRelationSweep<CartesianEvidence>(
      store.num_relations(), options.threads,
      [&](RelationId r, std::vector<CartesianEvidence>& out) {
        const size_t size = store.RelationSize(r);
        if (size < options.min_relation_size) return;
        PairsComparedCounter().Increment();
        CartesianEvidence evidence;
        evidence.relation = r;
        evidence.num_triples = size;
        evidence.num_subjects = store.Subjects(r).size();
        evidence.num_objects = store.Objects(r).size();
        evidence.density =
            static_cast<double>(size) /
            (static_cast<double>(evidence.num_subjects) *
             static_cast<double>(evidence.num_objects));
        if (evidence.density > options.cartesian_density) {
          out.push_back(evidence);
        }
      });
  PairsFlaggedCounter().Add(result.size());
  return result;
}

}  // namespace kgc
