#include "redundancy/detectors.h"

namespace kgc {
namespace {

// Iterates over the smaller set for intersection counting.
size_t IntersectionCount(const PairSet& a, const PairSet& b, bool reverse_b) {
  const PairSet& small = a.size() <= b.size() ? a : b;
  const PairSet& large = a.size() <= b.size() ? b : a;
  // When probing with reversal, the probe key must be flipped regardless of
  // which set we iterate (reversal is an involution, so |A ∩ B⁻¹| can be
  // counted by flipping the iterated element either way).
  size_t count = 0;
  for (uint64_t key : small) {
    uint64_t probe = key;
    if (reverse_b) {
      const auto [h, t] = UnpackPair(key);
      probe = PackPair(t, h);
    }
    if (large.contains(probe)) ++count;
  }
  return count;
}

}  // namespace

size_t PairIntersectionSize(const PairSet& a, const PairSet& b) {
  return IntersectionCount(a, b, /*reverse_b=*/false);
}

size_t PairReverseIntersectionSize(const PairSet& a, const PairSet& b) {
  return IntersectionCount(a, b, /*reverse_b=*/true);
}

namespace {

std::vector<RelationPairOverlap> FindOverlappingPairs(
    const TripleStore& store, const DetectorOptions& options,
    bool reversed) {
  std::vector<RelationPairOverlap> result;
  const int32_t num_relations = store.num_relations();
  // Candidate pruning: a pair can only pass both thresholds if the relations
  // share at least one subject-object pair; index pairs by one member entity
  // would be overkill at our scale, so we do the quadratic sweep with an
  // early size-ratio cut: if |r1| * θ1 > |r2| the overlap |T∩| ≤ |r2| cannot
  // reach θ1·|r1|.
  for (RelationId r1 = 0; r1 < num_relations; ++r1) {
    const PairSet& pairs1 = store.Pairs(r1);
    if (pairs1.size() < options.min_relation_size) continue;
    for (RelationId r2 = r1 + 1; r2 < num_relations; ++r2) {
      const PairSet& pairs2 = store.Pairs(r2);
      if (pairs2.size() < options.min_relation_size) continue;
      const double size1 = static_cast<double>(pairs1.size());
      const double size2 = static_cast<double>(pairs2.size());
      if (size2 < options.theta1 * size1 || size1 < options.theta2 * size2) {
        continue;
      }
      const size_t overlap = IntersectionCount(pairs1, pairs2, reversed);
      RelationPairOverlap stat;
      stat.r1 = r1;
      stat.r2 = r2;
      stat.coverage_r1 = static_cast<double>(overlap) / size1;
      stat.coverage_r2 = static_cast<double>(overlap) / size2;
      if (stat.coverage_r1 > options.theta1 &&
          stat.coverage_r2 > options.theta2) {
        result.push_back(stat);
      }
    }
  }
  return result;
}

}  // namespace

std::vector<RelationPairOverlap> FindDuplicateRelations(
    const TripleStore& store, const DetectorOptions& options) {
  return FindOverlappingPairs(store, options, /*reversed=*/false);
}

std::vector<RelationPairOverlap> FindReverseDuplicateRelations(
    const TripleStore& store, const DetectorOptions& options) {
  return FindOverlappingPairs(store, options, /*reversed=*/true);
}

std::vector<RelationPairOverlap> FindSymmetricRelations(
    const TripleStore& store, const DetectorOptions& options) {
  std::vector<RelationPairOverlap> result;
  for (RelationId r = 0; r < store.num_relations(); ++r) {
    const PairSet& pairs = store.Pairs(r);
    if (pairs.size() < options.min_relation_size) continue;
    const size_t overlap = PairReverseIntersectionSize(pairs, pairs);
    const double coverage =
        static_cast<double>(overlap) / static_cast<double>(pairs.size());
    if (coverage > options.theta1) {
      RelationPairOverlap stat;
      stat.r1 = r;
      stat.r2 = r;
      stat.coverage_r1 = coverage;
      stat.coverage_r2 = coverage;
      result.push_back(stat);
    }
  }
  return result;
}

std::vector<CartesianEvidence> FindCartesianRelations(
    const TripleStore& store, const DetectorOptions& options) {
  std::vector<CartesianEvidence> result;
  for (RelationId r = 0; r < store.num_relations(); ++r) {
    const size_t size = store.RelationSize(r);
    if (size < options.min_relation_size) continue;
    CartesianEvidence evidence;
    evidence.relation = r;
    evidence.num_triples = size;
    evidence.num_subjects = store.Subjects(r).size();
    evidence.num_objects = store.Objects(r).size();
    evidence.density =
        static_cast<double>(size) /
        (static_cast<double>(evidence.num_subjects) *
         static_cast<double>(evidence.num_objects));
    if (evidence.density > options.cartesian_density) {
      result.push_back(evidence);
    }
  }
  return result;
}

}  // namespace kgc
