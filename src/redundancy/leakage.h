// Reverse-triple leakage statistics (paper §4.2.1) and the per-test-triple
// redundancy bitmap (paper Figure 4).

#ifndef KGC_REDUNDANCY_LEAKAGE_H_
#define KGC_REDUNDANCY_LEAKAGE_H_

#include <array>
#include <vector>

#include "kg/dataset.h"
#include "redundancy/detectors.h"

namespace kgc {

/// The set of relation-level redundancy facts used to classify triples.
/// Can be built from detectors (data-driven) or from generator metadata
/// (oracle, mirroring Freebase's reverse_property).
struct RedundancyCatalog {
  /// Semantic reverse relation pairs (Freebase reverse_property analogue);
  /// order irrelevant. The purely data-driven detector cannot distinguish
  /// these from reverse duplicates, so Detect() puts every reversed-overlap
  /// pair here and leaves reverse_duplicate_pairs empty; oracle catalogs
  /// split the two (paper §4.2.2 treats them as distinct categories).
  std::vector<RelationPairOverlap> reverse_pairs;
  /// Duplicate relation pairs.
  std::vector<RelationPairOverlap> duplicate_pairs;
  /// Reverse-duplicate relation pairs (high reversed overlap without being
  /// semantic reverses).
  std::vector<RelationPairOverlap> reverse_duplicate_pairs;
  /// Self-reciprocal relations.
  std::vector<RelationId> symmetric_relations;

  /// Builds a catalog by running all detectors on `store`.
  static RedundancyCatalog Detect(const TripleStore& store,
                                  const DetectorOptions& options = {});

  /// Relations related to `r` by a semantic reverse pairing.
  std::vector<RelationId> ReversePartners(RelationId r) const;
  /// Relations related to `r` by a duplicate pairing.
  std::vector<RelationId> DuplicatePartners(RelationId r) const;
  /// Relations related to `r` by a reverse-duplicate pairing.
  std::vector<RelationId> ReverseDuplicatePartners(RelationId r) const;
  bool IsSymmetric(RelationId r) const;
};

/// §4.2.1 headline statistics.
struct ReverseLeakageStats {
  /// Triples in the training set whose reverse (under the catalog) is also
  /// in the training set, and the fraction of the training set they form.
  size_t train_triples_in_reverse_pairs = 0;
  double train_reverse_fraction = 0.0;
  /// Test triples whose reverse exists in the training set.
  size_t test_triples_with_reverse_in_train = 0;
  double test_reverse_fraction = 0.0;
};

/// Computes reverse-pair leakage between/within splits. `threads` shards the
/// per-triple sweep (0 = KGC_THREADS / hardware default); the stats are
/// bit-identical for any value.
ReverseLeakageStats ComputeReverseLeakage(const Dataset& dataset,
                                          const RedundancyCatalog& catalog,
                                          int threads = 0);

/// Figure-4 bitmap. Bit order follows the paper's notation "wxyz":
///   bit 3 (w): reverse triple in the training set
///   bit 2 (x): duplicate or reverse-duplicate triple in the training set
///   bit 1 (y): reverse triple in the test set
///   bit 0 (z): duplicate or reverse-duplicate triple in the test set
/// e.g. 0b1000 = "1000": only a reverse triple in training.
struct RedundancyBitmap {
  /// Case index (0..15) per test triple, aligned with dataset.test().
  std::vector<uint8_t> cases;
  /// Histogram over the 16 cases.
  std::array<size_t, 16> histogram = {};

  /// Count of test triples with a reverse / duplicate / reverse-duplicate
  /// triple in the training set (paper: 41,529 / 2,701 / 1,847 for FB15k).
  size_t reverse_in_train = 0;
  size_t duplicate_in_train = 0;
  size_t reverse_duplicate_in_train = 0;
  /// Same, within the test set itself (paper: 4,992 / 328 / 249).
  size_t reverse_in_test = 0;
  size_t duplicate_in_test = 0;
  size_t reverse_duplicate_in_test = 0;
};

/// Classifies every test triple of `dataset` (paper Figure 4). `threads`
/// shards the per-triple classification (0 = KGC_THREADS / hardware
/// default); the bitmap is bit-identical for any value.
RedundancyBitmap ComputeRedundancyBitmap(const Dataset& dataset,
                                         const RedundancyCatalog& catalog,
                                         int threads = 0);

/// Renders a case index as the paper's 4-character code, e.g. "1100".
std::string RedundancyCaseName(uint8_t case_index);

/// True if the test triple at `index` has any redundant counterpart in the
/// training set (bits 3 or 2).
inline bool HasTrainRedundancy(uint8_t case_index) {
  return (case_index & 0b1100) != 0;
}

}  // namespace kgc

#endif  // KGC_REDUNDANCY_LEAKAGE_H_
