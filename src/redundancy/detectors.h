// Data-driven detectors for the relation pathologies the paper studies.
//
// All detectors operate purely on observable triple statistics (never on
// generator metadata), exactly as §4.2.2 and §4.3 of the paper prescribe:
//
//   duplicate relations       : |T_r1 ∩ T_r2|   / |r1| > θ1 and  ... / |r2| > θ2
//   reverse-duplicate (incl.
//   semantic reverses)        : |T_r1 ∩ T_r2⁻¹| / |r1| > θ1 and  ... / |r2| > θ2
//   symmetric relations       : |T_r  ∩ T_r⁻¹|  / |r|  > θ
//   Cartesian product         : |r| / (|S_r| · |O_r|) > δ

#ifndef KGC_REDUNDANCY_DETECTORS_H_
#define KGC_REDUNDANCY_DETECTORS_H_

#include <vector>

#include "kg/triple_store.h"

namespace kgc {

/// Overlap evidence for a pair of relations (r1 < r2).
struct RelationPairOverlap {
  RelationId r1 = -1;
  RelationId r2 = -1;
  /// |T_r1 ∩ T_r2| / |r1| (or with T_r2⁻¹ for the reverse variant).
  double coverage_r1 = 0.0;
  /// |T_r1 ∩ T_r2| / |r2|.
  double coverage_r2 = 0.0;
};

/// Cartesian-product evidence for one relation.
struct CartesianEvidence {
  RelationId relation = -1;
  size_t num_triples = 0;
  size_t num_subjects = 0;
  size_t num_objects = 0;
  /// |r| / (|S_r| x |O_r|).
  double density = 0.0;
};

/// Detector thresholds (paper defaults: θ1 = θ2 = 0.8, δ = 0.8).
struct DetectorOptions {
  double theta1 = 0.8;
  double theta2 = 0.8;
  double cartesian_density = 0.8;
  /// Relations smaller than this are skipped (the paper drops single-triple
  /// relations before Cartesian detection).
  size_t min_relation_size = 2;
  /// Worker threads for the per-relation-pair overlap sweeps (0 =
  /// KGC_THREADS / hardware default; see util/parallel.h). Detector output
  /// is bit-identical for any value.
  int threads = 0;
};

/// |A ∩ B| for two packed pair sets.
size_t PairIntersectionSize(const PairSetView& a, const PairSetView& b);

/// |A ∩ B⁻¹| where B⁻¹ flips every pair of B.
size_t PairReverseIntersectionSize(const PairSetView& a, const PairSetView& b);

/// Finds (near-)duplicate relation pairs: subject-object pair sets overlap
/// above both thresholds. Pairs are returned with r1 < r2.
std::vector<RelationPairOverlap> FindDuplicateRelations(
    const TripleStore& store, const DetectorOptions& options = {});

/// Finds reverse-duplicate relation pairs: r1's pairs overlap r2's reversed
/// pairs. Semantic reverse pairs (has_part/part_of) are the extreme case.
/// Pairs are returned with r1 < r2; r1 == r2 cases are excluded (see
/// FindSymmetricRelations).
std::vector<RelationPairOverlap> FindReverseDuplicateRelations(
    const TripleStore& store, const DetectorOptions& options = {});

/// Finds self-reciprocal (symmetric) relations: a large fraction of a
/// relation's pairs appear reversed within the same relation.
std::vector<RelationPairOverlap> FindSymmetricRelations(
    const TripleStore& store, const DetectorOptions& options = {});

/// Finds Cartesian product relations by subject-object density (§4.3(2)).
std::vector<CartesianEvidence> FindCartesianRelations(
    const TripleStore& store, const DetectorOptions& options = {});

}  // namespace kgc

#endif  // KGC_REDUNDANCY_DETECTORS_H_
