#include "obs/clock.h"

#include <chrono>
#include <ctime>

namespace kgc::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point Epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

}  // namespace

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Epoch())
      .count();
}

double SteadyNowMs() { return static_cast<double>(SteadyNowNs()) * 1e-6; }

std::string Iso8601UtcNow() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

}  // namespace kgc::obs
