// Tiny JSON rendering helpers shared by the trace and report exporters.
// Internal to src/obs — not a general-purpose JSON library.

#ifndef KGC_OBS_JSON_H_
#define KGC_OBS_JSON_H_

#include <cstdio>
#include <string>

namespace kgc::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number. NaN / infinity (not representable in
/// JSON) degrade to 0 so the output always parses.
inline std::string JsonDouble(double value) {
  if (!(value == value) || value > 1.7e308 || value < -1.7e308) {
    return "0";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace kgc::obs

#endif  // KGC_OBS_JSON_H_
