#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace kgc::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(edges_.size() + 1);
  for (size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  size_t bucket = edges_.size();  // overflow unless an edge matches
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (value <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) {
    // Fixed-point micro-unit sum. Converting via llround(value * 1e6) is
    // undefined beyond int64 range and the plain fetch_add used to wrap —
    // both clamp now, and the clamp is counted.
    int64_t micros;
    if (value >= 0.0) {
      micros = MicrosFromSecondsSaturated(value);
    } else {
      micros = -MicrosFromSecondsSaturated(-value);
    }
    if (SaturatingFetchAdd(sum_micros_, micros)) {
      sum_saturations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Histogram::ResetForTest() {
  for (size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
  sum_saturations_.store(0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(std::max(count, 0)));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

namespace {

// 100us .. ~26s in x4 steps: wide enough for both per-shard ranking slices
// and full training epochs on the scaled synthetic datasets.
std::vector<double> DefaultLatencyBuckets() {
  return ExponentialBuckets(1e-4, 4.0, 10);
}

}  // namespace

Registry::Registry() {
  // Pre-register the canonical schema (see header).
  for (const char* name :
       {kTrainerEpochs, kTrainerExamples, kTrainerNegatives,
        kTrainerCheckpointSaves, kTrainerResumes, kRankerSweeps,
        kRankerTriplesRanked, kRankerScoreEvals, kRankerQueryCacheHits,
        kRankerQueryCacheMisses, kTopKTilesPruned, kTopKEntitiesScored,
        kTopKHeapPushes, kTopKQueriesBatched, kRedundancyPairsCompared,
        kRedundancyPairsFlagged, kRedundancyTriplesClassified,
        kAmieCandidates, kAmieRulesKept, kCacheModelHits, kCacheModelMisses,
        kCacheRankHits, kCacheRankMisses, kCacheQuarantined,
        kCacheRegenerated, kCacheStoreUnusable, kFaultsInjected,
        kDeadlineExpired, kIngestRejectedFiles, kIngestRejectedLines,
        kStoreProbeBatchHits, kStoreProbeBatchMisses,
        kSnapshotPublished, kSnapshotRollbacks, kSnapshotRecoveries,
        kSnapshotOrphansSwept, kSnapshotBatchesIngested,
        kSnapshotBatchesQuarantined, kSnapshotDeltaTriples,
        kSnapshotColdStarts, kSnapshotReaderSwaps, kSnapshotRepinRetries,
        kServeRequests, kServeRepliesOk, kServeShed, kServeDeadlineExceeded,
        kServeMalformed, kServeDegraded, kServeSlowClientDrops,
        kServeConnsAccepted, kServeConnsRejected, kServeDrained}) {
    counters_.emplace(name, std::make_unique<Counter>());
  }
  gauges_.emplace(kTrainerLastLoss, std::make_unique<Gauge>());
  gauges_.emplace(kSnapshotCurrentGeneration, std::make_unique<Gauge>());
  gauges_.emplace(kStoreBytesPerTriple, std::make_unique<Gauge>());
  gauges_.emplace(kStorePeakRssBytes, std::make_unique<Gauge>());
  gauges_.emplace(kServeQueueDepth, std::make_unique<Gauge>());
  // Batch occupancy is a small-integer distribution, not a duration: plain
  // power-of-two edges beat the latency-shaped defaults.
  histograms_.emplace(kServeBatchSize,
                      std::make_unique<Histogram>(std::vector<double>{
                          1, 2, 4, 8, 16, 32, 64, 128}));
  // Wall-clock durations use the log-linear HDR layout: one shape covers
  // microsecond shards and multi-second epochs at ~3% relative precision.
  for (const char* name : {kTrainerEpochSeconds, kRankerShardSeconds,
                           kSnapshotReaderSwapSeconds, kServeRequestSeconds,
                           kServeBatchSeconds}) {
    durations_.emplace(name, std::make_unique<HdrHistogram>());
  }
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (edges.empty()) edges = DefaultLatencyBuckets();
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(edges)))
             .first;
  }
  return *it->second;
}

HdrHistogram& Registry::GetDurationHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = durations_.find(name);
  if (it == durations_.end()) {
    it = durations_.emplace(name, std::make_unique<HdrHistogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value(), gauge->is_set()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.edges = histogram->edges();
    sample.buckets.reserve(sample.edges.size() + 1);
    for (size_t i = 0; i <= sample.edges.size(); ++i) {
      sample.buckets.push_back(histogram->bucket_count(i));
    }
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  snapshot.durations.reserve(durations_.size());
  for (const auto& [name, hdr] : durations_) {
    DurationSample sample;
    sample.name = name;
    sample.count = hdr->count();
    sample.sum = hdr->sum();
    sample.sum_saturations = hdr->sum_saturations();
    sample.p50 = hdr->Quantile(0.50);
    sample.p90 = hdr->Quantile(0.90);
    sample.p99 = hdr->Quantile(0.99);
    sample.p999 = hdr->Quantile(0.999);
    sample.min = hdr->MinEstimate();
    sample.max = hdr->MaxEstimate();
    snapshot.durations.push_back(std::move(sample));
  }
  return snapshot;
}

void Registry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->ResetForTest();
  for (const auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (const auto& [name, histogram] : histograms_) {
    histogram->ResetForTest();
  }
  for (const auto& [name, hdr] : durations_) hdr->ResetForTest();
}

}  // namespace kgc::obs
