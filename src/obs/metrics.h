// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, cheap enough to update from the scoring loop.
//
// Layering: this module depends only on the C++ standard library, so even
// the lowest layers (util/file_util, util/fault_injector, util/parallel)
// can record telemetry without a dependency cycle.
//
// Hot-path pattern — resolve the handle once, update it lock-free forever:
//
//   static obs::Counter& ranked =
//       obs::Registry::Get().GetCounter(obs::kRankerTriplesRanked);
//   ...
//   ranked.Add(end - begin);   // one relaxed atomic add
//
// Determinism contract: counter updates are integer additions, which
// commute, so as long as the instrumented work itself is thread-count
// independent (the execution engine's "same bytes out" contract), every
// counter's final value is bit-identical across KGC_THREADS settings.
// Histograms of wall-clock durations are timing-domain and excluded from
// that contract (their counts can legitimately vary with the shard plan).
//
// Registration is mutex-guarded and idempotent; returned references stay
// valid for the process lifetime (ResetAllForTest zeroes values in place,
// it never invalidates handles).

#ifndef KGC_OBS_METRICS_H_
#define KGC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.h"

namespace kgc::obs {

/// Monotonically increasing event count. Lock-free; relaxed ordering is
/// sufficient because readers only ever snapshot after the instrumented
/// work has been joined.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. final training loss). Tracks whether it was
/// ever set so reports can distinguish "0.0" from "never touched".
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
    set_.store(true, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool is_set() const { return set_.load(std::memory_order_relaxed); }
  void ResetForTest() {
    value_.store(0.0, std::memory_order_relaxed);
    set_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<bool> set_{false};
};

/// Fixed-bucket histogram: bucket i counts observations <= edges[i] (first
/// matching edge); one extra overflow bucket counts the rest. The running
/// sum is accumulated in fixed-point micro-units so that, like the bucket
/// counts, it is an order-independent integer sum.
class Histogram {
 public:
  /// `edges` must be strictly ascending; an empty list yields a histogram
  /// with only the overflow bucket (count/sum still work).
  explicit Histogram(std::vector<double> edges);

  void Observe(double value);

  const std::vector<double>& edges() const { return edges_; }
  /// Valid indexes: [0, edges().size()]; the last is the overflow bucket.
  uint64_t bucket_count(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observations, to fixed-point (1e-6) resolution. The fixed-point
  /// accumulator saturates at the int64 extremes instead of wrapping;
  /// sum_saturations() counts how many observations were clamped.
  double sum() const {
    return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  uint64_t sum_saturations() const {
    return sum_saturations_.load(std::memory_order_relaxed);
  }
  void ResetForTest();

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_micros_{0};
  std::atomic<uint64_t> sum_saturations_{0};
};

/// `count` ascending bucket edges starting at `start`, each `factor` times
/// the previous (the usual latency-histogram shape).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
  bool is_set = false;
};
struct HistogramSample {
  std::string name;
  std::vector<double> edges;
  std::vector<uint64_t> buckets;  ///< edges.size() + 1 entries (overflow last)
  uint64_t count = 0;
  double sum = 0.0;
};
/// Quantiles extracted exactly from an HdrHistogram's buckets (seconds).
struct DurationSample {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  uint64_t sum_saturations = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<DurationSample> durations;
};

/// Canonical metric names. The registry pre-registers all of them so every
/// run report carries the full schema — zeros included — which keeps
/// BENCH_*.json trajectory diffs stable across runs that skip a subsystem.
inline constexpr char kTrainerEpochs[] = "kgc.trainer.epochs";
inline constexpr char kTrainerExamples[] = "kgc.trainer.examples";
inline constexpr char kTrainerNegatives[] = "kgc.trainer.negatives_sampled";
inline constexpr char kTrainerCheckpointSaves[] =
    "kgc.trainer.checkpoint_saves";
inline constexpr char kTrainerResumes[] = "kgc.trainer.checkpoint_resumes";
inline constexpr char kTrainerLastLoss[] = "kgc.trainer.last_loss";
inline constexpr char kTrainerEpochSeconds[] = "kgc.trainer.epoch_seconds";
inline constexpr char kRankerSweeps[] = "kgc.ranker.sweeps";
inline constexpr char kRankerTriplesRanked[] = "kgc.ranker.triples_ranked";
inline constexpr char kRankerScoreEvals[] = "kgc.ranker.score_evals";
inline constexpr char kRankerQueryCacheHits[] = "kgc.ranker.query_cache_hits";
inline constexpr char kRankerQueryCacheMisses[] =
    "kgc.ranker.query_cache_misses";
inline constexpr char kRankerShardSeconds[] = "kgc.ranker.shard_seconds";
// Top-K retrieval engine (eval/topk): work saved by norm-bound pruning and
// work done by the blocked sweep + heap selection (see EXPERIMENTS.md).
inline constexpr char kTopKTilesPruned[] = "kgc.topk.tiles_pruned";
inline constexpr char kTopKEntitiesScored[] = "kgc.topk.entities_scored";
inline constexpr char kTopKHeapPushes[] = "kgc.topk.heap_pushes";
inline constexpr char kTopKQueriesBatched[] = "kgc.topk.queries_batched";
inline constexpr char kRedundancyPairsCompared[] =
    "kgc.redundancy.pairs_compared";
inline constexpr char kRedundancyPairsFlagged[] =
    "kgc.redundancy.pairs_flagged";
inline constexpr char kRedundancyTriplesClassified[] =
    "kgc.redundancy.triples_classified";
inline constexpr char kAmieCandidates[] = "kgc.amie.candidates";
inline constexpr char kAmieRulesKept[] = "kgc.amie.rules_kept";
inline constexpr char kCacheModelHits[] = "kgc.cache.model_hits";
inline constexpr char kCacheModelMisses[] = "kgc.cache.model_misses";
inline constexpr char kCacheRankHits[] = "kgc.cache.rank_hits";
inline constexpr char kCacheRankMisses[] = "kgc.cache.rank_misses";
inline constexpr char kCacheQuarantined[] = "kgc.cache.quarantined";
inline constexpr char kCacheRegenerated[] = "kgc.cache.regenerated";
inline constexpr char kCacheStoreUnusable[] = "kgc.cache.store_unusable";
inline constexpr char kFaultsInjected[] = "kgc.faults.injected";
inline constexpr char kDeadlineExpired[] = "kgc.deadline.expired";
inline constexpr char kIngestRejectedFiles[] = "kgc.ingest.rejected_files";
inline constexpr char kIngestRejectedLines[] = "kgc.ingest.rejected_lines";
// Storage substrate (kg/triple_store): index footprint and the batched
// membership-probe traffic of filtered ranking.
inline constexpr char kStoreBytesPerTriple[] = "kgc.store.bytes_per_triple";
inline constexpr char kStorePeakRssBytes[] = "kgc.store.peak_rss_bytes";
inline constexpr char kStoreProbeBatchHits[] = "kgc.store.probe_batch_hits";
inline constexpr char kStoreProbeBatchMisses[] =
    "kgc.store.probe_batch_misses";
// Snapshot lifecycle (src/snapshot): generation rotation and live readers.
inline constexpr char kSnapshotPublished[] =
    "kgc.snapshot.generations_published";
inline constexpr char kSnapshotRollbacks[] = "kgc.snapshot.rollbacks";
inline constexpr char kSnapshotRecoveries[] = "kgc.snapshot.recoveries";
inline constexpr char kSnapshotOrphansSwept[] = "kgc.snapshot.orphans_swept";
inline constexpr char kSnapshotBatchesIngested[] =
    "kgc.snapshot.batches_ingested";
inline constexpr char kSnapshotBatchesQuarantined[] =
    "kgc.snapshot.batches_quarantined";
inline constexpr char kSnapshotDeltaTriples[] = "kgc.snapshot.delta_triples";
inline constexpr char kSnapshotColdStarts[] = "kgc.snapshot.cold_starts";
inline constexpr char kSnapshotReaderSwaps[] = "kgc.snapshot.reader_swaps";
inline constexpr char kSnapshotCurrentGeneration[] =
    "kgc.snapshot.current_generation";
inline constexpr char kSnapshotReaderSwapSeconds[] =
    "kgc.snapshot.reader_swap_seconds";
/// Transient CURRENT-read/load failures absorbed by SnapshotReader::Repin's
/// bounded-backoff retry loop (a racing rotation, mid-replace pointer).
inline constexpr char kSnapshotRepinRetries[] = "kgc.snapshot.repin_retries";
// Online serving (src/serve): admission control, deadlines and degradation
// of the kgc_serve request path (see EXPERIMENTS.md for per-metric docs).
inline constexpr char kServeRequests[] = "kgc.serve.requests";
inline constexpr char kServeRepliesOk[] = "kgc.serve.replies_ok";
inline constexpr char kServeShed[] = "kgc.serve.shed";
inline constexpr char kServeDeadlineExceeded[] =
    "kgc.serve.deadline_exceeded";
inline constexpr char kServeMalformed[] = "kgc.serve.malformed";
inline constexpr char kServeDegraded[] = "kgc.serve.degraded";
inline constexpr char kServeSlowClientDrops[] =
    "kgc.serve.slow_client_drops";
inline constexpr char kServeConnsAccepted[] =
    "kgc.serve.connections_accepted";
inline constexpr char kServeConnsRejected[] =
    "kgc.serve.connections_rejected";
inline constexpr char kServeDrained[] = "kgc.serve.drained_requests";
inline constexpr char kServeQueueDepth[] = "kgc.serve.queue_depth";
inline constexpr char kServeBatchSize[] = "kgc.serve.batch_size";
inline constexpr char kServeRequestSeconds[] = "kgc.serve.request_seconds";
inline constexpr char kServeBatchSeconds[] = "kgc.serve.batch_seconds";

class Registry {
 public:
  /// The process-wide registry (created on first use, never destroyed).
  static Registry& Get();

  /// Finds or creates the named metric. The reference stays valid forever.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// For a new histogram `edges` defines the buckets (empty = the default
  /// latency buckets); for an existing one the original edges win.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> edges = {});
  /// HDR duration histogram (obs/hdr_histogram.h) — the right choice for
  /// wall-clock durations, where one fixed edge list cannot cover both a
  /// 50us shard and a 30s epoch. All canonical *_seconds metrics live here.
  HdrHistogram& GetDurationHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place. Handles stay valid.
  void ResetAllForTest();

 private:
  Registry();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<HdrHistogram>> durations_;
};

}  // namespace kgc::obs

#endif  // KGC_OBS_METRICS_H_
