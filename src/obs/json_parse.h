// Minimal JSON parser for the telemetry tooling (tools/kgc_top, tests)
// that reads back the JSON this tree writes (run reports, time-series
// records, trace events). Standard-library-only so it can live in the obs
// layer; strict enough to reject malformed documents, small enough to
// audit. Not a general-purpose JSON library: no streaming, no \uXXXX
// surrogate pairs (escapes decode to '?'), numbers parse as double.

#ifndef KGC_OBS_JSON_PARSE_H_
#define KGC_OBS_JSON_PARSE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace kgc::obs {

struct JsonValueBuilder;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  // std::map keeps keys ordered, which makes tooling output deterministic.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  /// Member lookup on an object; nullptr on missing key or non-object.
  const JsonValue* Find(const std::string& key) const;

  double AsNumber(double fallback = 0.0) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  bool AsBool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }

  /// Parses one complete JSON document. Returns false (and leaves *out
  /// default-constructed) on any syntax error or trailing garbage.
  static bool Parse(std::string_view text, JsonValue* out);

 private:
  friend struct JsonValueBuilder;  // internal assembly (json_parse.cc)

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace kgc::obs

#endif  // KGC_OBS_JSON_PARSE_H_
