// Shared telemetry clocks.
//
// Every obs artifact that carries a time carries two of them:
//
//   - a steady-clock offset from a single process-wide epoch (the first
//     call into this module), so records from one process order and
//     subtract exactly even when the wall clock steps, and
//   - an ISO-8601 UTC wall timestamp, so records from *different*
//     processes (a resumed run, a retried suite attempt) order against
//     each other.
//
// Trace spans, run reports and time-series records all use the same
// epoch, so their timelines correlate directly.

#ifndef KGC_OBS_CLOCK_H_
#define KGC_OBS_CLOCK_H_

#include <cstdint>
#include <string>

namespace kgc::obs {

/// Nanoseconds since the process-wide steady epoch (the first call into
/// this module from any thread). Monotone, never steps.
int64_t SteadyNowNs();

/// SteadyNowNs() in fractional milliseconds.
double SteadyNowMs();

/// Current wall time as "YYYY-MM-DDTHH:MM:SSZ" (UTC, second resolution).
std::string Iso8601UtcNow();

}  // namespace kgc::obs

#endif  // KGC_OBS_CLOCK_H_
