#include "obs/resource_stats.h"

#include <sys/resource.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>

#include "obs/clock.h"
#include "obs/perf_counters.h"

namespace kgc::obs {
namespace {

std::atomic<TelemetryFailpointFn> g_failpoint{nullptr};
std::atomic<const char*> g_procfs_root{nullptr};

const char* ProcfsRoot() {
  const char* root = g_procfs_root.load(std::memory_order_acquire);
  return root != nullptr ? root : "/proc/self";
}

// Parses "<key>: <value>" lines out of /proc/self/io. Returns false when
// the file is unreadable (procfs not mounted, hidepid, sandbox) or the
// failpoint simulates that.
bool ReadProcSelfIo(int64_t* read_bytes, int64_t* write_bytes) {
  if (TelemetryFailpointHit("obs:procfs")) return false;
  const std::string path = std::string(ProcfsRoot()) + "/io";
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  bool saw_read = false;
  bool saw_write = false;
  char line[128];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long value = 0;
    if (std::sscanf(line, "read_bytes: %lld", &value) == 1) {
      *read_bytes = value;
      saw_read = true;
    } else if (std::sscanf(line, "write_bytes: %lld", &value) == 1) {
      *write_bytes = value;
      saw_write = true;
    }
  }
  std::fclose(f);
  return saw_read && saw_write;
}

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

// Per-phase accounting state. One phase is open at a time; opening a new
// one closes the previous, so Deadline::BeginPhase calls partition the run
// without the call sites needing explicit close bookkeeping.
struct OpenPhase {
  std::string name;
  int64_t start_steady_ns = 0;
  ResourceUsage start;
  PerfValues perf_start;
};

std::mutex g_phase_mutex;
std::optional<OpenPhase> g_open_phase;
std::vector<PhaseResourceStats> g_completed_phases;

int64_t PerfDelta(int64_t end, int64_t start) {
  if (end < 0 || start < 0) return -1;
  return end - start;
}

void ClosePhaseLocked() {
  if (!g_open_phase.has_value()) return;
  const OpenPhase& open = *g_open_phase;
  const ResourceUsage end = SampleProcessResources();
  PhaseResourceStats stats;
  stats.name = open.name;
  stats.wall_seconds =
      static_cast<double>(SteadyNowNs() - open.start_steady_ns) * 1e-9;
  stats.cpu_user_seconds = end.cpu_user_seconds - open.start.cpu_user_seconds;
  stats.cpu_sys_seconds = end.cpu_sys_seconds - open.start.cpu_sys_seconds;
  stats.max_rss_bytes = end.max_rss_bytes;
  stats.minor_faults = end.minor_faults - open.start.minor_faults;
  stats.major_faults = end.major_faults - open.start.major_faults;
  stats.vol_ctx_switches =
      end.vol_ctx_switches - open.start.vol_ctx_switches;
  stats.invol_ctx_switches =
      end.invol_ctx_switches - open.start.invol_ctx_switches;
  if (end.io_ok && open.start.io_ok) {
    stats.read_bytes = end.read_bytes - open.start.read_bytes;
    stats.write_bytes = end.write_bytes - open.start.write_bytes;
  }
  const PerfValues perf_end = RunPerfValues();
  if (perf_end.ok && open.perf_start.ok) {
    stats.perf_ok = true;
    stats.cycles = PerfDelta(perf_end.cycles, open.perf_start.cycles);
    stats.instructions =
        PerfDelta(perf_end.instructions, open.perf_start.instructions);
    stats.cache_misses =
        PerfDelta(perf_end.cache_misses, open.perf_start.cache_misses);
    stats.branch_misses =
        PerfDelta(perf_end.branch_misses, open.perf_start.branch_misses);
  }
  g_completed_phases.push_back(std::move(stats));
  g_open_phase.reset();
}

}  // namespace

void SetTelemetryFailpoint(TelemetryFailpointFn fn) {
  g_failpoint.store(fn, std::memory_order_release);
}

bool TelemetryFailpointHit(const char* site) {
  const TelemetryFailpointFn fn = g_failpoint.load(std::memory_order_acquire);
  return fn != nullptr && fn(site);
}

void SetProcfsRootForTest(const char* root) {
  g_procfs_root.store(root, std::memory_order_release);
}

ResourceUsage SampleProcessResources() {
  ResourceUsage usage;
  rusage ru{};
  if (!TelemetryFailpointHit("obs:rusage") &&
      getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.rusage_ok = true;
    usage.cpu_user_seconds = TimevalSeconds(ru.ru_utime);
    usage.cpu_sys_seconds = TimevalSeconds(ru.ru_stime);
    usage.max_rss_bytes = static_cast<int64_t>(ru.ru_maxrss) * 1024;  // KiB
    usage.minor_faults = ru.ru_minflt;
    usage.major_faults = ru.ru_majflt;
    usage.vol_ctx_switches = ru.ru_nvcsw;
    usage.invol_ctx_switches = ru.ru_nivcsw;
  }
  int64_t read_bytes = -1;
  int64_t write_bytes = -1;
  if (ReadProcSelfIo(&read_bytes, &write_bytes)) {
    usage.io_ok = true;
    usage.read_bytes = read_bytes;
    usage.write_bytes = write_bytes;
  }
  return usage;
}

void BeginPhaseResources(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_phase_mutex);
  ClosePhaseLocked();
  OpenPhase open;
  open.name = name;
  open.start_steady_ns = SteadyNowNs();
  open.start = SampleProcessResources();
  open.perf_start = RunPerfValues();
  g_open_phase = std::move(open);
}

void ClosePhaseResources() {
  std::lock_guard<std::mutex> lock(g_phase_mutex);
  ClosePhaseLocked();
}

std::vector<PhaseResourceStats> CollectPhaseResources() {
  std::lock_guard<std::mutex> lock(g_phase_mutex);
  ClosePhaseLocked();
  return g_completed_phases;
}

void ResetPhaseResourcesForTest() {
  std::lock_guard<std::mutex> lock(g_phase_mutex);
  g_open_phase.reset();
  g_completed_phases.clear();
}

}  // namespace kgc::obs
