// Opt-in hardware perf counters (perf_event_open) for bench runs.
//
// When KGC_PERF=1, StartRunPerfCounters opens four independent counting
// events — cycles, instructions, cache misses, branch misses — with
// inherit=1 so threads spawned *after* the open (the lazy thread pool,
// the exporter) are counted too. The events are independent rather than a
// group because inherited events cannot be read with PERF_FORMAT_GROUP;
// independent fds keep the read path trivial and let each counter degrade
// on its own.
//
// Degradation is the default, not the exception: containers commonly deny
// perf_event_open (EPERM / perf_event_paranoid), and some kernels lack
// specific generic events (ENOENT). Any counter that fails to open simply
// reports -1; PerfValues::ok is true when at least one counter is live.
// The "obs:perf" telemetry failpoint forces the fully-unavailable path.

#ifndef KGC_OBS_PERF_COUNTERS_H_
#define KGC_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace kgc::obs {

/// Cumulative counter values since StartRunPerfCounters. A field is -1
/// when that counter is unavailable; ok is false when none are.
struct PerfValues {
  bool ok = false;
  int64_t cycles = -1;
  int64_t instructions = -1;
  int64_t cache_misses = -1;
  int64_t branch_misses = -1;
};

/// Starts run-wide counters when KGC_PERF=1 (otherwise a no-op).
/// Idempotent. Call early — before worker threads exist — so inherit=1
/// covers them.
void StartRunPerfCounters();

/// True when at least one hardware counter is live.
bool RunPerfActive();

/// Reads the current cumulative values (all -1 / ok=false when inactive).
PerfValues RunPerfValues();

/// Forces the unavailable path (and closes any open counters) so tests
/// can exercise degradation regardless of host support.
void ForcePerfUnavailableForTest(bool unavailable);

}  // namespace kgc::obs

#endif  // KGC_OBS_PERF_COUNTERS_H_
