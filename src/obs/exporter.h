// Continuous metrics export: a background thread that snapshots the
// metrics registry on a fixed interval and publishes two artifacts:
//
//   1. A time-series file (`KGC_TIMESERIES`, default kgc_timeseries.jsonl):
//      one `kgc.timeseries.v1` JSON line per tick carrying the steady-clock
//      offset, a wall timestamp, per-counter cumulative totals *and*
//      per-tick deltas, set gauges, duration-histogram quantiles, a
//      resource sample and (when enabled) perf-counter readings. Records
//      survive SIGKILL up to the last completed line because each line is
//      flushed as it is written.
//   2. A Prometheus-style text exposition file (`KGC_EXPOSITION`, default
//      kgc_metrics.prom), rewritten atomically (write temp + rename) each
//      tick so a scraper or `watch cat` never sees a torn file.
//
// The exporter is enabled by `KGC_METRICS_INTERVAL_MS=<n>` (n > 0). One
// exporter runs per process; Stop emits a final record so short runs
// always produce at least one tick. On the crash path (fatal signal) use
// Abort: it stops the thread without joining, because joining from a
// signal handler can deadlock against the thread being killed.

#ifndef KGC_OBS_EXPORTER_H_
#define KGC_OBS_EXPORTER_H_

#include <cstdint>
#include <string>

namespace kgc::obs {

struct ExporterOptions {
  std::string run_name;
  int interval_ms = 100;
  std::string timeseries_path = "kgc_timeseries.jsonl";
  std::string exposition_path = "kgc_metrics.prom";
};

/// Starts the process-wide exporter when KGC_METRICS_INTERVAL_MS > 0
/// (paths from KGC_TIMESERIES / KGC_EXPOSITION when set). Returns true
/// when an exporter was started. No-op when one is already running.
bool StartExporterFromEnv(const std::string& run_name);

/// Starts the exporter with explicit options (interval_ms must be > 0).
/// No-op when one is already running.
void StartExporter(const ExporterOptions& options);

bool ExporterRunning();

/// Emits one final record, stops the thread and joins it. Safe to call
/// when no exporter is running.
void StopGlobalExporter();

/// Crash-path stop: raises the stop flag but does NOT join or write a
/// final record (the partially-written time-series file stays valid
/// because records are line-buffered).
void AbortGlobalExporter();

/// Number of time-series records written by the current/last exporter.
uint64_t ExporterRecordsWritten();

}  // namespace kgc::obs

#endif  // KGC_OBS_EXPORTER_H_
