#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/clock.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/resource_stats.h"
#include "obs/trace.h"

namespace kgc::obs {
namespace {

std::mutex g_exit_cause_mutex;
std::string g_exit_cause;  // guarded by g_exit_cause_mutex

}  // namespace

void SetRunExitCause(const std::string& cause) {
  std::lock_guard<std::mutex> lock(g_exit_cause_mutex);
  g_exit_cause = cause;
}

std::string RunExitCause() {
  std::lock_guard<std::mutex> lock(g_exit_cause_mutex);
  return g_exit_cause;
}

std::string RenderRunReport(const RunInfo& info) {
  const MetricsSnapshot snapshot = Registry::Get().Snapshot();
  const std::vector<SpanRollup> rollups = CollectSpanRollups();

  std::ostringstream out;
  out << "{\"schema\":\"kgc.run_report.v1\"";
  out << ",\"name\":\"" << JsonEscape(info.name) << "\"";
  out << ",\"timestamp\":\""
      << JsonEscape(info.timestamp.empty() ? Iso8601UtcNow()
                                           : info.timestamp)
      << "\"";
  out << ",\"threads\":" << info.threads;
  out << ",\"wall_seconds\":" << JsonDouble(info.wall_seconds);
  // Offset from the shared steady epoch (obs/clock.h), so report lines
  // correlate with trace spans and time-series records from the same run.
  out << ",\"steady_ms\":" << JsonDouble(SteadyNowMs());
  out << ",\"exit_code\":" << info.exit_code;
  std::string cause = info.exit_cause;
  if (cause.empty()) cause = RunExitCause();
  if (cause.empty()) {
    cause = info.exit_code == 0
                ? "ok"
                : "exit:" + std::to_string(info.exit_code);
  }
  out << ",\"exit_cause\":\"" << JsonEscape(cause) << "\"";

  out << ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(c.name)
        << "\":" << c.value;
  }
  out << "}";

  out << ",\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(g.name) << "\":";
    if (g.is_set) {
      out << JsonDouble(g.value);
    } else {
      out << "null";
    }
  }
  out << "}";

  out << ",\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(h.name)
        << "\":{\"count\":" << h.count << ",\"sum\":" << JsonDouble(h.sum)
        << ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      // The final bucket has no upper edge (overflow): le = null.
      out << (b > 0 ? "," : "") << "{\"le\":";
      if (b < h.edges.size()) {
        out << JsonDouble(h.edges[b]);
      } else {
        out << "null";
      }
      out << ",\"count\":" << h.buckets[b] << "}";
    }
    out << "]}";
  }
  out << "}";

  out << ",\"durations\":{";
  for (size_t i = 0; i < snapshot.durations.size(); ++i) {
    const DurationSample& d = snapshot.durations[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(d.name)
        << "\":{\"count\":" << d.count << ",\"sum\":" << JsonDouble(d.sum)
        << ",\"sum_saturations\":" << d.sum_saturations
        << ",\"p50\":" << JsonDouble(d.p50) << ",\"p90\":" << JsonDouble(d.p90)
        << ",\"p99\":" << JsonDouble(d.p99)
        << ",\"p999\":" << JsonDouble(d.p999)
        << ",\"min\":" << JsonDouble(d.min) << ",\"max\":" << JsonDouble(d.max)
        << "}";
  }
  out << "}";

  out << ",\"spans\":{";
  for (size_t i = 0; i < rollups.size(); ++i) {
    const SpanRollup& r = rollups[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(r.name)
        << "\":{\"count\":" << r.count
        << ",\"total_seconds\":" << JsonDouble(r.total_seconds)
        << ",\"min_seconds\":" << JsonDouble(r.min_seconds)
        << ",\"max_seconds\":" << JsonDouble(r.max_seconds) << "}";
  }
  out << "}";

  // Process-cumulative resource usage plus per-deadline-phase deltas.
  const ResourceUsage usage = SampleProcessResources();
  out << ",\"resources\":{\"process\":{\"cpu_user_seconds\":"
      << JsonDouble(usage.cpu_user_seconds)
      << ",\"cpu_sys_seconds\":" << JsonDouble(usage.cpu_sys_seconds)
      << ",\"max_rss_bytes\":" << usage.max_rss_bytes
      << ",\"minor_faults\":" << usage.minor_faults
      << ",\"major_faults\":" << usage.major_faults
      << ",\"vol_ctx_switches\":" << usage.vol_ctx_switches
      << ",\"invol_ctx_switches\":" << usage.invol_ctx_switches;
  if (usage.io_ok) {
    out << ",\"read_bytes\":" << usage.read_bytes
        << ",\"write_bytes\":" << usage.write_bytes;
  }
  out << "},\"phases\":[";
  const std::vector<PhaseResourceStats> phases = CollectPhaseResources();
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResourceStats& p = phases[i];
    out << (i > 0 ? "," : "") << "{\"name\":\"" << JsonEscape(p.name)
        << "\",\"wall_seconds\":" << JsonDouble(p.wall_seconds)
        << ",\"cpu_user_seconds\":" << JsonDouble(p.cpu_user_seconds)
        << ",\"cpu_sys_seconds\":" << JsonDouble(p.cpu_sys_seconds)
        << ",\"max_rss_bytes\":" << p.max_rss_bytes
        << ",\"minor_faults\":" << p.minor_faults
        << ",\"major_faults\":" << p.major_faults
        << ",\"vol_ctx_switches\":" << p.vol_ctx_switches
        << ",\"invol_ctx_switches\":" << p.invol_ctx_switches;
    if (p.read_bytes >= 0) {
      out << ",\"read_bytes\":" << p.read_bytes
          << ",\"write_bytes\":" << p.write_bytes;
    }
    if (p.perf_ok) {
      out << ",\"perf\":{\"cycles\":" << p.cycles
          << ",\"instructions\":" << p.instructions
          << ",\"cache_misses\":" << p.cache_misses
          << ",\"branch_misses\":" << p.branch_misses << "}";
    }
    out << "}";
  }
  out << "]}";

  const PerfValues perf = RunPerfValues();
  if (perf.ok) {
    out << ",\"perf\":{\"cycles\":" << perf.cycles
        << ",\"instructions\":" << perf.instructions
        << ",\"cache_misses\":" << perf.cache_misses
        << ",\"branch_misses\":" << perf.branch_misses << "}";
  }

  out << "}";
  return out.str();
}

bool AppendRunReport(const std::string& path, const RunInfo& info) {
  // Telemetry must never consult the fault-injection failpoints or the
  // atomic-write machinery (it reports on them), so this is a plain append.
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "[WARN] cannot write run report %s\n", path.c_str());
    return false;
  }
  out << RenderRunReport(info) << "\n";
  out.flush();
  return static_cast<bool>(out);
}

std::string MetricsPathFromEnv() {
  const char* path = std::getenv("KGC_METRICS");
  return (path != nullptr && path[0] != '\0') ? path : "";
}

int FinishProcessReport(const std::string& name, double wall_seconds,
                        int exit_code) {
  StopGlobalExporter();
  const std::string path = MetricsPathFromEnv();
  if (!path.empty()) {
    RunInfo info;
    info.name = name;
    info.wall_seconds = wall_seconds;
    info.exit_code = exit_code;
    AppendRunReport(path, info);
  }
  return exit_code;
}

}  // namespace kgc::obs
