#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kgc::obs {
namespace {

std::string NowIso8601Utc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

std::mutex g_exit_cause_mutex;
std::string g_exit_cause;  // guarded by g_exit_cause_mutex

}  // namespace

void SetRunExitCause(const std::string& cause) {
  std::lock_guard<std::mutex> lock(g_exit_cause_mutex);
  g_exit_cause = cause;
}

std::string RunExitCause() {
  std::lock_guard<std::mutex> lock(g_exit_cause_mutex);
  return g_exit_cause;
}

std::string RenderRunReport(const RunInfo& info) {
  const MetricsSnapshot snapshot = Registry::Get().Snapshot();
  const std::vector<SpanRollup> rollups = CollectSpanRollups();

  std::ostringstream out;
  out << "{\"schema\":\"kgc.run_report.v1\"";
  out << ",\"name\":\"" << JsonEscape(info.name) << "\"";
  out << ",\"timestamp\":\""
      << JsonEscape(info.timestamp.empty() ? NowIso8601Utc()
                                           : info.timestamp)
      << "\"";
  out << ",\"threads\":" << info.threads;
  out << ",\"wall_seconds\":" << JsonDouble(info.wall_seconds);
  out << ",\"exit_code\":" << info.exit_code;
  std::string cause = info.exit_cause;
  if (cause.empty()) cause = RunExitCause();
  if (cause.empty()) {
    cause = info.exit_code == 0
                ? "ok"
                : "exit:" + std::to_string(info.exit_code);
  }
  out << ",\"exit_cause\":\"" << JsonEscape(cause) << "\"";

  out << ",\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(c.name)
        << "\":" << c.value;
  }
  out << "}";

  out << ",\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(g.name) << "\":";
    if (g.is_set) {
      out << JsonDouble(g.value);
    } else {
      out << "null";
    }
  }
  out << "}";

  out << ",\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(h.name)
        << "\":{\"count\":" << h.count << ",\"sum\":" << JsonDouble(h.sum)
        << ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      // The final bucket has no upper edge (overflow): le = null.
      out << (b > 0 ? "," : "") << "{\"le\":";
      if (b < h.edges.size()) {
        out << JsonDouble(h.edges[b]);
      } else {
        out << "null";
      }
      out << ",\"count\":" << h.buckets[b] << "}";
    }
    out << "]}";
  }
  out << "}";

  out << ",\"spans\":{";
  for (size_t i = 0; i < rollups.size(); ++i) {
    const SpanRollup& r = rollups[i];
    out << (i > 0 ? "," : "") << "\"" << JsonEscape(r.name)
        << "\":{\"count\":" << r.count
        << ",\"total_seconds\":" << JsonDouble(r.total_seconds)
        << ",\"min_seconds\":" << JsonDouble(r.min_seconds)
        << ",\"max_seconds\":" << JsonDouble(r.max_seconds) << "}";
  }
  out << "}}";
  return out.str();
}

bool AppendRunReport(const std::string& path, const RunInfo& info) {
  // Telemetry must never consult the fault-injection failpoints or the
  // atomic-write machinery (it reports on them), so this is a plain append.
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "[WARN] cannot write run report %s\n", path.c_str());
    return false;
  }
  out << RenderRunReport(info) << "\n";
  out.flush();
  return static_cast<bool>(out);
}

std::string MetricsPathFromEnv() {
  const char* path = std::getenv("KGC_METRICS");
  return (path != nullptr && path[0] != '\0') ? path : "";
}

}  // namespace kgc::obs
