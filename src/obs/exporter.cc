#include "obs/exporter.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/resource_stats.h"

namespace kgc::obs {
namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// names map onto that by flattening separators.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

class MetricsExporter {
 public:
  void Start(const ExporterOptions& options) {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (running_) return;
    options_ = options;
    stop_.store(false, std::memory_order_release);
    abort_.store(false, std::memory_order_release);
    records_.store(0, std::memory_order_release);
    running_ = true;
    thread_ = std::thread([this] { Run(); });
  }

  void Stop() {
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (!running_) return;
    {
      std::lock_guard<std::mutex> tick_lock(tick_mutex_);
      stop_.store(true, std::memory_order_release);
    }
    tick_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    running_ = false;
  }

  void Abort() {
    // Crash path: no control_mutex_ (the crashing thread may hold it), no
    // join. The exporter thread exits at its next wakeup; each record is
    // flushed as a complete line, so whatever is on disk stays parseable.
    stop_.store(true, std::memory_order_release);
    abort_.store(true, std::memory_order_release);
    tick_cv_.notify_all();
  }

  bool Running() {
    std::lock_guard<std::mutex> lock(control_mutex_);
    return running_;
  }

  uint64_t Records() const {
    return records_.load(std::memory_order_acquire);
  }

 private:
  void Run() {
    FILE* out = std::fopen(options_.timeseries_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "[WARN] cannot write time-series file %s\n",
                   options_.timeseries_path.c_str());
    }
    std::map<std::string, uint64_t> prev_counters;
    double prev_steady_ms = SteadyNowMs();
    uint64_t seq = 0;
    for (;;) {
      bool stopping;
      {
        std::unique_lock<std::mutex> lock(tick_mutex_);
        tick_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                          [this] {
                            return stop_.load(std::memory_order_acquire);
                          });
        stopping = stop_.load(std::memory_order_acquire);
      }
      if (abort_.load(std::memory_order_acquire)) break;  // no final record
      Tick(out, &prev_counters, &prev_steady_ms, seq++, stopping);
      if (stopping) break;
    }
    if (out != nullptr) std::fclose(out);
  }

  void Tick(FILE* out, std::map<std::string, uint64_t>* prev_counters,
            double* prev_steady_ms, uint64_t seq, bool final_record) {
    const MetricsSnapshot snapshot = Registry::Get().Snapshot();
    const double steady_ms = SteadyNowMs();
    const double dt_ms = steady_ms - *prev_steady_ms;
    *prev_steady_ms = steady_ms;

    if (out != nullptr) {
      const std::string line = RenderTimeseriesRecord(
          snapshot, *prev_counters, seq, steady_ms, dt_ms, final_record);
      std::fputs(line.c_str(), out);
      std::fputc('\n', out);
      std::fflush(out);
      records_.fetch_add(1, std::memory_order_release);
    }
    for (const CounterSample& c : snapshot.counters) {
      (*prev_counters)[c.name] = c.value;
    }
    WriteExposition(snapshot);
  }

  std::string RenderTimeseriesRecord(
      const MetricsSnapshot& snapshot,
      const std::map<std::string, uint64_t>& prev_counters, uint64_t seq,
      double steady_ms, double dt_ms, bool final_record) const {
    std::ostringstream out;
    out << "{\"schema\":\"kgc.timeseries.v1\"";
    out << ",\"run\":\"" << JsonEscape(options_.run_name) << "\"";
    out << ",\"seq\":" << seq;
    out << ",\"steady_ms\":" << JsonDouble(steady_ms);
    out << ",\"wall\":\"" << Iso8601UtcNow() << "\"";
    out << ",\"dt_ms\":" << JsonDouble(dt_ms);
    if (final_record) out << ",\"final\":true";

    out << ",\"counters\":{";
    for (size_t i = 0; i < snapshot.counters.size(); ++i) {
      const CounterSample& c = snapshot.counters[i];
      const auto it = prev_counters.find(c.name);
      const uint64_t prev = it == prev_counters.end() ? 0 : it->second;
      // Counters are monotone; a snapshot below the previous one cannot
      // happen outside ResetAllForTest, so clamp rather than go negative.
      const uint64_t delta = c.value >= prev ? c.value - prev : 0;
      out << (i > 0 ? "," : "") << "\"" << JsonEscape(c.name)
          << "\":{\"total\":" << c.value << ",\"delta\":" << delta << "}";
    }
    out << "}";

    out << ",\"gauges\":{";
    bool first = true;
    for (const GaugeSample& g : snapshot.gauges) {
      if (!g.is_set) continue;
      out << (first ? "" : ",") << "\"" << JsonEscape(g.name)
          << "\":" << JsonDouble(g.value);
      first = false;
    }
    out << "}";

    out << ",\"durations\":{";
    for (size_t i = 0; i < snapshot.durations.size(); ++i) {
      const DurationSample& d = snapshot.durations[i];
      out << (i > 0 ? "," : "") << "\"" << JsonEscape(d.name)
          << "\":{\"count\":" << d.count << ",\"sum\":" << JsonDouble(d.sum)
          << ",\"p50\":" << JsonDouble(d.p50)
          << ",\"p90\":" << JsonDouble(d.p90)
          << ",\"p99\":" << JsonDouble(d.p99)
          << ",\"p999\":" << JsonDouble(d.p999)
          << ",\"max\":" << JsonDouble(d.max) << "}";
    }
    out << "}";

    const ResourceUsage usage = SampleProcessResources();
    out << ",\"resources\":{\"cpu_user_seconds\":"
        << JsonDouble(usage.cpu_user_seconds)
        << ",\"cpu_sys_seconds\":" << JsonDouble(usage.cpu_sys_seconds)
        << ",\"max_rss_bytes\":" << usage.max_rss_bytes
        << ",\"minor_faults\":" << usage.minor_faults
        << ",\"major_faults\":" << usage.major_faults
        << ",\"vol_ctx_switches\":" << usage.vol_ctx_switches
        << ",\"invol_ctx_switches\":" << usage.invol_ctx_switches;
    if (usage.io_ok) {
      out << ",\"read_bytes\":" << usage.read_bytes
          << ",\"write_bytes\":" << usage.write_bytes;
    }
    out << "}";

    const PerfValues perf = RunPerfValues();
    if (perf.ok) {
      out << ",\"perf\":{";
      bool first_perf = true;
      const auto emit = [&](const char* key, int64_t value) {
        if (value < 0) return;
        out << (first_perf ? "" : ",") << "\"" << key << "\":" << value;
        first_perf = false;
      };
      emit("cycles", perf.cycles);
      emit("instructions", perf.instructions);
      emit("cache_misses", perf.cache_misses);
      emit("branch_misses", perf.branch_misses);
      out << "}";
    }

    out << "}";
    return out.str();
  }

  void WriteExposition(const MetricsSnapshot& snapshot) const {
    if (options_.exposition_path.empty()) return;
    // Telemetry never routes through util's atomic-write / fault-injection
    // machinery (it reports on them), so this is a plain tmp + rename.
    const std::string tmp = options_.exposition_path + ".tmp";
    FILE* out = std::fopen(tmp.c_str(), "w");
    if (out == nullptr) return;
    for (const CounterSample& c : snapshot.counters) {
      const std::string name = PromName(c.name);
      std::fprintf(out, "# TYPE %s counter\n%s %llu\n", name.c_str(),
                   name.c_str(), static_cast<unsigned long long>(c.value));
    }
    for (const GaugeSample& g : snapshot.gauges) {
      if (!g.is_set) continue;
      const std::string name = PromName(g.name);
      std::fprintf(out, "# TYPE %s gauge\n%s %s\n", name.c_str(), name.c_str(),
                   JsonDouble(g.value).c_str());
    }
    for (const DurationSample& d : snapshot.durations) {
      const std::string name = PromName(d.name);
      std::fprintf(out, "# TYPE %s summary\n", name.c_str());
      const struct {
        const char* q;
        double value;
      } quantiles[] = {{"0.5", d.p50}, {"0.9", d.p90}, {"0.99", d.p99},
                       {"0.999", d.p999}};
      for (const auto& [q, value] : quantiles) {
        std::fprintf(out, "%s{quantile=\"%s\"} %s\n", name.c_str(), q,
                     JsonDouble(value).c_str());
      }
      std::fprintf(out, "%s_sum %s\n%s_count %llu\n", name.c_str(),
                   JsonDouble(d.sum).c_str(), name.c_str(),
                   static_cast<unsigned long long>(d.count));
    }
    const bool ok = std::fflush(out) == 0;
    std::fclose(out);
    if (ok) std::rename(tmp.c_str(), options_.exposition_path.c_str());
  }

  std::mutex control_mutex_;
  bool running_ = false;
  ExporterOptions options_;
  std::thread thread_;

  std::mutex tick_mutex_;
  std::condition_variable tick_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> abort_{false};
  std::atomic<uint64_t> records_{0};
};

MetricsExporter& Exporter() {
  static MetricsExporter* exporter = new MetricsExporter();
  return *exporter;
}

}  // namespace

bool StartExporterFromEnv(const std::string& run_name) {
  const char* interval_env = std::getenv("KGC_METRICS_INTERVAL_MS");
  if (interval_env == nullptr || interval_env[0] == '\0') return false;
  const int interval_ms = std::atoi(interval_env);
  if (interval_ms <= 0) return false;
  ExporterOptions options;
  options.run_name = run_name;
  options.interval_ms = interval_ms;
  if (const char* path = std::getenv("KGC_TIMESERIES");
      path != nullptr && path[0] != '\0') {
    options.timeseries_path = path;
  }
  if (const char* path = std::getenv("KGC_EXPOSITION");
      path != nullptr && path[0] != '\0') {
    options.exposition_path = path;
  }
  StartExporter(options);
  return true;
}

void StartExporter(const ExporterOptions& options) {
  if (options.interval_ms <= 0) return;
  Exporter().Start(options);
}

bool ExporterRunning() { return Exporter().Running(); }

void StopGlobalExporter() { Exporter().Stop(); }

void AbortGlobalExporter() { Exporter().Abort(); }

uint64_t ExporterRecordsWritten() { return Exporter().Records(); }

}  // namespace kgc::obs
