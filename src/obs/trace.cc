#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/json.h"

namespace kgc::obs {
namespace {

// Bitmask of enabled features, or kUninitialized before the first span /
// query reads the environment. One relaxed load of this is the entire cost
// of a span when telemetry is off.
constexpr int kUninitialized = -1;
constexpr int kTracingBit = 1;
constexpr int kRollupsBit = 2;
std::atomic<int> g_mode{kUninitialized};

struct Event {
  std::string name;
  std::string args;
  int tid = 0;
  int depth = 0;
  uint64_t id = 0;
  uint64_t parent_id = 0;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

struct Rollup {
  uint64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

struct TraceState {
  std::mutex mutex;
  std::string path;
  bool flushed = false;
  bool atexit_registered = false;
  std::vector<Event> events;
  std::map<std::string, Rollup> rollups;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

std::atomic<uint64_t> g_next_span_id{0};
thread_local uint64_t tls_current_span = 0;
thread_local int tls_depth = 0;

int64_t NowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

void FlushAtExit() { FlushTrace(); }

void RegisterAtExitFlushLocked(TraceState& state) {
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit(&FlushAtExit);
  }
}

// Reads KGC_TRACE / KGC_METRICS once and publishes the mode. Returns the
// resolved mode.
int InitFromEnv() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode != kUninitialized) return mode;  // lost the race; already set
  mode = 0;
  if (const char* path = std::getenv("KGC_TRACE");
      path != nullptr && path[0] != '\0') {
    state.path = path;
    mode |= kTracingBit | kRollupsBit;
    RegisterAtExitFlushLocked(state);
  }
  if (const char* metrics = std::getenv("KGC_METRICS");
      metrics != nullptr && metrics[0] != '\0') {
    mode |= kRollupsBit;
  }
  g_mode.store(mode, std::memory_order_release);
  return mode;
}

int Mode() {
  const int mode = g_mode.load(std::memory_order_relaxed);
  return mode == kUninitialized ? InitFromEnv() : mode;
}

}  // namespace

int ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

bool TracingEnabled() { return (Mode() & kTracingBit) != 0; }

bool SpanRollupsEnabled() { return (Mode() & kRollupsBit) != 0; }

void StartTracing(const std::string& path) {
  Mode();  // settle env init first so it cannot overwrite this
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.path = path;
  state.flushed = false;
  RegisterAtExitFlushLocked(state);
  g_mode.fetch_or(kTracingBit | kRollupsBit, std::memory_order_release);
}

void EnableSpanRollups() {
  Mode();
  g_mode.fetch_or(kRollupsBit, std::memory_order_release);
}

bool FlushTrace() {
  if (!TracingEnabled()) return true;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.flushed || state.path.empty()) return true;

  std::vector<const Event*> ordered;
  ordered.reserve(state.events.size());
  for (const Event& event : state.events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->start_ns < b->start_ns;
                   });

  std::ofstream out(state.path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[WARN] cannot write trace file %s\n",
                 state.path.c_str());
    return false;
  }
  out << "{\"traceEvents\":[\n";
  for (size_t i = 0; i < ordered.size(); ++i) {
    const Event& e = *ordered[i];
    out << "{\"name\":\"" << JsonEscape(e.name)
        << "\",\"cat\":\"kgc\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << JsonDouble(static_cast<double>(e.start_ns) * 1e-3)
        << ",\"dur\":" << JsonDouble(static_cast<double>(e.duration_ns) * 1e-3)
        << ",\"args\":{\"id\":" << e.id << ",\"parent\":" << e.parent_id
        << ",\"depth\":" << e.depth << e.args << "}}"
        << (i + 1 < ordered.size() ? ",\n" : "\n");
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
  out.flush();
  state.flushed = true;
  return static_cast<bool>(out);
}

std::vector<SpanRollup> CollectSpanRollups() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<SpanRollup> rollups;
  rollups.reserve(state.rollups.size());
  for (const auto& [name, r] : state.rollups) {
    SpanRollup rollup;
    rollup.name = name;
    rollup.count = r.count;
    rollup.total_seconds = static_cast<double>(r.total_ns) * 1e-9;
    rollup.min_seconds = static_cast<double>(r.min_ns) * 1e-9;
    rollup.max_seconds = static_cast<double>(r.max_ns) * 1e-9;
    rollups.push_back(std::move(rollup));
  }
  return rollups;
}

std::vector<RecordedSpan> SnapshotSpansForTest() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<RecordedSpan> spans;
  spans.reserve(state.events.size());
  for (const Event& e : state.events) {
    RecordedSpan span;
    span.name = e.name;
    span.tid = e.tid;
    span.depth = e.depth;
    span.id = e.id;
    span.parent_id = e.parent_id;
    span.start_us = static_cast<double>(e.start_ns) * 1e-3;
    span.duration_us = static_cast<double>(e.duration_ns) * 1e-3;
    spans.push_back(std::move(span));
  }
  return spans;
}

void ResetTracingForTest() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.events.clear();
  state.rollups.clear();
  state.path.clear();
  state.flushed = false;
  g_mode.store(0, std::memory_order_release);
}

TraceSpan::TraceSpan(const char* name) {
  const int mode = Mode();
  if (mode == 0) return;
  active_ = true;
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  parent_id_ = tls_current_span;
  depth_ = tls_depth;
  tls_current_span = id_;
  ++tls_depth;
  start_ns_ = NowNanos();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const int64_t duration_ns = NowNanos() - start_ns_;
  tls_current_span = parent_id_;
  --tls_depth;

  const int mode = g_mode.load(std::memory_order_relaxed);
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if ((mode & kTracingBit) != 0) {
    Event event;
    event.name = name_;
    event.args = std::move(args_);
    event.tid = ThreadId();
    event.depth = depth_;
    event.id = id_;
    event.parent_id = parent_id_;
    event.start_ns = start_ns_;
    event.duration_ns = duration_ns;
    state.events.push_back(std::move(event));
  }
  if ((mode & kRollupsBit) != 0) {
    Rollup& rollup = state.rollups[name_];
    if (rollup.count == 0 || duration_ns < rollup.min_ns) {
      rollup.min_ns = duration_ns;
    }
    if (rollup.count == 0 || duration_ns > rollup.max_ns) {
      rollup.max_ns = duration_ns;
    }
    ++rollup.count;
    rollup.total_ns += duration_ns;
  }
}

void TraceSpan::AddArgInt(const char* key, long long value) {
  if (!active_) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", key, value);
  args_ += buf;
}

void TraceSpan::AddArgStr(const char* key, const char* value) {
  if (!active_) return;
  args_ += ",\"";
  args_ += key;
  args_ += "\":\"";
  args_ += JsonEscape(value);
  args_ += "\"";
}

}  // namespace kgc::obs
