#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/clock.h"
#include "obs/json.h"

namespace kgc::obs {
namespace {

// Bitmask of enabled features, or kUninitialized before the first span /
// query reads the environment. One relaxed load of this is the entire cost
// of a span when telemetry is off.
constexpr int kUninitialized = -1;
constexpr int kTracingBit = 1;
constexpr int kRollupsBit = 2;
std::atomic<int> g_mode{kUninitialized};

constexpr size_t kDefaultDrainThreshold = 4096;

struct Event {
  std::string name;
  std::string args;
  int tid = 0;
  int depth = 0;
  uint64_t id = 0;
  uint64_t parent_id = 0;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

struct Rollup {
  uint64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
};

struct TraceState {
  std::mutex mutex;
  std::string path;
  FILE* file = nullptr;        // open once the first drain happens
  bool write_failed = false;
  uint64_t events_written = 0;
  size_t drain_threshold = kDefaultDrainThreshold;
  bool finalized = false;
  bool atexit_registered = false;
  std::vector<Event> events;  // buffered, not yet drained
  std::map<std::string, Rollup> rollups;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

std::atomic<uint64_t> g_next_span_id{0};
thread_local uint64_t tls_current_span = 0;
thread_local int tls_depth = 0;

void FlushAtExit() { FlushTrace(); }

void RegisterAtExitFlushLocked(TraceState& state) {
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit(&FlushAtExit);
  }
}

void WriteEventJson(FILE* out, const Event& e) {
  std::fprintf(
      out, "{\"name\":\"%s\",\"cat\":\"kgc\",\"ph\":\"X\",\"pid\":1,"
           "\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"id\":%llu,"
           "\"parent\":%llu,\"depth\":%d%s}}",
      JsonEscape(e.name).c_str(), e.tid,
      JsonDouble(static_cast<double>(e.start_ns) * 1e-3).c_str(),
      JsonDouble(static_cast<double>(e.duration_ns) * 1e-3).c_str(),
      static_cast<unsigned long long>(e.id),
      static_cast<unsigned long long>(e.parent_id), e.depth, e.args.c_str());
}

// Appends all buffered events to the trace file, opening it (and writing
// the array header + clock-sync metadata event) on the first drain. Each
// event is one complete ",\n"-prefixed line flushed before return, so a
// SIGKILL between drains never tears an event — appending "]" to whatever
// is on disk always yields valid JSON.
bool DrainLocked(TraceState& state) {
  if (state.finalized || state.path.empty()) return false;
  if (state.file == nullptr) {
    if (state.write_failed) return false;
    state.file = std::fopen(state.path.c_str(), "w");
    if (state.file == nullptr) {
      state.write_failed = true;
      std::fprintf(stderr, "[WARN] cannot write trace file %s\n",
                   state.path.c_str());
      return false;
    }
    // Clock-sync metadata: the wall time at which the shared steady epoch
    // reads `steady_ms`, so trace timestamps (which are steady offsets)
    // can be anchored to real time and to run reports / time-series lines.
    std::fprintf(
        state.file,
        "[\n{\"name\":\"kgc_clock_sync\",\"cat\":\"__metadata\",\"ph\":\"M\","
        "\"pid\":1,\"tid\":0,\"args\":{\"wall\":\"%s\",\"steady_ms\":%s}}",
        Iso8601UtcNow().c_str(), JsonDouble(SteadyNowMs()).c_str());
    ++state.events_written;
  }
  for (const Event& e : state.events) {
    std::fputs(",\n", state.file);
    WriteEventJson(state.file, e);
    ++state.events_written;
  }
  state.events.clear();
  std::fflush(state.file);
  return true;
}

// Reads KGC_TRACE / KGC_METRICS / KGC_TRACE_DRAIN once and publishes the
// mode. Returns the resolved mode.
int InitFromEnv() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode != kUninitialized) return mode;  // lost the race; already set
  mode = 0;
  if (const char* path = std::getenv("KGC_TRACE");
      path != nullptr && path[0] != '\0') {
    state.path = path;
    mode |= kTracingBit | kRollupsBit;
    RegisterAtExitFlushLocked(state);
  }
  if (const char* metrics = std::getenv("KGC_METRICS");
      metrics != nullptr && metrics[0] != '\0') {
    mode |= kRollupsBit;
  }
  if (const char* drain = std::getenv("KGC_TRACE_DRAIN");
      drain != nullptr && drain[0] != '\0') {
    const long threshold = std::atol(drain);
    if (threshold > 0) state.drain_threshold = static_cast<size_t>(threshold);
  }
  g_mode.store(mode, std::memory_order_release);
  return mode;
}

int Mode() {
  const int mode = g_mode.load(std::memory_order_relaxed);
  return mode == kUninitialized ? InitFromEnv() : mode;
}

}  // namespace

int ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

bool TracingEnabled() { return (Mode() & kTracingBit) != 0; }

bool SpanRollupsEnabled() { return (Mode() & kRollupsBit) != 0; }

void StartTracing(const std::string& path) {
  Mode();  // settle env init first so it cannot overwrite this
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
  state.path = path;
  state.write_failed = false;
  state.events_written = 0;
  state.finalized = false;
  RegisterAtExitFlushLocked(state);
  g_mode.fetch_or(kTracingBit | kRollupsBit, std::memory_order_release);
}

void EnableSpanRollups() {
  Mode();
  g_mode.fetch_or(kRollupsBit, std::memory_order_release);
}

void SetTraceDrainThresholdForTest(size_t threshold) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.drain_threshold = threshold > 0 ? threshold : 1;
}

bool FlushTrace() {
  if (!TracingEnabled()) return true;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.finalized || state.path.empty()) return true;
  DrainLocked(state);
  if (state.file == nullptr) return false;  // nothing ever opened / I/O error
  std::fputs("\n]\n", state.file);
  const bool ok = std::fflush(state.file) == 0;
  std::fclose(state.file);
  state.file = nullptr;
  state.finalized = true;
  return ok;
}

std::vector<SpanRollup> CollectSpanRollups() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<SpanRollup> rollups;
  rollups.reserve(state.rollups.size());
  for (const auto& [name, r] : state.rollups) {
    SpanRollup rollup;
    rollup.name = name;
    rollup.count = r.count;
    rollup.total_seconds = static_cast<double>(r.total_ns) * 1e-9;
    rollup.min_seconds = static_cast<double>(r.min_ns) * 1e-9;
    rollup.max_seconds = static_cast<double>(r.max_ns) * 1e-9;
    rollups.push_back(std::move(rollup));
  }
  return rollups;
}

std::vector<RecordedSpan> SnapshotSpansForTest() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<RecordedSpan> spans;
  spans.reserve(state.events.size());
  for (const Event& e : state.events) {
    RecordedSpan span;
    span.name = e.name;
    span.tid = e.tid;
    span.depth = e.depth;
    span.id = e.id;
    span.parent_id = e.parent_id;
    span.start_us = static_cast<double>(e.start_ns) * 1e-3;
    span.duration_us = static_cast<double>(e.duration_ns) * 1e-3;
    spans.push_back(std::move(span));
  }
  return spans;
}

void ResetTracingForTest() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
  state.events.clear();
  state.rollups.clear();
  state.path.clear();
  state.write_failed = false;
  state.events_written = 0;
  state.drain_threshold = kDefaultDrainThreshold;
  state.finalized = false;
  g_mode.store(0, std::memory_order_release);
}

TraceSpan::TraceSpan(const char* name) {
  const int mode = Mode();
  if (mode == 0) return;
  active_ = true;
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  parent_id_ = tls_current_span;
  depth_ = tls_depth;
  tls_current_span = id_;
  ++tls_depth;
  start_ns_ = SteadyNowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const int64_t duration_ns = SteadyNowNs() - start_ns_;
  tls_current_span = parent_id_;
  --tls_depth;

  const int mode = g_mode.load(std::memory_order_relaxed);
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if ((mode & kTracingBit) != 0 && !state.finalized) {
    Event event;
    event.name = name_;
    event.args = std::move(args_);
    event.tid = ThreadId();
    event.depth = depth_;
    event.id = id_;
    event.parent_id = parent_id_;
    event.start_ns = start_ns_;
    event.duration_ns = duration_ns;
    state.events.push_back(std::move(event));
    if (state.events.size() >= state.drain_threshold) DrainLocked(state);
  }
  if ((mode & kRollupsBit) != 0) {
    Rollup& rollup = state.rollups[name_];
    if (rollup.count == 0 || duration_ns < rollup.min_ns) {
      rollup.min_ns = duration_ns;
    }
    if (rollup.count == 0 || duration_ns > rollup.max_ns) {
      rollup.max_ns = duration_ns;
    }
    ++rollup.count;
    rollup.total_ns += duration_ns;
  }
}

void TraceSpan::AddArgInt(const char* key, long long value) {
  if (!active_) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", key, value);
  args_ += buf;
}

void TraceSpan::AddArgStr(const char* key, const char* value) {
  if (!active_) return;
  args_ += ",\"";
  args_ += key;
  args_ += "\":\"";
  args_ += JsonEscape(value);
  args_ += "\"";
}

}  // namespace kgc::obs
