// Machine-readable run reports: one JSON object per run, appended as a
// single JSONL line, containing a snapshot of every registered metric plus
// span rollups.
//
// `KGC_METRICS=<path>` makes the bench harness (bench/bench_common.h)
// append a report line when the binary exits; repeated runs append more
// lines, so the file accumulates a perf trajectory that downstream tooling
// (BENCH_*.json trackers) can diff run over run. Each line is a complete,
// self-describing JSON document (`schema: "kgc.run_report.v1"`).

#ifndef KGC_OBS_REPORT_H_
#define KGC_OBS_REPORT_H_

#include <string>

namespace kgc::obs {

/// Identity and outcome of the run being reported.
struct RunInfo {
  std::string name;       ///< run label, e.g. the bench binary name
  std::string timestamp;  ///< ISO-8601 UTC; filled in when empty
  int threads = 0;        ///< resolved worker count (0 = unknown)
  double wall_seconds = 0.0;
  int exit_code = 0;
  /// Why the run ended: "ok", "exit:<n>", "deadline:<phase>",
  /// "signal:<name>", "early_exit". Derived from exit_code (or the
  /// recorded process exit cause, see SetRunExitCause) when empty.
  std::string exit_cause;
};

/// Records why the process is exiting so abnormal-exit report hooks (the
/// bench harness's signal/atexit handlers) can attribute the run. The last
/// write wins; thread-safe.
void SetRunExitCause(const std::string& cause);
std::string RunExitCause();

/// Renders the run report — metrics snapshot + span rollups + `info` — as a
/// single-line JSON document (no trailing newline).
std::string RenderRunReport(const RunInfo& info);

/// Appends RenderRunReport(info) + '\n' to `path`. Returns false on I/O
/// failure (telemetry is best-effort: callers log and move on).
bool AppendRunReport(const std::string& path, const RunInfo& info);

/// The KGC_METRICS destination, or "" when unset.
std::string MetricsPathFromEnv();

/// One-stop telemetry epilogue for tool entry points (kgc_stream,
/// kgc_datagen): stops the metrics exporter (writing its final time-series
/// record) and appends a run report to KGC_METRICS when set. Returns
/// `exit_code` so callers can `return FinishProcessReport(...)`.
int FinishProcessReport(const std::string& name, double wall_seconds,
                        int exit_code);

}  // namespace kgc::obs

#endif  // KGC_OBS_REPORT_H_
