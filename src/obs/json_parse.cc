#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace kgc::obs {

// Friended assembly shim: JsonValue keeps its internals private; the
// parser (anonymous namespace below, so it cannot be friended directly)
// builds values through these.
struct JsonValueBuilder {
  static JsonValue MakeBool(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue MakeNumber(double n) {
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = n;
    return v;
  }
  static JsonValue MakeString(std::string s) {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue MakeArray(JsonValue::Array items) {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    v.array_ = std::move(items);
    return v;
  }
  static JsonValue MakeObject(JsonValue::Object members) {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    v.object_ = std::move(members);
    return v;
  }
};

namespace {

// Recursive-descent parser over a string_view cursor. Depth-limited so a
// hostile document cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseDocument(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char* c) const {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth);
  bool ParseString(std::string* out);
  bool ParseNumber(double* out);
  bool ParseArray(JsonValue* out, int depth);
  bool ParseObject(JsonValue* out, int depth);

  std::string_view text_;
  size_t pos_ = 0;
};

bool Parser::ParseString(std::string* out) {
  if (!Consume('"')) return false;
  out->clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return true;
    if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) return false;
    const char escape = text_[pos_++];
    switch (escape) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (pos_ + 4 > text_.size()) return false;
        for (int i = 0; i < 4; ++i) {
          if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
            return false;
          }
        }
        pos_ += 4;
        out->push_back('?');  // no unicode decoding (see header)
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated
}

bool Parser::ParseNumber(double* out) {
  const size_t start = pos_;
  if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) return false;
  const std::string token(text_.substr(start, pos_ - start));
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' &&
         std::isdigit(static_cast<unsigned char>(
             token[token[0] == '-' ? 1 : 0]));
}

bool Parser::ParseArray(JsonValue* out, int depth) {
  if (!Consume('[')) return false;
  *out = JsonValue();
  JsonValue::Array items;
  SkipSpace();
  if (Consume(']')) {
    // empty array
  } else {
    for (;;) {
      JsonValue item;
      if (!ParseValue(&item, depth + 1)) return false;
      items.push_back(std::move(item));
      SkipSpace();
      if (Consume(']')) break;
      if (!Consume(',')) return false;
      SkipSpace();
    }
  }
  *out = JsonValueBuilder::MakeArray(std::move(items));
  return true;
}

bool Parser::ParseObject(JsonValue* out, int depth) {
  if (!Consume('{')) return false;
  *out = JsonValue();
  JsonValue::Object members;
  SkipSpace();
  if (Consume('}')) {
    // empty object
  } else {
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      members[std::move(key)] = std::move(value);
      SkipSpace();
      if (Consume('}')) break;
      if (!Consume(',')) return false;
    }
  }
  *out = JsonValueBuilder::MakeObject(std::move(members));
  return true;
}

bool Parser::ParseValue(JsonValue* out, int depth) {
  if (depth > kMaxDepth) return false;
  SkipSpace();
  char c;
  if (!Peek(&c)) return false;
  switch (c) {
    case '{':
      return ParseObject(out, depth);
    case '[':
      return ParseArray(out, depth);
    case '"': {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = JsonValueBuilder::MakeString(std::move(s));
      return true;
    }
    case 't':
      if (!ConsumeLiteral("true")) return false;
      *out = JsonValueBuilder::MakeBool(true);
      return true;
    case 'f':
      if (!ConsumeLiteral("false")) return false;
      *out = JsonValueBuilder::MakeBool(false);
      return true;
    case 'n':
      if (!ConsumeLiteral("null")) return false;
      *out = JsonValue();
      return true;
    default: {
      double n;
      if (!ParseNumber(&n)) return false;
      *out = JsonValueBuilder::MakeNumber(n);
      return true;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

bool JsonValue::Parse(std::string_view text, JsonValue* out) {
  *out = JsonValue();
  Parser parser(text);
  JsonValue parsed;
  if (!parser.ParseDocument(&parsed)) return false;
  *out = std::move(parsed);
  return true;
}

}  // namespace kgc::obs
