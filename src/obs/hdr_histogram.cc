#include "obs/hdr_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kgc::obs {

int64_t MicrosFromSecondsSaturated(double seconds) {
  if (std::isnan(seconds) || seconds <= 0.0) return 0;
  const double micros = seconds * 1e6;
  if (micros >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(std::llround(micros));
}

bool SaturatingFetchAdd(std::atomic<int64_t>& sum, int64_t delta) {
  int64_t current = sum.load(std::memory_order_relaxed);
  for (;;) {
    int64_t next;
    const bool overflow = __builtin_add_overflow(current, delta, &next);
    if (overflow) {
      next = delta > 0 ? std::numeric_limits<int64_t>::max()
                       : std::numeric_limits<int64_t>::min();
      if (next == current) return true;  // already pinned
    }
    if (sum.compare_exchange_weak(current, next, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
      return overflow;
    }
  }
}

HdrHistogram::HdrHistogram() {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

size_t HdrHistogram::BucketIndexForMicros(uint64_t micros) {
  if (micros < 2 * kSubBuckets) return static_cast<size_t>(micros);
  if (micros > kMaxTrackableMicros) return kNumBuckets - 1;  // overflow
  // Octave o = floor(log2(micros)) >= kSubBucketBits + 1. Within the
  // octave, linear buckets of width 2^(o - kSubBucketBits):
  // micros >> (o - kSubBucketBits) lands in [kSubBuckets, 2*kSubBuckets).
  const int o = 63 - __builtin_clzll(micros);
  const int shift = o - kSubBucketBits;
  return static_cast<size_t>(shift) * kSubBuckets + (micros >> shift);
}

uint64_t HdrHistogram::BucketLowerMicros(size_t index) {
  if (index < 2 * kSubBuckets) return index;
  if (index >= kNumBuckets - 1) return kMaxTrackableMicros + 1;  // overflow
  const uint64_t block = index >> kSubBucketBits;  // >= 2
  const int shift = static_cast<int>(block) - 1;
  const uint64_t sub = index & (kSubBuckets - 1);
  return (kSubBuckets + sub) << shift;
}

uint64_t HdrHistogram::BucketUpperMicros(size_t index) {
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<uint64_t>::max();
  }
  return BucketLowerMicros(index + 1);
}

void HdrHistogram::ObserveMicros(uint64_t micros) {
  buckets_[BucketIndexForMicros(micros)].fetch_add(1,
                                                   std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t add =
      micros > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())
          ? std::numeric_limits<int64_t>::max()
          : static_cast<int64_t>(micros);
  if (SaturatingFetchAdd(sum_micros_, add)) {
    sum_saturations_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HdrHistogram::Observe(double seconds) {
  ObserveMicros(static_cast<uint64_t>(MicrosFromSecondsSaturated(seconds)));
}

double HdrHistogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= target) {
      if (i == kNumBuckets - 1) {
        // Overflow bucket has no finite upper edge; report its lower one.
        return static_cast<double>(BucketLowerMicros(i)) * 1e-6;
      }
      return static_cast<double>(BucketUpperMicros(i)) * 1e-6;
    }
  }
  return 0.0;  // unreachable: cumulative == count() by the last bucket
}

double HdrHistogram::MinEstimate() const {
  if (count() == 0) return 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (bucket_count(i) > 0) {
      return static_cast<double>(BucketLowerMicros(i)) * 1e-6;
    }
  }
  return 0.0;
}

double HdrHistogram::MaxEstimate() const {
  if (count() == 0) return 0.0;
  for (size_t i = kNumBuckets; i-- > 0;) {
    if (bucket_count(i) > 0) {
      if (i == kNumBuckets - 1) {
        return static_cast<double>(BucketLowerMicros(i)) * 1e-6;
      }
      return static_cast<double>(BucketUpperMicros(i)) * 1e-6;
    }
  }
  return 0.0;
}

void HdrHistogram::ResetForTest() {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
  sum_saturations_.store(0, std::memory_order_relaxed);
}

}  // namespace kgc::obs
