// Resource accounting: getrusage + /proc/self sampling, and per-phase
// deltas aligned with the cooperative deadline phases (util/deadline).
//
// A sample is cheap (two syscalls and one small procfs read), so phase
// boundaries and the metrics exporter can take one each without showing up
// in profiles. Every source degrades gracefully: on kernels or sandboxes
// where /proc/self/io is absent (or a fault-injection failpoint simulates
// that), the byte counters report -1/absent rather than failing the run.
//
// Layering: obs depends only on the standard library + OS, so it cannot
// call util/fault_injector directly. Instead it exposes a failpoint hook
// (SetTelemetryFailpoint) that the util layer installs a bridge into; the
// obs sites are "obs:rusage", "obs:procfs" and "obs:perf".

#ifndef KGC_OBS_RESOURCE_STATS_H_
#define KGC_OBS_RESOURCE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kgc::obs {

/// A point-in-time cumulative sample for this process. Byte counters are
/// -1 when /proc/self/io was unavailable; rusage fields are zero when
/// getrusage itself failed (never expected outside fault injection).
struct ResourceUsage {
  bool rusage_ok = false;
  double cpu_user_seconds = 0.0;
  double cpu_sys_seconds = 0.0;
  int64_t max_rss_bytes = 0;
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t vol_ctx_switches = 0;
  int64_t invol_ctx_switches = 0;
  bool io_ok = false;
  int64_t read_bytes = -1;
  int64_t write_bytes = -1;
};

ResourceUsage SampleProcessResources();

/// Resource deltas over one deadline phase. max_rss_bytes is the absolute
/// high-water mark at phase close (RSS peaks do not difference usefully);
/// everything else is phase-local. Perf fields are deltas of whichever
/// hardware counters were running (see obs/perf_counters.h) and are only
/// meaningful when perf_ok is true.
struct PhaseResourceStats {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_user_seconds = 0.0;
  double cpu_sys_seconds = 0.0;
  int64_t max_rss_bytes = 0;
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t vol_ctx_switches = 0;
  int64_t invol_ctx_switches = 0;
  int64_t read_bytes = -1;   ///< -1 when procfs was unavailable at either end
  int64_t write_bytes = -1;
  bool perf_ok = false;
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;
};

/// Opens a named accounting phase, closing any still-open one first (so a
/// sequence of Deadline::BeginPhase calls partitions the run). Thread-safe;
/// meant to be driven from the run's phase boundaries, not the hot path.
void BeginPhaseResources(const std::string& name);

/// Closes the currently open phase, if any.
void ClosePhaseResources();

/// Closes any open phase and returns all completed phases in order.
std::vector<PhaseResourceStats> CollectPhaseResources();

void ResetPhaseResourcesForTest();

/// Fault-injection bridge (installed by util/fault_injector; see file
/// comment). Returns true when the given telemetry site should act as if
/// the underlying source were unavailable.
using TelemetryFailpointFn = bool (*)(const char* site);
void SetTelemetryFailpoint(TelemetryFailpointFn fn);
bool TelemetryFailpointHit(const char* site);

/// Redirects the procfs reads (default root "/proc/self") so tests can
/// exercise the missing-procfs path without a sandbox. nullptr restores
/// the default.
void SetProcfsRootForTest(const char* root);

}  // namespace kgc::obs

#endif  // KGC_OBS_RESOURCE_STATS_H_
