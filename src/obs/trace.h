// Scoped trace spans with parent/child nesting and thread ids.
//
// A `TraceSpan` is an RAII marker around a unit of work (a training epoch, a
// ranking sweep, one ParallelFor shard). Spans do two independent things:
//
//   1. Trace export. When tracing is enabled — `KGC_TRACE=<path>` in the
//      environment, or StartTracing(path) — completed spans are buffered
//      and drained incrementally to the trace file as Chrome `trace_event`
//      JSON (load it in chrome://tracing or https://ui.perfetto.dev). The
//      file uses the JSON *array* format and every drained event is a
//      complete line, so a run killed mid-flight (SIGKILL, OOM) leaves a
//      usable partial trace: append "]" and it parses. The buffer drains
//      whenever it reaches `KGC_TRACE_DRAIN` events (default 4096) and is
//      finalized at process exit (or FlushTrace()).
//   2. Span rollups. When rollups are enabled (implied by tracing or by
//      `KGC_METRICS`), per-name aggregates (count, total/min/max seconds)
//      are maintained for the run report (obs/report.h).
//
// When neither is enabled a span costs one relaxed atomic load — cheap
// enough to leave in hot paths permanently. Spans are timing-domain: their
// counts and durations are *not* covered by the counter bit-identity
// contract (a different shard plan legitimately produces different spans).
//
// Nesting is tracked per thread: a span opened while another span on the
// same thread is live records that span as its parent. Thread ids are
// small dense integers (ThreadId()), shared with the log prefix so log
// lines and trace rows correlate.

#ifndef KGC_OBS_TRACE_H_
#define KGC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kgc::obs {

/// Small dense id of the calling thread (the first thread to ask gets 1).
int ThreadId();

/// True once tracing is active (KGC_TRACE or StartTracing).
bool TracingEnabled();

/// True once span rollups are collected (tracing, KGC_METRICS, or
/// EnableSpanRollups).
bool SpanRollupsEnabled();

/// Starts buffering trace events for export to `path` (overrides any
/// KGC_TRACE destination) and registers an at-exit flush.
void StartTracing(const std::string& path);

/// Turns on rollup collection without trace export.
void EnableSpanRollups();

/// Drains any buffered events and finalizes the trace file (writes the
/// closing "]"). Called automatically at exit; calling it earlier
/// finalizes the file then (once per StartTracing). Returns false on I/O
/// failure.
bool FlushTrace();

/// Overrides the drain threshold (events buffered before a write-out).
/// 1 makes every span durable immediately — what the chaos harness uses.
void SetTraceDrainThresholdForTest(size_t threshold);

struct SpanRollup {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Per-name aggregates of every completed span, sorted by name. Empty
/// unless SpanRollupsEnabled().
std::vector<SpanRollup> CollectSpanRollups();

/// One buffered (not yet drained) trace event, exposed for tests.
struct RecordedSpan {
  std::string name;
  int tid = 0;
  int depth = 0;
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span of its thread
  double start_us = 0.0;
  double duration_us = 0.0;
};
std::vector<RecordedSpan> SnapshotSpansForTest();

/// Clears buffered events, rollups and enabled state (env vars are not
/// re-read). Open spans on other threads must be quiesced first.
void ResetTracingForTest();

class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an argument shown in the trace viewer. No-ops (and does not
  /// allocate) when the span is inactive.
  void AddArgInt(const char* key, long long value);
  void AddArgStr(const char* key, const char* value);

 private:
  const char* name_ = nullptr;
  std::string args_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace kgc::obs

#endif  // KGC_OBS_TRACE_H_
