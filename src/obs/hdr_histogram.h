// Log-linear HDR histogram for latency recording.
//
// The fixed-bucket Histogram (obs/metrics.h) needs its edges chosen up
// front, so one edge list cannot give useful p999s for both a 50us shard
// and a 30s epoch. This histogram uses the HdrHistogram bucket layout
// instead: values (in integer microseconds) below 64us get exact 1us
// buckets, and every power-of-two octave above that is subdivided into 32
// linear sub-buckets, giving a fixed <= 1/32 (~3.1%) relative bucket width
// across the whole tracked range — 1us to ~4.7 hours — with O(1)
// arithmetic bucket indexing (no edge search on the hot path).
//
// State is order-independent integers, exactly like the fixed-bucket
// histogram: per-bucket atomic counts, an atomic observation count, and a
// saturating fixed-point micro-unit sum. Two runs that observe the same
// multiset of durations — in any order, from any number of threads — hold
// bit-identical state.
//
// Quantiles are extracted exactly from the bucket counts: Quantile(q)
// returns the *upper edge* of the bucket holding the q-th ranked
// observation, so the estimate is always >= the true quantile and within
// one bucket width of it.

#ifndef KGC_OBS_HDR_HISTOGRAM_H_
#define KGC_OBS_HDR_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace kgc::obs {

class HdrHistogram {
 public:
  /// Exact 1us buckets below 2^(kSubBucketBits+1)us; 2^kSubBucketBits
  /// linear sub-buckets per octave above.
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
  /// Largest tracked value: 2^34-1 micros (~4.7 hours). Larger values
  /// land in the overflow bucket.
  static constexpr int kMaxOctave = 33;
  static constexpr uint64_t kMaxTrackableMicros =
      (1ull << (kMaxOctave + 1)) - 1;

  HdrHistogram();

  /// Records a duration in seconds. Negative / NaN clamp to 0; values
  /// beyond the tracked range land in the overflow bucket (and saturate
  /// the sum rather than wrapping it).
  void Observe(double seconds);
  void ObserveMicros(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observations in seconds, to 1us fixed-point resolution.
  /// Saturates at ~292e3 years; sum_saturations() counts clamped adds.
  double sum() const {
    return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) *
           1e-6;
  }
  uint64_t sum_saturations() const {
    return sum_saturations_.load(std::memory_order_relaxed);
  }

  /// Upper edge (seconds) of the bucket holding the ceil(q * count)-th
  /// smallest observation; 0 when empty. q outside [0,1] is clamped.
  double Quantile(double q) const;

  /// Lower edge (seconds) of the first / upper edge of the last non-empty
  /// bucket; 0 when empty.
  double MinEstimate() const;
  double MaxEstimate() const;

  /// Bucket introspection (for export and tests). Buckets are
  /// [BucketLowerMicros(i), BucketUpperMicros(i)); the final index is the
  /// overflow bucket.
  static size_t num_buckets() { return kNumBuckets; }
  uint64_t bucket_count(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  static size_t BucketIndexForMicros(uint64_t micros);
  static uint64_t BucketLowerMicros(size_t index);
  static uint64_t BucketUpperMicros(size_t index);

  void ResetForTest();

 private:
  // Buckets 0..63 cover [0,64)us exactly; each octave o in [6,kMaxOctave]
  // adds kSubBuckets more; +1 overflow bucket at the end.
  static constexpr size_t kNumBuckets =
      2 * kSubBuckets + (kMaxOctave - kSubBucketBits) * kSubBuckets + 1;

  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_micros_{0};
  std::atomic<uint64_t> sum_saturations_{0};
};

/// Converts a duration in seconds to integer micros, clamping NaN and
/// negatives to 0 and values beyond int64 range to INT64_MAX (plain
/// llround would be undefined there).
int64_t MicrosFromSecondsSaturated(double seconds);

/// `sum += delta`, clamping at the int64 extremes instead of wrapping.
/// Returns true when the add was clamped. Once saturated, the sum stays
/// pinned at the extreme.
bool SaturatingFetchAdd(std::atomic<int64_t>& sum, int64_t delta);

}  // namespace kgc::obs

#endif  // KGC_OBS_HDR_HISTOGRAM_H_
