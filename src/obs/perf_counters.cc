#include "obs/perf_counters.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/resource_stats.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace kgc::obs {
namespace {

constexpr int kNumEvents = 4;

struct PerfState {
  bool started = false;          // StartRunPerfCounters ran (even if all failed)
  bool forced_unavailable = false;
  int fds[kNumEvents] = {-1, -1, -1, -1};
};

std::mutex g_mutex;
PerfState g_state;

#if defined(__linux__)

constexpr uint64_t kEventConfigs[kNumEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int OpenEvent(uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  // inherit: count threads created after the open (the lazy worker pool).
  // This is why the events are independent fds — inherited events cannot
  // be read as a PERF_FORMAT_GROUP.
  attr.inherit = 1;
  // Counting user work only also lowers the perf_event_paranoid bar.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0ul);
  return static_cast<int>(fd);
}

int64_t ReadEvent(int fd) {
  if (fd < 0) return -1;
  uint64_t value = 0;
  const ssize_t n = read(fd, &value, sizeof(value));
  if (n != static_cast<ssize_t>(sizeof(value))) return -1;
  return static_cast<int64_t>(value);
}

void CloseAllLocked() {
  for (int& fd : g_state.fds) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

#else  // !__linux__

int OpenEvent(uint64_t) { return -1; }
int64_t ReadEvent(int) { return -1; }
void CloseAllLocked() {}

#endif

bool AnyOpenLocked() {
  for (const int fd : g_state.fds) {
    if (fd >= 0) return true;
  }
  return false;
}

}  // namespace

void StartRunPerfCounters() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state.started) return;
  g_state.started = true;
  const char* env = std::getenv("KGC_PERF");
  if (env == nullptr || env[0] == '\0' || env[0] == '0') return;
  if (g_state.forced_unavailable || TelemetryFailpointHit("obs:perf")) return;
#if defined(__linux__)
  for (int i = 0; i < kNumEvents; ++i) {
    g_state.fds[i] = OpenEvent(kEventConfigs[i]);  // EPERM/ENOENT → -1
  }
#endif
}

bool RunPerfActive() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state.forced_unavailable) return false;
  return AnyOpenLocked();
}

PerfValues RunPerfValues() {
  std::lock_guard<std::mutex> lock(g_mutex);
  PerfValues values;
  if (g_state.forced_unavailable || TelemetryFailpointHit("obs:perf")) {
    return values;
  }
  values.cycles = ReadEvent(g_state.fds[0]);
  values.instructions = ReadEvent(g_state.fds[1]);
  values.cache_misses = ReadEvent(g_state.fds[2]);
  values.branch_misses = ReadEvent(g_state.fds[3]);
  values.ok = values.cycles >= 0 || values.instructions >= 0 ||
              values.cache_misses >= 0 || values.branch_misses >= 0;
  return values;
}

void ForcePerfUnavailableForTest(bool unavailable) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_state.forced_unavailable = unavailable;
  if (unavailable) {
    CloseAllLocked();
  } else {
    g_state.started = false;  // allow a fresh StartRunPerfCounters
  }
}

}  // namespace kgc::obs
