#include "eval/comparison.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace kgc {
namespace {

double Round2(double x) { return std::round(x * 100.0) / 100.0; }
double Round3(double x) { return std::round(x * 1000.0) / 1000.0; }

// Per-triple filtered reciprocal rank, pooled over both sides.
double TripleFmrr(const TripleRanks& r) {
  return 0.5 * (1.0 / r.head_filtered + 1.0 / r.tail_filtered);
}

void CheckAligned(const std::vector<LabeledRanks>& models) {
  KGC_CHECK(!models.empty());
  for (const LabeledRanks& m : models) {
    KGC_CHECK(m.ranks != nullptr);
    KGC_CHECK_EQ(m.ranks->size(), models[0].ranks->size());
  }
}

}  // namespace

std::vector<BestRelationCounts> CountBestRelations(
    const std::vector<LabeledRanks>& models) {
  CheckAligned(models);
  std::vector<std::unordered_map<RelationId, LinkPredictionMetrics>>
      per_relation;
  per_relation.reserve(models.size());
  for (const LabeledRanks& m : models) {
    per_relation.push_back(ComputeMetricsByRelation(*m.ranks));
  }

  std::vector<BestRelationCounts> counts(models.size());
  for (size_t m = 0; m < models.size(); ++m) counts[m].model = models[m].model;

  for (const auto& [relation, unused] : per_relation[0]) {
    (void)unused;
    // Gather rounded measures for each model on this relation.
    std::vector<double> fmr(models.size()), fh10(models.size()),
        fh1(models.size()), fmrr(models.size());
    for (size_t m = 0; m < models.size(); ++m) {
      const LinkPredictionMetrics& metrics = per_relation[m].at(relation);
      fmr[m] = Round2(metrics.fmr);
      fh10[m] = Round2(metrics.fhits10);
      fh1[m] = Round2(metrics.fhits1);
      fmrr[m] = Round3(metrics.fmrr);
    }
    const double best_fmr = *std::min_element(fmr.begin(), fmr.end());
    const double best_fh10 = *std::max_element(fh10.begin(), fh10.end());
    const double best_fh1 = *std::max_element(fh1.begin(), fh1.end());
    const double best_fmrr = *std::max_element(fmrr.begin(), fmrr.end());
    for (size_t m = 0; m < models.size(); ++m) {
      if (fmr[m] == best_fmr) counts[m].fmr++;
      if (fh10[m] == best_fh10) counts[m].fhits10++;
      if (fh1[m] == best_fh1) counts[m].fhits1++;
      if (fmrr[m] == best_fmrr) counts[m].fmrr++;
    }
  }
  return counts;
}

WinShareHeatmap ComputePerRelationWinShare(
    const std::vector<LabeledRanks>& models) {
  CheckAligned(models);
  const std::vector<TripleRanks>& reference = *models[0].ranks;

  WinShareHeatmap heatmap;
  std::unordered_map<RelationId, size_t> relation_index;
  std::vector<size_t> relation_totals;
  for (const TripleRanks& r : reference) {
    if (relation_index.emplace(r.triple.relation, heatmap.relations.size())
            .second) {
      heatmap.relations.push_back(r.triple.relation);
      relation_totals.push_back(0);
    }
  }
  std::sort(heatmap.relations.begin(), heatmap.relations.end());
  relation_index.clear();
  for (size_t k = 0; k < heatmap.relations.size(); ++k) {
    relation_index[heatmap.relations[k]] = k;
  }

  heatmap.share.assign(models.size(),
                       std::vector<double>(heatmap.relations.size(), 0.0));
  for (size_t i = 0; i < reference.size(); ++i) {
    const size_t k = relation_index.at(reference[i].triple.relation);
    relation_totals[k]++;
    double best = -1.0;
    for (const LabeledRanks& m : models) {
      best = std::max(best, TripleFmrr((*m.ranks)[i]));
    }
    for (size_t m = 0; m < models.size(); ++m) {
      if (TripleFmrr((*models[m].ranks)[i]) == best) {
        heatmap.share[m][k] += 1.0;
      }
    }
  }
  for (size_t m = 0; m < models.size(); ++m) {
    for (size_t k = 0; k < heatmap.relations.size(); ++k) {
      if (relation_totals[k] > 0) {
        heatmap.share[m][k] *=
            100.0 / static_cast<double>(relation_totals[k]);
      }
    }
  }
  return heatmap;
}

OutperformRedundancyShare ComputeOutperformRedundancy(
    const std::vector<TripleRanks>& challenger,
    const std::vector<TripleRanks>& baseline,
    const std::vector<bool>& has_train_redundancy) {
  KGC_CHECK_EQ(challenger.size(), baseline.size());
  KGC_CHECK_EQ(challenger.size(), has_train_redundancy.size());

  size_t wins_fmr = 0, red_fmr = 0;
  size_t wins_fh10 = 0, red_fh10 = 0;
  size_t wins_fh1 = 0, red_fh1 = 0;
  size_t wins_fmrr = 0, red_fmrr = 0;
  for (size_t i = 0; i < challenger.size(); ++i) {
    const TripleRanks& c = challenger[i];
    const TripleRanks& b = baseline[i];
    const bool redundant = has_train_redundancy[i];
    const double c_rank = c.head_filtered + c.tail_filtered;
    const double b_rank = b.head_filtered + b.tail_filtered;
    if (c_rank < b_rank) {
      ++wins_fmr;
      if (redundant) ++red_fmr;
    }
    const auto hits = [](const TripleRanks& r, double k) {
      return (r.head_filtered <= k ? 1 : 0) + (r.tail_filtered <= k ? 1 : 0);
    };
    if (hits(c, 10) > hits(b, 10)) {
      ++wins_fh10;
      if (redundant) ++red_fh10;
    }
    if (hits(c, 1) > hits(b, 1)) {
      ++wins_fh1;
      if (redundant) ++red_fh1;
    }
    if (TripleFmrr(c) > TripleFmrr(b)) {
      ++wins_fmrr;
      if (redundant) ++red_fmrr;
    }
  }

  OutperformRedundancyShare share;
  const auto pct = [](size_t num, size_t den) {
    return den > 0 ? 100.0 * static_cast<double>(num) /
                         static_cast<double>(den)
                   : 0.0;
  };
  share.fmr = pct(red_fmr, wins_fmr);
  share.fhits10 = pct(red_fh10, wins_fh10);
  share.fhits1 = pct(red_fh1, wins_fh1);
  share.fmrr = pct(red_fmrr, wins_fmrr);
  share.outperform_fmr = wins_fmr;
  share.outperform_fhits10 = wins_fh10;
  share.outperform_fhits1 = wins_fh1;
  share.outperform_fmrr = wins_fmrr;
  return share;
}

std::vector<std::array<int, 4>> CountBestRelationsByCategory(
    const std::vector<LabeledRanks>& models,
    const std::vector<RelationCategory>& categories) {
  CheckAligned(models);
  std::vector<std::unordered_map<RelationId, LinkPredictionMetrics>>
      per_relation;
  per_relation.reserve(models.size());
  for (const LabeledRanks& m : models) {
    per_relation.push_back(ComputeMetricsByRelation(*m.ranks));
  }

  std::vector<std::array<int, 4>> counts(models.size(),
                                         std::array<int, 4>{});
  for (const auto& [relation, unused] : per_relation[0]) {
    (void)unused;
    KGC_CHECK_LT(static_cast<size_t>(relation), categories.size());
    const size_t category =
        static_cast<size_t>(categories[static_cast<size_t>(relation)]);
    std::vector<double> fmrr(models.size());
    for (size_t m = 0; m < models.size(); ++m) {
      fmrr[m] = Round3(per_relation[m].at(relation).fmrr);
    }
    const double best = *std::max_element(fmrr.begin(), fmrr.end());
    for (size_t m = 0; m < models.size(); ++m) {
      if (fmrr[m] == best) counts[m][category]++;
    }
  }
  return counts;
}

}  // namespace kgc
