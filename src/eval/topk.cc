// Top-K retrieval engine implementation. See topk.h for the contract and
// DESIGN.md "Top-K retrieval" for the blocking / pruning scheme.

#include "eval/topk.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kg/triple.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/vecmath.h"

namespace kgc {
namespace {

// Per-shard counter tallies, merged into the obs registry after the join.
// Each (direction, relation) group is processed whole by exactly one shard,
// so every group's contribution is a pure function of the queries and the
// model, and the merged totals are thread-count independent.
struct Tally {
  uint64_t tiles_pruned = 0;
  uint64_t entities_scored = 0;
  uint64_t heap_pushes = 0;
  uint64_t queries_batched = 0;
};

// The engine-wide strict total order: higher score wins, entity id breaks
// ties. Makes every top-K set unique, hence order- and thread-independent.
inline bool Better(float score_a, EntityId a, float score_b, EntityId b) {
  return score_a > score_b || (score_a == score_b && a < b);
}

// K-bounded selection heap. std::push_heap with `Better` as the comparator
// builds a heap whose root is the comparator-maximum — the entry that is
// better than none of the others, i.e. the WORST kept entry — which is
// exactly the eviction candidate.
class BoundedHeap {
 public:
  explicit BoundedHeap(size_t k) : k_(k) { entries_.reserve(k); }

  bool full() const { return entries_.size() == k_; }

  /// True when (score, e) would enter the heap right now. A deferred
  /// candidate must be re-checked after its filter probe: the threshold
  /// only tightens, so a stale accept is never a wrong reject.
  bool WouldAccept(float score, EntityId e) const {
    if (entries_.size() < k_) return true;
    const TopKEntry& worst = entries_.front();
    return Better(score, e, worst.score, worst.entity);
  }

  /// Keeps (score, e) if it belongs in the top k seen so far; returns
  /// whether it was kept. The final contents are the k best entries pushed,
  /// independent of push order (the order is a strict total order).
  bool Push(float score, EntityId e) {
    if (entries_.size() < k_) {
      entries_.push_back({score, e});
      std::push_heap(entries_.begin(), entries_.end(), WorstAtTop);
      return true;
    }
    const TopKEntry& worst = entries_.front();
    if (!Better(score, e, worst.score, worst.entity)) return false;
    std::pop_heap(entries_.begin(), entries_.end(), WorstAtTop);
    entries_.back() = {score, e};
    std::push_heap(entries_.begin(), entries_.end(), WorstAtTop);
    return true;
  }

  /// Only meaningful when full(): the k-th best score, i.e. the pruning
  /// threshold a new candidate must strictly beat (or tie and win on id).
  float worst_score() const { return entries_.front().score; }

  std::vector<TopKEntry> Sorted() && {
    std::sort(entries_.begin(), entries_.end(),
              [](const TopKEntry& a, const TopKEntry& b) {
                return Better(a.score, a.entity, b.score, b.entity);
              });
    return std::move(entries_);
  }

 private:
  static bool WorstAtTop(const TopKEntry& a, const TopKEntry& b) {
    return Better(a.score, a.entity, b.score, b.entity);
  }

  size_t k_;
  std::vector<TopKEntry> entries_;
};

// Norm index over one candidate table: rows permuted into ascending-norm
// order and copied packed (stride == dim) so norm-coherent tiles are also
// cache-contiguous, plus per-tile norm bands for the pruning bound.
struct NormIndex {
  size_t dim = 0;
  size_t tile_rows = 0;
  size_t num_tiles = 0;
  std::vector<uint32_t> perm;   // position -> original entity id
  std::vector<float> rows;      // permuted packed copy
  std::vector<float> norms;     // permuted ||e||_2, ascending
  std::vector<float> tile_lo;   // norms[first of tile]
  std::vector<float> tile_hi;   // norms[last of tile]
};

std::shared_ptr<const NormIndex> BuildNormIndex(const SweepSpec& spec,
                                                size_t tile_rows) {
  auto index = std::make_shared<NormIndex>();
  const size_t n = spec.num_rows;
  const size_t dim = spec.dim;
  index->dim = dim;
  index->tile_rows = tile_rows;
  index->num_tiles = (n + tile_rows - 1) / tile_rows;
  // Entity norms through the same kernel reduction the sweep uses (distance
  // to the zero vector) so both sides of the bound share one rounding
  // regime; the pruning slack absorbs what little remains.
  std::vector<float> zero(dim, 0.0f);
  std::vector<float> norms(n);
  vec::Ops().l2_rows(zero.data(), spec.rows, n, spec.stride, dim,
                     norms.data());
  index->perm.resize(n);
  for (size_t i = 0; i < n; ++i) index->perm[i] = static_cast<uint32_t>(i);
  std::sort(index->perm.begin(), index->perm.end(),
            [&](uint32_t a, uint32_t b) {
              if (norms[a] != norms[b]) return norms[a] < norms[b];
              return a < b;
            });
  index->rows.resize(n * dim);
  index->norms.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t src = index->perm[i];
    index->norms[i] = norms[src];
    std::memcpy(index->rows.data() + i * dim,
                spec.rows + static_cast<size_t>(src) * spec.stride,
                dim * sizeof(float));
  }
  index->tile_lo.resize(index->num_tiles);
  index->tile_hi.resize(index->num_tiles);
  for (size_t t = 0; t < index->num_tiles; ++t) {
    const size_t begin = t * tile_rows;
    const size_t end = std::min(n, begin + tile_rows);
    index->tile_lo[t] = index->norms[begin];
    index->tile_hi[t] = index->norms[end - 1];
  }
  return index;
}

// Run-local cache of norm indexes, keyed by the candidate-table pointer.
// Only stable_rows tables are cached (the pointer identifies the table for
// the duration of one Run); heads and tails of the same model share the
// entity table, so they share one index. Run-local scope means a model
// that trains between Runs can never serve a stale index.
struct NormIndexCache {
  std::mutex mu;
  std::unordered_map<const float*, std::shared_ptr<const NormIndex>> map;
};

// Exact score of one (query, entity) pair via the 1-row kernel on the
// original table. Row kernels reduce each row independently, so a 1-row
// call reproduces the blocked sweep's bits for that row exactly.
float ScoreOneRow(const vec::KernelOps& ops, const SweepSpec& spec,
                  const float* v, const float* coef, const float* q,
                  EntityId e) {
  const float* row = spec.rows + static_cast<size_t>(e) * spec.stride;
  float val = 0.0f;
  switch (spec.kind) {
    case SweepKind::kDot:
      ops.dot_rows(q, row, 1, spec.stride, spec.dim, &val);
      break;
    case SweepKind::kL1:
      ops.l1_rows(q, row, 1, spec.stride, spec.dim, &val);
      break;
    case SweepKind::kL2:
      ops.l2_rows(q, row, 1, spec.stride, spec.dim, &val);
      break;
    case SweepKind::kL1Offset:
      ops.l1_offset_rows(q, v, coef + e, spec.coef_scale, row, 1, spec.stride,
                         spec.dim, &val);
      break;
    case SweepKind::kL2Offset:
      ops.l2_offset_rows(q, v, coef + e, spec.coef_scale, row, 1, spec.stride,
                         spec.dim, &val);
      break;
    case SweepKind::kCabs:
      ops.cabs_rows(q, row, 1, spec.stride, spec.dim, &val);
      break;
    case SweepKind::kNone:
      break;
  }
  if (spec.bias) val += spec.bias[e];
  return spec.negate ? -val : val;
}

// Dispatches one blocked kernel call. `coef` must already be aligned with
// `rows` (sliced for the plain path, permuted for the pruned path).
void SweepBlock(const vec::KernelOps& ops, SweepKind kind, const float* qs,
                size_t q_stride, size_t num_q, const float* v,
                const float* coef, float coef_scale, const float* rows,
                size_t num_rows, size_t stride, size_t dim, float* out,
                size_t out_stride) {
  switch (kind) {
    case SweepKind::kDot:
      ops.dot_rows_block(qs, q_stride, num_q, rows, num_rows, stride, dim,
                         out, out_stride);
      break;
    case SweepKind::kL1:
      ops.l1_rows_block(qs, q_stride, num_q, rows, num_rows, stride, dim, out,
                        out_stride);
      break;
    case SweepKind::kL2:
      ops.l2_rows_block(qs, q_stride, num_q, rows, num_rows, stride, dim, out,
                        out_stride);
      break;
    case SweepKind::kL1Offset:
      ops.l1_offset_rows_block(qs, q_stride, num_q, v, coef, coef_scale, rows,
                               num_rows, stride, dim, out, out_stride);
      break;
    case SweepKind::kL2Offset:
      ops.l2_offset_rows_block(qs, q_stride, num_q, v, coef, coef_scale, rows,
                               num_rows, stride, dim, out, out_stride);
      break;
    case SweepKind::kCabs:
      ops.cabs_rows_block(qs, q_stride, num_q, rows, num_rows, stride, dim,
                          out, out_stride);
      break;
    case SweepKind::kNone:
      break;
  }
}

inline uint64_t FilterKey(bool tails, RelationId r, EntityId anchor,
                          EntityId candidate) {
  return tails ? PackTriple(anchor, r, candidate)
               : PackTriple(candidate, r, anchor);
}

// Full Score* sweep with heap selection: the oracle, the cross-check
// reference, and the fallback for models without a kernel sweep.
TopKResult FullSweepTopK(const LinkPredictor& predictor,
                         const TopKQuery& query, int k,
                         const TripleStore* filter, Tally* tally) {
  const size_t n = static_cast<size_t>(predictor.num_entities());
  const size_t kk = static_cast<size_t>(k);
  std::vector<float> scores(n);
  if (query.tails) {
    predictor.ScoreTails(query.anchor, query.relation, scores);
  } else {
    predictor.ScoreHeads(query.relation, query.anchor, scores);
  }
  uint64_t pushes = 0;
  TopKResult result;
  BoundedHeap raw(kk);
  for (size_t e = 0; e < n; ++e) {
    if (raw.Push(scores[e], static_cast<EntityId>(e))) ++pushes;
  }
  if (filter != nullptr) {
    BoundedHeap filt(kk);
    std::vector<uint64_t> keys;
    std::vector<std::pair<EntityId, float>> cands;
    std::vector<uint8_t> found;
    constexpr size_t kProbeBatch = 1024;
    auto flush = [&] {
      if (keys.empty()) return;
      found.resize(keys.size());
      filter->ContainsBatch(keys, found.data());
      for (size_t j = 0; j < keys.size(); ++j) {
        if (found[j]) continue;
        if (filt.Push(cands[j].second, cands[j].first)) ++pushes;
      }
      keys.clear();
      cands.clear();
    };
    for (size_t e = 0; e < n; ++e) {
      const EntityId ent = static_cast<EntityId>(e);
      if (!filt.WouldAccept(scores[e], ent)) continue;
      keys.push_back(FilterKey(query.tails, query.relation, query.anchor, ent));
      cands.emplace_back(ent, scores[e]);
      if (keys.size() >= kProbeBatch) flush();
    }
    flush();
    result.filtered = std::move(filt).Sorted();
  }
  result.raw = std::move(raw).Sorted();
  if (filter == nullptr) result.filtered = result.raw;
  result.watch_scores.reserve(query.watch.size());
  for (EntityId w : query.watch) {
    result.watch_scores.push_back(scores[static_cast<size_t>(w)]);
  }
  if (tally != nullptr) {
    tally->entities_scored += n;
    tally->heap_pushes += pushes;
  }
  return result;
}

inline uint32_t Bits(float f) { return std::bit_cast<uint32_t>(f); }

void CheckEntriesEqual(const std::vector<TopKEntry>& fast,
                       const std::vector<TopKEntry>& oracle) {
  KGC_CHECK_EQ(fast.size(), oracle.size());
  for (size_t j = 0; j < fast.size(); ++j) {
    KGC_CHECK_EQ(fast[j].entity, oracle[j].entity);
    KGC_CHECK_EQ(Bits(fast[j].score), Bits(oracle[j].score));
  }
}

void CheckAgainstOracle(const LinkPredictor& predictor,
                        const TopKQuery& query, int k,
                        const TripleStore* filter, const TopKResult& fast) {
  const TopKResult oracle =
      FullSweepTopK(predictor, query, k, filter, nullptr);
  CheckEntriesEqual(fast.raw, oracle.raw);
  CheckEntriesEqual(fast.filtered, oracle.filtered);
  KGC_CHECK_EQ(fast.watch_scores.size(), oracle.watch_scores.size());
  for (size_t j = 0; j < fast.watch_scores.size(); ++j) {
    KGC_CHECK_EQ(Bits(fast.watch_scores[j]), Bits(oracle.watch_scores[j]));
  }
}

// Processes whole (direction, relation) groups on one shard. All per-group
// buffers live here and are reused across the shard's groups.
class GroupRunner {
 public:
  GroupRunner(const LinkPredictor& predictor, const TopKOptions& options,
              std::span<const TopKQuery> queries, const TripleStore* filter,
              NormIndexCache* cache, std::vector<TopKResult>* results,
              Tally* tally)
      : predictor_(predictor),
        options_(options),
        queries_(queries),
        filter_(filter),
        cache_(cache),
        results_(results),
        tally_(tally) {}

  void ProcessGroup(const size_t* order, size_t count) {
    order_ = order;
    count_ = count;
    const TopKQuery& first = queries_[order[0]];
    tails_ = first.tails;
    relation_ = first.relation;
    SweepSpec spec;
    if (!predictor_.DescribeSweep(tails_, relation_, &spec) ||
        spec.kind == SweepKind::kNone) {
      for (size_t i = 0; i < count; ++i) {
        (*results_)[order[i]] = FullSweepTopK(predictor_, queries_[order[i]],
                                              options_.k, filter_, tally_);
      }
      return;
    }
    const size_t qlen = spec.query_len;
    const size_t kk = static_cast<size_t>(options_.k);
    // coef/v may alias model scratch the BuildSweepQuery calls below
    // clobber — copy them up front. rows/bias alias table storage that
    // stays put for the whole group (for stable_rows == false, a
    // thread-local buffer this thread keeps pointed at this relation).
    coef_.clear();
    if (spec.coef) coef_.assign(spec.coef, spec.coef + spec.num_rows);
    v_.clear();
    if (spec.v) v_.assign(spec.v, spec.v + spec.dim);
    const float* v = spec.v ? v_.data() : nullptr;
    const float* coef = spec.coef ? coef_.data() : nullptr;

    qbuf_.resize(count * qlen);
    for (size_t i = 0; i < count; ++i) {
      predictor_.BuildSweepQuery(
          tails_, relation_, queries_[order[i]].anchor,
          std::span<float>(qbuf_.data() + i * qlen, qlen));
    }
    tally_->queries_batched += count;

    const auto& ops = vec::Ops();
    for (size_t i = 0; i < count; ++i) {
      const TopKQuery& q = queries_[order[i]];
      auto& watch_out = (*results_)[order[i]].watch_scores;
      watch_out.resize(q.watch.size());
      for (size_t w = 0; w < q.watch.size(); ++w) {
        watch_out[w] =
            ScoreOneRow(ops, spec, v, coef, qbuf_.data() + i * qlen,
                        q.watch[w]);
      }
    }

    std::vector<BoundedHeap> raw(count, BoundedHeap(kk));
    std::vector<BoundedHeap> filt;
    if (filter_) filt.assign(count, BoundedHeap(kk));

    const bool distance_kind = spec.kind == SweepKind::kL1 ||
                               spec.kind == SweepKind::kL2 ||
                               spec.kind == SweepKind::kL1Offset ||
                               spec.kind == SweepKind::kL2Offset;
    // Pruning needs "lower bound on distance == upper bound on score",
    // which holds only for negated distance sweeps without a bias term.
    if (options_.prune && distance_kind && spec.negate &&
        spec.bias == nullptr) {
      RunPruned(spec, v, coef, raw, filt);
    } else {
      RunPlain(spec, v, coef, raw, filt);
    }

    for (size_t i = 0; i < count; ++i) {
      TopKResult& result = (*results_)[order[i]];
      result.raw = std::move(raw[i]).Sorted();
      result.filtered = filter_ ? std::move(filt[i]).Sorted() : result.raw;
    }
    if (options_.cross_check) {
      for (size_t i = 0; i < count; ++i) {
        CheckAgainstOracle(predictor_, queries_[order[i]], options_.k,
                           filter_, (*results_)[order[i]]);
      }
    }
  }

 private:
  struct Candidate {
    uint32_t query;  // local index within the group
    EntityId entity;
    float score;
  };

  // Flushes the deferred filtered-heap candidates of one (block, tile):
  // one batched membership probe, then survivors re-checked against the
  // (possibly tightened) threshold by Push itself.
  void ProbeAndPush(std::vector<BoundedHeap>& filt) {
    if (cands_.empty()) return;
    found_.resize(keys_.size());
    filter_->ContainsBatch(keys_, found_.data());
    for (size_t j = 0; j < cands_.size(); ++j) {
      if (found_[j]) continue;
      if (filt[cands_[j].query].Push(cands_[j].score, cands_[j].entity)) {
        ++tally_->heap_pushes;
      }
    }
    cands_.clear();
    keys_.clear();
  }

  // Scans one tile's kernel output for a set of active queries. `entity_of`
  // maps a tile-local row to its entity id.
  template <typename EntityOf>
  void ScanTile(const SweepSpec& spec, const std::vector<uint32_t>& active,
                const float* out, size_t out_stride, size_t tile_n,
                size_t tile_base, EntityOf entity_of,
                std::vector<BoundedHeap>& raw,
                std::vector<BoundedHeap>& filt) {
    for (size_t a = 0; a < active.size(); ++a) {
      const uint32_t q = active[a];
      const float* row = out + a * out_stride;
      for (size_t i = 0; i < tile_n; ++i) {
        const EntityId ent = entity_of(tile_base + i);
        float score = row[i];
        if (spec.bias) score += spec.bias[ent];
        if (spec.negate) score = -score;
        if (raw[q].Push(score, ent)) ++tally_->heap_pushes;
        if (filter_ && filt[q].WouldAccept(score, ent)) {
          cands_.push_back({q, ent, score});
          keys_.push_back(FilterKey(tails_, relation_,
                                    queries_[order_[q]].anchor, ent));
        }
      }
    }
    tally_->entities_scored += active.size() * tile_n;
    if (filter_) ProbeAndPush(filt);
  }

  // Blocked sweep over the original table in natural order, no pruning.
  void RunPlain(const SweepSpec& spec, const float* v, const float* coef,
                std::vector<BoundedHeap>& raw,
                std::vector<BoundedHeap>& filt) {
    const size_t qlen = spec.query_len;
    const size_t tile_rows = static_cast<size_t>(options_.tile_rows);
    const size_t query_block = static_cast<size_t>(options_.query_block);
    out_.resize(query_block * tile_rows);
    const auto& ops = vec::Ops();
    std::vector<uint32_t> active;
    for (size_t qb = 0; qb < count_; qb += query_block) {
      const size_t bq = std::min(query_block, count_ - qb);
      active.resize(bq);
      for (size_t i = 0; i < bq; ++i) active[i] = static_cast<uint32_t>(qb + i);
      for (size_t base = 0; base < spec.num_rows; base += tile_rows) {
        const size_t tile_n = std::min(tile_rows, spec.num_rows - base);
        SweepBlock(ops, spec.kind, qbuf_.data() + qb * qlen, qlen, bq, v,
                   coef ? coef + base : nullptr, spec.coef_scale,
                   spec.rows + base * spec.stride, tile_n, spec.stride,
                   spec.dim, out_.data(), tile_n);
        ScanTile(
            spec, active, out_.data(), tile_n, tile_n, base,
            [](size_t pos) { return static_cast<EntityId>(pos); }, raw, filt);
      }
    }
  }

  // Norm-pruned sweep over the permuted packed copy. Queries are sorted by
  // norm and blocked; tiles are visited in ascending block-level bound
  // order so the heaps tighten before the distant tiles come up, which is
  // what lets those tiles be skipped.
  void RunPruned(const SweepSpec& spec, const float* v, const float* coef,
                 std::vector<BoundedHeap>& raw,
                 std::vector<BoundedHeap>& filt) {
    const size_t n = spec.num_rows;
    const size_t dim = spec.dim;
    const size_t qlen = spec.query_len;
    std::shared_ptr<const NormIndex> index;
    const size_t tile_rows = static_cast<size_t>(options_.tile_rows);
    if (spec.stable_rows) {
      std::lock_guard<std::mutex> lock(cache_->mu);
      auto& slot = cache_->map[spec.rows];
      if (!slot) slot = BuildNormIndex(spec, tile_rows);
      index = slot;
    } else {
      index = BuildNormIndex(spec, tile_rows);
    }
    const size_t num_tiles = index->num_tiles;
    if (num_tiles == 0) return;

    // Effective per-tile norm bands. The offset kinds score the shifted
    // query q' = q + coef_scale * coef_e * v, whose norm differs from
    // ||q|| by at most w_e = |coef_scale * coef_e| * ||v||; widening the
    // row's band by w_e keeps | ||q|| - band | a true distance bound.
    const bool offset = spec.kind == SweepKind::kL1Offset ||
                        spec.kind == SweepKind::kL2Offset;
    std::vector<float> lo(num_tiles);
    std::vector<float> hi(num_tiles);
    std::vector<float> coef_perm;
    if (offset) {
      coef_perm.resize(n);
      for (size_t i = 0; i < n; ++i) coef_perm[i] = coef[index->perm[i]];
      double vsq = 0.0;
      for (size_t j = 0; j < dim; ++j) {
        vsq += static_cast<double>(v[j]) * static_cast<double>(v[j]);
      }
      const double vnorm = std::sqrt(vsq);
      for (size_t t = 0; t < num_tiles; ++t) {
        const size_t begin = t * tile_rows;
        const size_t end = std::min(n, begin + tile_rows);
        double tlo = index->norms[begin];
        double thi = index->norms[end - 1];
        for (size_t i = begin; i < end; ++i) {
          const double w =
              std::abs(static_cast<double>(spec.coef_scale) * coef_perm[i]) *
              vnorm;
          tlo = std::min(tlo, static_cast<double>(index->norms[i]) - w);
          thi = std::max(thi, static_cast<double>(index->norms[i]) + w);
        }
        lo[t] = static_cast<float>(std::max(0.0, tlo));
        hi[t] = static_cast<float>(thi);
      }
    } else {
      lo = index->tile_lo;
      hi = index->tile_hi;
    }

    // Query norms through the same kernel reduction as the entity norms.
    std::vector<float> zero(dim, 0.0f);
    std::vector<float> qnorm(count_);
    vec::Ops().l2_rows(zero.data(), qbuf_.data(), count_, qlen, dim,
                       qnorm.data());
    // Blocks of norm-adjacent queries share tile visit order and prune
    // together. The sort key ends with the group-local index, so the order
    // (and with it every counter) is deterministic.
    std::vector<uint32_t> qorder(count_);
    for (size_t i = 0; i < count_; ++i) qorder[i] = static_cast<uint32_t>(i);
    std::sort(qorder.begin(), qorder.end(), [&](uint32_t a, uint32_t b) {
      if (qnorm[a] != qnorm[b]) return qnorm[a] < qnorm[b];
      return a < b;
    });

    const size_t query_block = static_cast<size_t>(options_.query_block);
    out_.resize(query_block * tile_rows);
    qpack_.resize(query_block * qlen);
    const auto& ops = vec::Ops();
    const NormIndex& idx = *index;

    // Seed phase: each query first scans the tiles whose norm band
    // brackets its own norm — with norm-sorted tiles those hold its
    // nearest candidates along the only axis the bound sees — so both
    // heaps are full and tight before the main sweep starts. Without
    // this, the ascending-bound visit order fills the heaps with
    // whatever low tile comes first, and every tile on the near side of
    // the query's norm gets scanned before the threshold collapses.
    const size_t kk = static_cast<size_t>(options_.k);
    const size_t seed_count =
        std::min(num_tiles, 1 + (kk + tile_rows - 1) / tile_rows);
    std::vector<uint32_t> seed_tiles(count_ * seed_count);
    std::vector<uint32_t> one(1);
    for (size_t i = 0; i < count_; ++i) {
      // Last tile whose low edge does not exceed the query norm. The
      // unwidened tile_lo is only a placement heuristic here; seeds are
      // warm-up, not a correctness bound.
      size_t t0 = static_cast<size_t>(
          std::upper_bound(idx.tile_lo.begin(), idx.tile_lo.end(),
                           qnorm[i]) -
          idx.tile_lo.begin());
      if (t0 > 0) --t0;
      uint32_t* seeds = seed_tiles.data() + i * seed_count;
      size_t lo_t = t0;
      size_t hi_t = t0;
      size_t filled = 0;
      seeds[filled++] = static_cast<uint32_t>(t0);
      while (filled < seed_count) {
        if (hi_t + 1 < num_tiles) {
          seeds[filled++] = static_cast<uint32_t>(++hi_t);
        } else {
          seeds[filled++] = static_cast<uint32_t>(--lo_t);
        }
      }
      std::sort(seeds, seeds + seed_count);
      one[0] = static_cast<uint32_t>(i);
      for (size_t s = 0; s < seed_count; ++s) {
        const size_t base = static_cast<size_t>(seeds[s]) * tile_rows;
        const size_t tile_n = std::min(tile_rows, n - base);
        SweepBlock(ops, spec.kind, qbuf_.data() + i * qlen, qlen, 1, v,
                   offset ? coef_perm.data() + base : nullptr,
                   spec.coef_scale, index->rows.data() + base * dim, tile_n,
                   dim, dim, out_.data(), tile_n);
        ScanTile(
            spec, one, out_.data(), tile_n, tile_n, base,
            [&idx](size_t pos) { return static_cast<EntityId>(idx.perm[pos]); },
            raw, filt);
      }
    }

    std::vector<std::pair<float, uint32_t>> tile_order(num_tiles);
    std::vector<uint32_t> active;
    for (size_t qb = 0; qb < count_; qb += query_block) {
      const size_t bq = std::min(query_block, count_ - qb);
      const double block_min = qnorm[qorder[qb]];
      const double block_max = qnorm[qorder[qb + bq - 1]];
      for (size_t t = 0; t < num_tiles; ++t) {
        const double bound = std::max(
            {0.0, block_min - hi[t], static_cast<double>(lo[t]) - block_max});
        tile_order[t] = {static_cast<float>(bound),
                         static_cast<uint32_t>(t)};
      }
      std::sort(tile_order.begin(), tile_order.end());
      for (const auto& [block_bound, t] : tile_order) {
        const size_t base = static_cast<size_t>(t) * tile_rows;
        const size_t tile_n = std::min(tile_rows, n - base);
        active.clear();
        for (size_t i = 0; i < bq; ++i) {
          const uint32_t q = qorder[qb + i];
          // Seed tiles were already scanned for this query; rescanning
          // would push their entities into the heaps twice.
          const uint32_t* seeds = seed_tiles.data() + q * seed_count;
          bool seeded = false;
          for (size_t s = 0; s < seed_count; ++s) {
            if (seeds[s] == t) {
              seeded = true;
              break;
            }
          }
          if (seeded) continue;
          // A tile may be skipped for a query only once BOTH of its heaps
          // are full and the tile's best possible score strictly misses
          // the binding threshold (the filtered worst is <= the raw worst,
          // so it is the one to beat). Ties must scan: an equal score can
          // still enter on the entity-id tie-break.
          if (raw[q].full() && (!filter_ || filt[q].full())) {
            double bound =
                std::max({0.0, static_cast<double>(qnorm[q]) - hi[t],
                          static_cast<double>(lo[t]) - qnorm[q]});
            // Conservative slack keeps the skip decision on the safe side
            // of the kernels' float rounding.
            bound = bound * (1.0 - 1e-5) - 1e-6;
            const float worst =
                filter_ ? filt[q].worst_score() : raw[q].worst_score();
            if (-bound < static_cast<double>(worst)) {
              ++tally_->tiles_pruned;
              continue;
            }
          }
          active.push_back(q);
        }
        if (active.empty()) continue;
        for (size_t a = 0; a < active.size(); ++a) {
          std::memcpy(qpack_.data() + a * qlen,
                      qbuf_.data() + static_cast<size_t>(active[a]) * qlen,
                      qlen * sizeof(float));
        }
        SweepBlock(ops, spec.kind, qpack_.data(), qlen, active.size(), v,
                   offset ? coef_perm.data() + base : nullptr,
                   spec.coef_scale, index->rows.data() + base * dim, tile_n,
                   dim, dim, out_.data(), tile_n);
        ScanTile(
            spec, active, out_.data(), tile_n, tile_n, base,
            [&idx](size_t pos) {
              return static_cast<EntityId>(idx.perm[pos]);
            },
            raw, filt);
      }
    }
  }

  const LinkPredictor& predictor_;
  const TopKOptions& options_;
  std::span<const TopKQuery> queries_;
  const TripleStore* filter_;
  NormIndexCache* cache_;
  std::vector<TopKResult>* results_;
  Tally* tally_;

  // Per-group state.
  const size_t* order_ = nullptr;
  size_t count_ = 0;
  bool tails_ = true;
  RelationId relation_ = 0;
  std::vector<float> coef_;
  std::vector<float> v_;
  std::vector<float> qbuf_;
  std::vector<float> qpack_;
  std::vector<float> out_;
  std::vector<Candidate> cands_;
  std::vector<uint64_t> keys_;
  std::vector<uint8_t> found_;
};

}  // namespace

TopKEngine::TopKEngine(const LinkPredictor& predictor,
                       const TopKOptions& options)
    : predictor_(predictor), options_(options) {
  KGC_CHECK_GT(options_.k, 0);
  KGC_CHECK_GT(options_.query_block, 0);
  KGC_CHECK_GT(options_.tile_rows, 0);
}

std::vector<TopKResult> TopKEngine::Run(std::span<const TopKQuery> queries,
                                        const TripleStore* filter) const {
  obs::TraceSpan span("topk.run");
  std::vector<TopKResult> results(queries.size());
  if (queries.empty()) return results;

  // Same-(direction, relation) queries share one sweep description, one
  // set of blocked kernel calls and one norm index, so adjacency is the
  // whole game. The sort is stable and groups are sharded whole, which
  // keeps results and counters bit-identical across thread counts.
  std::vector<size_t> order(queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (queries[a].tails != queries[b].tails) {
      return queries[a].tails && !queries[b].tails;
    }
    return queries[a].relation < queries[b].relation;
  });
  std::vector<std::pair<size_t, size_t>> groups;
  for (size_t begin = 0; begin < order.size();) {
    size_t end = begin + 1;
    while (end < order.size() &&
           queries[order[end]].tails == queries[order[begin]].tails &&
           queries[order[end]].relation == queries[order[begin]].relation) {
      ++end;
    }
    groups.emplace_back(begin, end);
    begin = end;
  }

  const int planned = PlannedShards(groups.size(), options_.threads);
  std::vector<Tally> tallies(static_cast<size_t>(std::max(planned, 1)));
  NormIndexCache cache;
  ParallelFor(groups.size(), options_.threads,
              [&](size_t gbegin, size_t gend, int shard) {
                GroupRunner runner(predictor_, options_, queries, filter,
                                   &cache, &results,
                                   &tallies[static_cast<size_t>(shard)]);
                for (size_t g = gbegin; g < gend; ++g) {
                  runner.ProcessGroup(order.data() + groups[g].first,
                                      groups[g].second - groups[g].first);
                }
              });

  Tally total;
  for (const Tally& t : tallies) {
    total.tiles_pruned += t.tiles_pruned;
    total.entities_scored += t.entities_scored;
    total.heap_pushes += t.heap_pushes;
    total.queries_batched += t.queries_batched;
  }
  static obs::Counter& tiles_pruned =
      obs::Registry::Get().GetCounter(obs::kTopKTilesPruned);
  static obs::Counter& entities_scored =
      obs::Registry::Get().GetCounter(obs::kTopKEntitiesScored);
  static obs::Counter& heap_pushes =
      obs::Registry::Get().GetCounter(obs::kTopKHeapPushes);
  static obs::Counter& queries_batched =
      obs::Registry::Get().GetCounter(obs::kTopKQueriesBatched);
  tiles_pruned.Add(total.tiles_pruned);
  entities_scored.Add(total.entities_scored);
  heap_pushes.Add(total.heap_pushes);
  queries_batched.Add(total.queries_batched);
  return results;
}

TopKResult TopKEngine::OracleTopK(const LinkPredictor& predictor,
                                  const TopKQuery& query, int k,
                                  const TripleStore* filter) {
  KGC_CHECK_GT(k, 0);
  return FullSweepTopK(predictor, query, k, filter, nullptr);
}

}  // namespace kgc
