#include "eval/relation_prediction.h"

#include <cstdint>
#include <vector>

namespace kgc {

RelationPredictionMetrics EvaluateRelationPrediction(const KgeModel& model,
                                                     const Dataset& dataset) {
  RelationPredictionMetrics metrics;
  const TripleStore& all = dataset.all_store();
  const int32_t num_relations = dataset.num_relations();
  if (dataset.test().empty() || num_relations == 0) return metrics;

  std::vector<double> scores(static_cast<size_t>(num_relations));
  std::vector<uint64_t> probe_keys(static_cast<size_t>(num_relations));
  std::vector<uint8_t> known(static_cast<size_t>(num_relations));
  double sum_rank = 0, sum_inv = 0, hits1 = 0;
  double fsum_rank = 0, fsum_inv = 0, fhits1 = 0;
  for (const Triple& t : dataset.test()) {
    for (RelationId r = 0; r < num_relations; ++r) {
      scores[static_cast<size_t>(r)] = model.Score(t.head, r, t.tail);
      probe_keys[static_cast<size_t>(r)] = PackTriple(t.head, r, t.tail);
    }
    // One prefetched batch probe resolves (h, r', t) membership for every
    // candidate relation at once.
    all.ContainsBatch(probe_keys, known.data());
    const double s_true = scores[static_cast<size_t>(t.relation)];
    size_t greater = 0, equal = 0;
    size_t greater_known = 0, equal_known = 0;
    for (RelationId r = 0; r < num_relations; ++r) {
      const double s = scores[static_cast<size_t>(r)];
      if (s > s_true) {
        ++greater;
        if (r != t.relation && known[static_cast<size_t>(r)]) {
          ++greater_known;
        }
      } else if (s == s_true && r != t.relation) {
        ++equal;
        if (known[static_cast<size_t>(r)]) ++equal_known;
      }
    }
    const double raw =
        static_cast<double>(greater) + static_cast<double>(equal) / 2.0 + 1.0;
    const double filtered = static_cast<double>(greater - greater_known) +
                            static_cast<double>(equal - equal_known) / 2.0 +
                            1.0;
    sum_rank += raw;
    sum_inv += 1.0 / raw;
    if (raw <= 1.0) hits1 += 1.0;
    fsum_rank += filtered;
    fsum_inv += 1.0 / filtered;
    if (filtered <= 1.0) fhits1 += 1.0;
  }
  const double n = static_cast<double>(dataset.test().size());
  metrics.num_triples = dataset.test().size();
  metrics.mr = sum_rank / n;
  metrics.mrr = sum_inv / n;
  metrics.hits1 = hits1 / n;
  metrics.fmr = fsum_rank / n;
  metrics.fmrr = fsum_inv / n;
  metrics.fhits1 = fhits1 / n;
  return metrics;
}

}  // namespace kgc
