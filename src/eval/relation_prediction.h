// Relation prediction (paper §3.2; Shi & Weninger 2017): given (h, ?, t),
// rank the relations. A much smaller candidate space than link prediction
// (|R| instead of |E|), evaluated with the same rank-based measures.

#ifndef KGC_EVAL_RELATION_PREDICTION_H_
#define KGC_EVAL_RELATION_PREDICTION_H_

#include "eval/metrics.h"
#include "kg/dataset.h"
#include "models/model.h"

namespace kgc {

struct RelationPredictionMetrics {
  size_t num_triples = 0;
  double mr = 0.0;
  double mrr = 0.0;
  double hits1 = 0.0;
  /// Filtered variants: other relations known to link (h, t) are ignored.
  double fmr = 0.0;
  double fmrr = 0.0;
  double fhits1 = 0.0;
};

/// Ranks the true relation of every test triple among all relations.
RelationPredictionMetrics EvaluateRelationPrediction(const KgeModel& model,
                                                     const Dataset& dataset);

}  // namespace kgc

#endif  // KGC_EVAL_RELATION_PREDICTION_H_
