// Link-prediction ranking protocol (paper §3.2).
//
// For each test triple (h, r, t) the head is replaced by every entity and
// the candidates are ordered by model score; rank_h is the position of the
// true head (tie-averaged). Same for the tail. Filtered ranks ignore
// corrupted candidates that are themselves known facts (by default: any
// triple in train/valid/test; Table-3 experiments pass the synthetic world
// graph instead to emulate scoring against the full Freebase snapshot).

#ifndef KGC_EVAL_RANKER_H_
#define KGC_EVAL_RANKER_H_

#include <vector>

#include "eval/metrics.h"
#include "kg/dataset.h"
#include "kg/link_predictor.h"

namespace kgc {

struct RankerOptions {
  /// Store used to filter known facts; if null, dataset.all_store() is used.
  const TripleStore* filter = nullptr;
  /// Worker threads for the ranking sweep (0 = KGC_THREADS / hardware
  /// default; see util/parallel.h). Results are bit-identical for any value.
  int threads = 0;
};

/// Ranks every triple of `test` under `predictor`. Results align with the
/// order of `test`. Triples are internally processed grouped by relation so
/// models with per-relation caches (TransR) amortize their projections; the
/// relation-grouped order is statically sharded across threads, each with
/// its own score scratch, writing disjoint result slots (deterministic for
/// any thread count).
std::vector<TripleRanks> RankTriples(const LinkPredictor& predictor,
                                     const Dataset& dataset,
                                     const TripleList& test,
                                     const RankerOptions& options = {});

/// Convenience: ranks the dataset's test split and pools the metrics.
LinkPredictionMetrics EvaluatePredictor(const LinkPredictor& predictor,
                                        const Dataset& dataset,
                                        const RankerOptions& options = {});

}  // namespace kgc

#endif  // KGC_EVAL_RANKER_H_
