// Link-prediction ranking protocol (paper §3.2).
//
// For each test triple (h, r, t) the head is replaced by every entity and
// the candidates are ordered by model score; rank_h is the position of the
// true head (tie-averaged). Same for the tail. Filtered ranks ignore
// corrupted candidates that are themselves known facts (by default: any
// triple in train/valid/test; Table-3 experiments pass the synthetic world
// graph instead to emulate scoring against the full Freebase snapshot).

#ifndef KGC_EVAL_RANKER_H_
#define KGC_EVAL_RANKER_H_

#include <vector>

#include "eval/metrics.h"
#include "eval/topk.h"
#include "kg/dataset.h"
#include "kg/link_predictor.h"

namespace kgc {

struct RankerOptions {
  /// Store used to filter known facts; if null, dataset.all_store() is used.
  const TripleStore* filter = nullptr;
  /// Worker threads for the ranking sweep (0 = KGC_THREADS / hardware
  /// default; see util/parallel.h). Results are bit-identical for any value.
  int threads = 0;
  /// Score each unique (head, relation) / (relation, tail) query once and
  /// reuse the score buffer for every test triple that shares it. Ranks are
  /// bit-identical with dedup on or off — the reused buffer is the same one
  /// a fresh sweep would produce — so this only trades memory locality for
  /// skipped sweeps on duplicate-heavy test sets.
  bool dedup_queries = true;
  /// Resolve the filtered rank by batch-probing the filter store's flat
  /// membership set for the candidates that outscore (or tie) the true
  /// entity, instead of marking the known-correct list in an
  /// entities-sized scratch array. At million-entity scale this keeps the
  /// sweep out of a second multi-megabyte array and overlaps the probe
  /// cache misses via software prefetch. Ranks are bit-identical on or off:
  /// the probe path only runs when the candidate list is duplicate-free
  /// (duplicate known facts must count multiply, which only marking does)
  /// and small enough; otherwise the triple falls back to marking.
  bool probe_filter = true;
  /// Top-K fast-path routing (eval/topk.h). When topk.enabled is set,
  /// EvaluatePredictor resolves Hits@1 / Hits@10 (raw and filtered) through
  /// the blocked, heap-selected, norm-pruned retrieval engine instead of
  /// the full ranking sweep; MR/MRR keep the full sweep, which they need
  /// anyway. Caveat: the fast path ranks by (score desc, entity asc) while
  /// the full sweep tie-averages, so Hits can differ on exact score ties —
  /// rare for trained float embeddings, and the default (disabled) keeps
  /// the classic path bit for bit.
  TopKOptions topk;
};

/// Ranks every triple of `test` under `predictor`. Results align with the
/// order of `test`. The sweep runs in two passes (tail candidates, then head
/// candidates), each sorted by (relation, anchor entity) so that triples
/// sharing a query are adjacent and per-relation model caches (TransR)
/// amortize their projections. Work is statically sharded across threads at
/// query-group granularity — a group is never split — so ranks *and* all
/// telemetry counters (score_evals, query_cache_hits/misses) are
/// bit-identical for any thread count and for dedup on vs off.
std::vector<TripleRanks> RankTriples(const LinkPredictor& predictor,
                                     const Dataset& dataset,
                                     const TripleList& test,
                                     const RankerOptions& options = {});

/// Convenience: ranks the dataset's test split and pools the metrics.
LinkPredictionMetrics EvaluatePredictor(const LinkPredictor& predictor,
                                        const Dataset& dataset,
                                        const RankerOptions& options = {});

}  // namespace kgc

#endif  // KGC_EVAL_RANKER_H_
