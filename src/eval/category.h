// Per-relation-category breakdowns (paper §5.3(5)(6): Tables 9, 10, 12 and
// Figures 7, 8).
//
// Relations are classified 1-to-1 / 1-to-n / n-to-1 / n-to-m from training
// statistics; metrics are then reported per category, separately for head
// ("left") and tail ("right") prediction.

#ifndef KGC_EVAL_CATEGORY_H_
#define KGC_EVAL_CATEGORY_H_

#include <array>
#include <span>
#include <vector>

#include "eval/metrics.h"
#include "kg/relation_stats.h"

namespace kgc {

/// FHits@10 of head (left) and tail (right) prediction per category.
struct CategoryHeadTailHits {
  /// Indexed by static_cast<size_t>(RelationCategory).
  std::array<double, 4> left_fhits10 = {};
  std::array<double, 4> right_fhits10 = {};
  std::array<size_t, 4> num_triples = {};
  std::array<size_t, 4> num_relations = {};
};

/// Assigns each relation its category from `train` statistics.
std::vector<RelationCategory> CategorizeRelations(const TripleStore& train);

/// Computes Table-9-style left/right FHits@10 per category.
CategoryHeadTailHits ComputeCategoryHeadTailHits(
    std::span<const TripleRanks> ranks,
    const std::vector<RelationCategory>& categories);

/// FMRR per category (pooled over both sides), used by the Figure 7/8
/// break-downs.
std::array<LinkPredictionMetrics, 4> ComputeCategoryMetrics(
    std::span<const TripleRanks> ranks,
    const std::vector<RelationCategory>& categories);

}  // namespace kgc

#endif  // KGC_EVAL_CATEGORY_H_
