#include "eval/ranker.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace kgc {
namespace {

// Computes tie-averaged raw and filtered rank of `true_entity` in a single
// pass over the score array: the known-correct candidates are marked in
// `known_mark` (a num_entities-sized scratch counter array, all zero on
// entry) before the sweep, counted alongside the raw tallies during it, and
// unmarked afterwards so the scratch is clean for the next triple without a
// full O(num_entities) clear. Marks are occurrence counts, not booleans, so
// a candidate listed twice contributes twice — exactly as iterating the
// candidate list would.
void ComputeRank(std::span<const float> scores, EntityId true_entity,
                 std::span<const EntityId> known_correct,
                 std::vector<uint32_t>& known_mark, double* raw,
                 double* filtered) {
  const float s_true = scores[static_cast<size_t>(true_entity)];
  for (EntityId e : known_correct) {
    if (e != true_entity) ++known_mark[static_cast<size_t>(e)];
  }
  size_t greater = 0;
  size_t equal = 0;
  size_t greater_known = 0;
  size_t equal_known = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    const float s = scores[e];
    if (s > s_true) {
      ++greater;
      greater_known += known_mark[e];
    } else if (s == s_true) {
      ++equal;
      equal_known += known_mark[e];
    }
  }
  for (EntityId e : known_correct) {
    known_mark[static_cast<size_t>(e)] = 0;
  }
  KGC_DCHECK(equal >= 1);  // the true entity itself
  equal -= 1;

  *raw = static_cast<double>(greater) + static_cast<double>(equal) / 2.0 + 1.0;
  *filtered = static_cast<double>(greater - greater_known) +
              static_cast<double>(equal - equal_known) / 2.0 + 1.0;
}

// Per-shard scratch of the probe-based rank path.
struct ProbeScratch {
  std::vector<EntityId> candidates;
  std::vector<uint64_t> keys;
  std::vector<uint8_t> found;
};

// Whether an ascending-sorted adjacency span lists any entity twice (the
// store keeps duplicate facts; the marking path counts them multiply, so
// the probe path — which cannot — must stand down for such groups).
bool HasAdjacentDuplicates(std::span<const EntityId> sorted) {
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) return true;
  }
  return false;
}

// Probe-path rank: collect every candidate entity scoring >= s_true during
// the raw sweep, then resolve which of them are known facts with one
// prefetched batch probe against the filter store's flat membership set.
// Returns false (leaving outputs untouched) if the candidate list exceeds
// `candidate_cap` — degenerate all-tied score vectors would otherwise probe
// nearly every entity, where the marking sweep is cheaper. The bail
// decision depends only on the scores, never on the shard plan, so ranks
// and probe counters stay bit-identical for any thread count.
bool ComputeRankByProbe(std::span<const float> scores, EntityId true_entity,
                        const TripleStore& filter, const Triple& triple,
                        bool tails, size_t candidate_cap,
                        ProbeScratch& scratch, double* raw,
                        double* filtered) {
  const float s_true = scores[static_cast<size_t>(true_entity)];
  scratch.candidates.clear();
  size_t greater = 0;
  size_t equal = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    const float s = scores[e];
    if (s > s_true) {
      ++greater;
    } else if (s == s_true) {
      ++equal;
      if (static_cast<EntityId>(e) == true_entity) continue;
    } else {
      continue;
    }
    if (scratch.candidates.size() >= candidate_cap) return false;
    scratch.candidates.push_back(static_cast<EntityId>(e));
  }
  KGC_DCHECK(equal >= 1);  // the true entity itself
  equal -= 1;

  scratch.keys.clear();
  for (EntityId e : scratch.candidates) {
    scratch.keys.push_back(tails ? PackTriple(triple.head, triple.relation, e)
                                 : PackTriple(e, triple.relation,
                                              triple.tail));
  }
  scratch.found.resize(scratch.keys.size());
  filter.ContainsBatch(scratch.keys, scratch.found.data());

  size_t greater_known = 0;
  size_t equal_known = 0;
  for (size_t i = 0; i < scratch.candidates.size(); ++i) {
    if (!scratch.found[i]) continue;
    const float s = scores[static_cast<size_t>(scratch.candidates[i])];
    if (s > s_true) {
      ++greater_known;
    } else {
      ++equal_known;
    }
  }

  *raw = static_cast<double>(greater) + static_cast<double>(equal) / 2.0 + 1.0;
  *filtered = static_cast<double>(greater - greater_known) +
              static_cast<double>(equal - equal_known) / 2.0 + 1.0;
  return true;
}

// Resolves Hits@1 / Hits@10 through the top-K engine. With the engine run
// at k' >= m, "fewer than m list entries beat the true entity" is exactly
// "rank_(score desc, id asc) <= m": any off-list entity is beaten by every
// one of the k' list entries, so if it beat the true entity all k' >= m
// list entries would too, contradicting the count.
void ApplyTopKHits(const LinkPredictor& predictor, const Dataset& dataset,
                   const TripleList& test, const RankerOptions& options,
                   LinkPredictionMetrics* metrics) {
  if (test.empty()) return;
  const TripleStore& filter =
      options.filter != nullptr ? *options.filter : dataset.all_store();
  TopKOptions topk = options.topk;
  topk.k = std::max(topk.k, 10);  // hits@10 needs at least ten entries
  if (topk.threads == 0) topk.threads = options.threads;
  std::vector<TopKQuery> queries;
  queries.reserve(test.size() * 2);
  for (const Triple& t : test) {
    queries.push_back({/*tails=*/true, t.relation, t.head, {t.tail}});
    queries.push_back({/*tails=*/false, t.relation, t.tail, {t.head}});
  }
  const TopKEngine engine(predictor, topk);
  const std::vector<TopKResult> results = engine.Run(queries, &filter);

  const auto hit = [](const std::vector<TopKEntry>& list, float true_score,
                      EntityId true_entity, int m) {
    int better = 0;
    for (const TopKEntry& entry : list) {
      if (entry.entity == true_entity) continue;  // not its own competitor
      if (entry.score > true_score ||
          (entry.score == true_score && entry.entity < true_entity)) {
        ++better;
      }
    }
    return better < m;
  };
  double hits1 = 0, hits10 = 0, fhits1 = 0, fhits10 = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const float true_score = results[i].watch_scores[0];
    const EntityId true_entity = queries[i].watch[0];
    hits1 += hit(results[i].raw, true_score, true_entity, 1);
    hits10 += hit(results[i].raw, true_score, true_entity, 10);
    fhits1 += hit(results[i].filtered, true_score, true_entity, 1);
    fhits10 += hit(results[i].filtered, true_score, true_entity, 10);
  }
  const double n = static_cast<double>(queries.size());
  metrics->hits1 = hits1 / n;
  metrics->hits10 = hits10 / n;
  metrics->fhits1 = fhits1 / n;
  metrics->fhits10 = fhits10 / n;
}

}  // namespace

std::vector<TripleRanks> RankTriples(const LinkPredictor& predictor,
                                     const Dataset& dataset,
                                     const TripleList& test,
                                     const RankerOptions& options) {
  const TripleStore& filter =
      options.filter != nullptr ? *options.filter : dataset.all_store();
  const size_t num_entities = static_cast<size_t>(predictor.num_entities());
  KGC_CHECK_EQ(predictor.num_entities(), dataset.num_entities());

  DeadlinePhase deadline_phase("rank");
  obs::TraceSpan sweep_span("rank_triples");
  sweep_span.AddArgInt("triples", static_cast<long long>(test.size()));
  sweep_span.AddArgStr("predictor", predictor.name());
  // Telemetry handles resolved once; per-shard updates are a handful of
  // relaxed atomic adds, so the scoring loop itself stays untouched.
  static obs::Counter& sweeps =
      obs::Registry::Get().GetCounter(obs::kRankerSweeps);
  static obs::Counter& triples_ranked =
      obs::Registry::Get().GetCounter(obs::kRankerTriplesRanked);
  static obs::Counter& score_evals =
      obs::Registry::Get().GetCounter(obs::kRankerScoreEvals);
  static obs::Counter& query_hits =
      obs::Registry::Get().GetCounter(obs::kRankerQueryCacheHits);
  static obs::Counter& query_misses =
      obs::Registry::Get().GetCounter(obs::kRankerQueryCacheMisses);
  static obs::HdrHistogram& shard_seconds =
      obs::Registry::Get().GetDurationHistogram(obs::kRankerShardSeconds);
  sweeps.Increment();

  std::vector<TripleRanks> results(test.size());

  // One pass per candidate direction. Each pass sorts the test triples by
  // (relation, anchor) — the anchor is the entity kept fixed by the query —
  // so every triple sharing a ScoreTails/ScoreHeads query lands in one
  // contiguous group, and relation runs stay contiguous for per-relation
  // model caches (TransR). Sharding happens at *group* granularity: a group
  // is never split across shards, so the hit/miss/eval tallies are a pure
  // function of the test list, bit-identical for any thread count.
  const auto run_pass = [&](bool tails) {
    std::vector<size_t> order(test.size());
    std::iota(order.begin(), order.end(), size_t{0});
    const auto anchor = [&](size_t idx) {
      return tails ? test[idx].head : test[idx].tail;
    };
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (test[a].relation != test[b].relation) {
        return test[a].relation < test[b].relation;
      }
      return anchor(a) < anchor(b);
    });

    // group g spans order[group_start[g], group_start[g + 1]).
    std::vector<size_t> group_start;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i == 0 || test[order[i]].relation != test[order[i - 1]].relation ||
          anchor(order[i]) != anchor(order[i - 1])) {
        group_start.push_back(i);
      }
    }
    group_start.push_back(order.size());
    const size_t num_groups = group_start.empty() ? 0 : group_start.size() - 1;

    // Degenerate score vectors (huge ties) would turn the probe path into a
    // probe of almost every entity; past this many candidates the marking
    // sweep is the cheaper resolution. Depends only on the entity count, so
    // the probe/mark decision is shard-plan independent.
    const size_t candidate_cap = std::max<size_t>(1024, num_entities / 16);

    ParallelFor(num_groups, options.threads,
                [&](size_t gbegin, size_t gend, int /*shard*/) {
      Stopwatch shard_watch;
      std::vector<float> scores(num_entities);
      std::vector<uint32_t> known_mark(num_entities, 0);
      ProbeScratch probe_scratch;
      size_t evals = 0;
      size_t hits = 0;
      size_t misses = 0;
      size_t ranked = 0;
      for (size_t g = gbegin; g < gend; ++g) {
        const size_t first = group_start[g];
        const size_t last = group_start[g + 1];
        // The known-correct adjacency is constant across the group (it is
        // keyed by the group's (relation, anchor)), as is whether the probe
        // path may serve it: duplicate known facts must count multiply
        // toward the filtered rank, which only the marking sweep does.
        const Triple& lead = test[order[first]];
        const std::span<const EntityId> known =
            tails ? filter.Tails(lead.head, lead.relation)
                  : filter.Heads(lead.relation, lead.tail);
        const bool probe_eligible =
            options.probe_filter && !HasAdjacentDuplicates(known);
        for (size_t i = first; i < last; ++i) {
          const size_t idx = order[i];
          const Triple& triple = test[idx];
          // The first triple of a group fills the score buffer; later ones
          // reuse it (a cache hit) unless dedup is off, in which case every
          // triple re-sweeps — producing the same bits either way.
          if (!options.dedup_queries || i == first) {
            if (tails) {
              predictor.ScoreTails(triple.head, triple.relation, scores);
            } else {
              predictor.ScoreHeads(triple.relation, triple.tail, scores);
            }
            evals += num_entities;
            ++misses;
          } else {
            ++hits;
          }
          TripleRanks& out = results[idx];
          const EntityId true_entity = tails ? triple.tail : triple.head;
          double* raw = tails ? &out.tail_raw : &out.head_raw;
          double* filtered = tails ? &out.tail_filtered : &out.head_filtered;
          if (tails) out.triple = triple;
          if (!probe_eligible ||
              !ComputeRankByProbe(scores, true_entity, filter, triple, tails,
                                  candidate_cap, probe_scratch, raw,
                                  filtered)) {
            ComputeRank(scores, true_entity, known, known_mark, raw,
                        filtered);
          }
          ++ranked;
        }
      }
      if (tails) triples_ranked.Add(ranked);
      score_evals.Add(evals);
      query_hits.Add(hits);
      query_misses.Add(misses);
      shard_seconds.Observe(shard_watch.ElapsedSeconds());
    });
  };
  // Each pass is a deadline boundary: an over-budget sweep exits between
  // the joined parallel passes, never inside one. Ranks are recomputed
  // from the cached model on retry, so there is nothing to checkpoint.
  run_pass(/*tails=*/true);
  PhaseBoundary("rank_pass");
  run_pass(/*tails=*/false);
  PhaseBoundary("rank_done");
  return results;
}

LinkPredictionMetrics EvaluatePredictor(const LinkPredictor& predictor,
                                        const Dataset& dataset,
                                        const RankerOptions& options) {
  const std::vector<TripleRanks> ranks =
      RankTriples(predictor, dataset, dataset.test(), options);
  LinkPredictionMetrics metrics = ComputeMetrics(ranks);
  if (options.topk.enabled) {
    ApplyTopKHits(predictor, dataset, dataset.test(), options, &metrics);
  }
  return metrics;
}

}  // namespace kgc
