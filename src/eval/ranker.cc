#include "eval/ranker.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace kgc {
namespace {

// Computes tie-averaged raw and filtered rank of `true_entity` given the
// score array and the set of known-correct candidates to filter.
void ComputeRank(std::span<const float> scores, EntityId true_entity,
                 const std::vector<EntityId>& known_correct, double* raw,
                 double* filtered) {
  const float s_true = scores[static_cast<size_t>(true_entity)];
  size_t greater = 0;
  size_t equal = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    if (scores[e] > s_true) {
      ++greater;
    } else if (scores[e] == s_true) {
      ++equal;
    }
  }
  KGC_DCHECK(equal >= 1);  // the true entity itself
  equal -= 1;

  size_t greater_known = 0;
  size_t equal_known = 0;
  for (EntityId e : known_correct) {
    if (e == true_entity) continue;
    const float s = scores[static_cast<size_t>(e)];
    if (s > s_true) {
      ++greater_known;
    } else if (s == s_true) {
      ++equal_known;
    }
  }
  *raw = static_cast<double>(greater) + static_cast<double>(equal) / 2.0 + 1.0;
  *filtered = static_cast<double>(greater - greater_known) +
              static_cast<double>(equal - equal_known) / 2.0 + 1.0;
}

}  // namespace

std::vector<TripleRanks> RankTriples(const LinkPredictor& predictor,
                                     const Dataset& dataset,
                                     const TripleList& test,
                                     const RankerOptions& options) {
  const TripleStore& filter =
      options.filter != nullptr ? *options.filter : dataset.all_store();
  const size_t num_entities = static_cast<size_t>(predictor.num_entities());
  KGC_CHECK_EQ(predictor.num_entities(), dataset.num_entities());

  // Group by relation for per-relation model caches.
  std::vector<size_t> order(test.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return test[a].relation < test[b].relation;
  });

  std::vector<TripleRanks> results(test.size());
  std::vector<float> scores(num_entities);
  for (size_t idx : order) {
    const Triple& triple = test[idx];
    TripleRanks ranks;
    ranks.triple = triple;

    predictor.ScoreTails(triple.head, triple.relation, scores);
    ComputeRank(scores, triple.tail,
                filter.Tails(triple.head, triple.relation), &ranks.tail_raw,
                &ranks.tail_filtered);

    predictor.ScoreHeads(triple.relation, triple.tail, scores);
    ComputeRank(scores, triple.head,
                filter.Heads(triple.relation, triple.tail), &ranks.head_raw,
                &ranks.head_filtered);

    results[idx] = ranks;
  }
  return results;
}

LinkPredictionMetrics EvaluatePredictor(const LinkPredictor& predictor,
                                        const Dataset& dataset,
                                        const RankerOptions& options) {
  const std::vector<TripleRanks> ranks =
      RankTriples(predictor, dataset, dataset.test(), options);
  return ComputeMetrics(ranks);
}

}  // namespace kgc
