#include "eval/ranker.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace kgc {
namespace {

// Computes tie-averaged raw and filtered rank of `true_entity` in a single
// pass over the score array: the known-correct candidates are marked in
// `known_mark` (a num_entities-sized scratch counter array, all zero on
// entry) before the sweep, counted alongside the raw tallies during it, and
// unmarked afterwards so the scratch is clean for the next triple without a
// full O(num_entities) clear. Marks are occurrence counts, not booleans, so
// a candidate listed twice contributes twice — exactly as iterating the
// candidate list would.
void ComputeRank(std::span<const float> scores, EntityId true_entity,
                 const std::vector<EntityId>& known_correct,
                 std::vector<uint32_t>& known_mark, double* raw,
                 double* filtered) {
  const float s_true = scores[static_cast<size_t>(true_entity)];
  for (EntityId e : known_correct) {
    if (e != true_entity) ++known_mark[static_cast<size_t>(e)];
  }
  size_t greater = 0;
  size_t equal = 0;
  size_t greater_known = 0;
  size_t equal_known = 0;
  for (size_t e = 0; e < scores.size(); ++e) {
    const float s = scores[e];
    if (s > s_true) {
      ++greater;
      greater_known += known_mark[e];
    } else if (s == s_true) {
      ++equal;
      equal_known += known_mark[e];
    }
  }
  for (EntityId e : known_correct) {
    known_mark[static_cast<size_t>(e)] = 0;
  }
  KGC_DCHECK(equal >= 1);  // the true entity itself
  equal -= 1;

  *raw = static_cast<double>(greater) + static_cast<double>(equal) / 2.0 + 1.0;
  *filtered = static_cast<double>(greater - greater_known) +
              static_cast<double>(equal - equal_known) / 2.0 + 1.0;
}

}  // namespace

std::vector<TripleRanks> RankTriples(const LinkPredictor& predictor,
                                     const Dataset& dataset,
                                     const TripleList& test,
                                     const RankerOptions& options) {
  const TripleStore& filter =
      options.filter != nullptr ? *options.filter : dataset.all_store();
  const size_t num_entities = static_cast<size_t>(predictor.num_entities());
  KGC_CHECK_EQ(predictor.num_entities(), dataset.num_entities());

  obs::TraceSpan sweep_span("rank_triples");
  sweep_span.AddArgInt("triples", static_cast<long long>(test.size()));
  sweep_span.AddArgStr("predictor", predictor.name());
  // Telemetry handles resolved once; per-shard updates are a handful of
  // relaxed atomic adds, so the scoring loop itself stays untouched.
  static obs::Counter& sweeps =
      obs::Registry::Get().GetCounter(obs::kRankerSweeps);
  static obs::Counter& triples_ranked =
      obs::Registry::Get().GetCounter(obs::kRankerTriplesRanked);
  static obs::Counter& score_evals =
      obs::Registry::Get().GetCounter(obs::kRankerScoreEvals);
  static obs::Histogram& shard_seconds =
      obs::Registry::Get().GetHistogram(obs::kRankerShardSeconds);
  sweeps.Increment();

  // Group by relation for per-relation model caches.
  std::vector<size_t> order(test.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return test[a].relation < test[b].relation;
  });

  // Each shard ranks a contiguous run of the relation-grouped order with its
  // own score/mark scratch and writes into the disjoint `results` slots its
  // triples own, so the output is bit-identical for any thread count.
  // Contiguous runs also keep per-relation model caches (TransR) effective:
  // a relation's triples split across at most two shards.
  std::vector<TripleRanks> results(test.size());
  ParallelFor(order.size(), options.threads,
              [&](size_t begin, size_t end, int /*shard*/) {
    Stopwatch shard_watch;
    std::vector<float> scores(num_entities);
    std::vector<uint32_t> known_mark(num_entities, 0);
    for (size_t i = begin; i < end; ++i) {
      const size_t idx = order[i];
      const Triple& triple = test[idx];
      TripleRanks ranks;
      ranks.triple = triple;

      predictor.ScoreTails(triple.head, triple.relation, scores);
      ComputeRank(scores, triple.tail,
                  filter.Tails(triple.head, triple.relation), known_mark,
                  &ranks.tail_raw, &ranks.tail_filtered);

      predictor.ScoreHeads(triple.relation, triple.tail, scores);
      ComputeRank(scores, triple.head,
                  filter.Heads(triple.relation, triple.tail), known_mark,
                  &ranks.head_raw, &ranks.head_filtered);

      results[idx] = ranks;
    }
    // Per-triple work is thread-count independent, so these totals are
    // bit-identical for every KGC_THREADS (the per-shard split commutes).
    triples_ranked.Add(end - begin);
    score_evals.Add(2 * num_entities * (end - begin));
    shard_seconds.Observe(shard_watch.ElapsedSeconds());
  });
  return results;
}

LinkPredictionMetrics EvaluatePredictor(const LinkPredictor& predictor,
                                        const Dataset& dataset,
                                        const RankerOptions& options) {
  const std::vector<TripleRanks> ranks =
      RankTriples(predictor, dataset, dataset.test(), options);
  return ComputeMetrics(ranks);
}

}  // namespace kgc
