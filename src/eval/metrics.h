// Link-prediction accuracy measures (paper §3.2).
//
// For each test triple the ranker produces four ranks: head/tail side, each
// raw and filtered. The aggregate measures follow the original definitions:
//   MR    = mean rank                      (lower is better)
//   MRR   = mean reciprocal rank           (higher is better)
//   Hits@k = fraction of ranks <= k        (higher is better)
// and the F-prefixed (filtered) variants use ranks computed after removing
// corrupted triples that are known facts.

#ifndef KGC_EVAL_METRICS_H_
#define KGC_EVAL_METRICS_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "kg/triple.h"

namespace kgc {

/// Ranks of one test triple. Ranks are 1-based and tie-averaged: with g
/// strictly-better and e equally-scored other candidates, rank = g + e/2 + 1.
struct TripleRanks {
  Triple triple;
  double head_raw = 0;
  double head_filtered = 0;
  double tail_raw = 0;
  double tail_filtered = 0;
};

/// Aggregated measures over a set of test triples (head and tail predictions
/// pooled, as in the paper: each triple contributes two ranks).
struct LinkPredictionMetrics {
  size_t num_triples = 0;
  double mr = 0.0;
  double mrr = 0.0;
  double hits1 = 0.0;
  double hits10 = 0.0;
  double fmr = 0.0;
  double fmrr = 0.0;
  double fhits1 = 0.0;
  double fhits10 = 0.0;
};

/// Incremental metric computation.
class MetricsAccumulator {
 public:
  /// Adds one ranked prediction (one side of one triple).
  void Add(double raw_rank, double filtered_rank);

  /// Adds both sides of a triple's ranks.
  void Add(const TripleRanks& ranks);

  LinkPredictionMetrics Finalize() const;

  size_t num_predictions() const { return count_; }

 private:
  size_t count_ = 0;
  size_t triples_ = 0;
  double sum_rank_ = 0, sum_inv_rank_ = 0, hits1_ = 0, hits10_ = 0;
  double fsum_rank_ = 0, fsum_inv_rank_ = 0, fhits1_ = 0, fhits10_ = 0;
};

/// Pools all ranks into one metrics struct.
LinkPredictionMetrics ComputeMetrics(std::span<const TripleRanks> ranks);

/// Metrics grouped by the test triple's relation.
std::unordered_map<RelationId, LinkPredictionMetrics> ComputeMetricsByRelation(
    std::span<const TripleRanks> ranks);

/// Metrics over the subset of triples passing `keep` (indexed into `ranks`).
LinkPredictionMetrics ComputeMetricsWhere(
    std::span<const TripleRanks> ranks,
    const std::vector<bool>& keep);

}  // namespace kgc

#endif  // KGC_EVAL_METRICS_H_
