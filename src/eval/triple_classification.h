// Triple classification (paper §3.2; Socher et al. 2013, Wang et al. 2014).
//
// The binary variant of knowledge-graph completion: decide whether a triple
// is true. Protocol: corrupt each validation triple once to obtain balanced
// positives/negatives, fit one score threshold per relation on validation
// accuracy, then classify the equally-corrupted test set.

#ifndef KGC_EVAL_TRIPLE_CLASSIFICATION_H_
#define KGC_EVAL_TRIPLE_CLASSIFICATION_H_

#include <span>
#include <vector>

#include "kg/dataset.h"
#include "models/model.h"

namespace kgc {

struct TripleClassificationOptions {
  uint64_t seed = 99;
  /// Corrupt heads and tails with equal probability (true) or tails only.
  bool corrupt_both_sides = true;
};

/// Per-relation decision thresholds fitted on the validation split.
/// Relations with too few validation examples (or ids outside the fitted
/// range — online queries can name arbitrary ids) fall back to the global
/// threshold.
struct ClassificationThresholds {
  std::vector<double> per_relation;
  double global = 0.0;

  double ThresholdFor(RelationId relation) const {
    if (relation < 0 ||
        static_cast<size_t>(relation) >= per_relation.size()) {
      return global;
    }
    return per_relation[static_cast<size_t>(relation)];
  }
};

/// One classified triple: the model score, the threshold applied, and the
/// resulting label (score >= threshold => true).
struct ClassifiedTriple {
  double score = 0.0;
  double threshold = 0.0;
  bool label = false;
};

/// Fits thresholds on `dataset`'s validation split (the first half of the
/// EvaluateTripleClassification protocol). Deterministic in options.seed.
ClassificationThresholds FitClassificationThresholds(
    const KgeModel& model, const Dataset& dataset,
    const TripleClassificationOptions& options = {});

/// Batched online entry point: scores and labels every triple against
/// pre-fitted thresholds. No RNG, no corruption — this is the serving path
/// (kgc_serve), bit-deterministic given (model, thresholds).
std::vector<ClassifiedTriple> ClassifyTriples(
    const KgeModel& model, const ClassificationThresholds& thresholds,
    std::span<const Triple> triples);

struct TripleClassificationResult {
  /// Overall test accuracy in [0, 1].
  double accuracy = 0.0;
  /// Accuracy on positive / negative halves separately.
  double true_positive_rate = 0.0;
  double true_negative_rate = 0.0;
  size_t num_test_pairs = 0;
  /// Chosen threshold per relation (score >= threshold => predicted true).
  std::vector<double> thresholds;
};

/// Runs the full protocol with `model` on `dataset`. Relations absent from
/// the validation split fall back to the global threshold.
TripleClassificationResult EvaluateTripleClassification(
    const KgeModel& model, const Dataset& dataset,
    const TripleClassificationOptions& options = {});

}  // namespace kgc

#endif  // KGC_EVAL_TRIPLE_CLASSIFICATION_H_
