#include "eval/category.h"

#include <unordered_set>

#include "util/check.h"

namespace kgc {

std::vector<RelationCategory> CategorizeRelations(const TripleStore& train) {
  std::vector<RelationCategory> categories(
      static_cast<size_t>(train.num_relations()), RelationCategory::kOneToOne);
  for (RelationId r = 0; r < train.num_relations(); ++r) {
    categories[static_cast<size_t>(r)] =
        ComputeRelationStats(train, r).category;
  }
  return categories;
}

CategoryHeadTailHits ComputeCategoryHeadTailHits(
    std::span<const TripleRanks> ranks,
    const std::vector<RelationCategory>& categories) {
  CategoryHeadTailHits result;
  std::array<double, 4> left_hits = {};
  std::array<double, 4> right_hits = {};
  std::array<std::unordered_set<RelationId>, 4> relations;
  for (const TripleRanks& r : ranks) {
    KGC_CHECK_LT(static_cast<size_t>(r.triple.relation), categories.size());
    const size_t c = static_cast<size_t>(
        categories[static_cast<size_t>(r.triple.relation)]);
    result.num_triples[c]++;
    relations[c].insert(r.triple.relation);
    if (r.head_filtered <= 10.0) left_hits[c] += 1.0;
    if (r.tail_filtered <= 10.0) right_hits[c] += 1.0;
  }
  for (size_t c = 0; c < 4; ++c) {
    result.num_relations[c] = relations[c].size();
    if (result.num_triples[c] > 0) {
      const double n = static_cast<double>(result.num_triples[c]);
      result.left_fhits10[c] = left_hits[c] / n;
      result.right_fhits10[c] = right_hits[c] / n;
    }
  }
  return result;
}

std::array<LinkPredictionMetrics, 4> ComputeCategoryMetrics(
    std::span<const TripleRanks> ranks,
    const std::vector<RelationCategory>& categories) {
  std::array<MetricsAccumulator, 4> accs;
  for (const TripleRanks& r : ranks) {
    const size_t c = static_cast<size_t>(
        categories[static_cast<size_t>(r.triple.relation)]);
    accs[c].Add(r);
  }
  std::array<LinkPredictionMetrics, 4> result;
  for (size_t c = 0; c < 4; ++c) result[c] = accs[c].Finalize();
  return result;
}

}  // namespace kgc
