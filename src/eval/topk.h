// Top-K retrieval fast path (DESIGN.md "Top-K retrieval").
//
// Answers "which K entities score best for this query" without
// materializing the full score vector the ranking protocol sweeps. Three
// mechanisms stack:
//
//   1. Blocked multi-query sweeps — queries that share a (direction,
//      relation) group are scored in blocks against entity-table tiles
//      through the *_rows_block vecmath kernels, so each embedding row is
//      streamed through cache once per tile instead of once per query.
//   2. Bounded per-query heaps — a K-entry heap ordered by
//      (score desc, entity asc) replaces the full score vector; the
//      entity-id tie-break makes results a pure function of the model, so
//      they are bit-identical across KGC_THREADS and kernel paths.
//   3. Exact norm-bound pruning (distance sweeps only) — per-entity norms,
//      computed once per run and sorted into norm-coherent tiles, give the
//      lower bound dist(q, e) >= | ||q|| - ||e|| | per tile; tiles whose
//      bound cannot beat the heap threshold are skipped entirely. The bound
//      is exact for L2 (reverse triangle inequality), valid for L1 via
//      ||x||_1 >= ||x||_2, and widened per row for the offset kinds
//      (TransH/TransD) by |coef| * ||v||. Dot-product and complex-modulus
//      sweeps are never pruned. A conservative floating-point slack keeps
//      the skip decision on the safe side of kernel rounding.
//
// Every per-(query, row) score is produced by the same fixed-order kernel
// reduction as ScoreTails/ScoreHeads, so the fast path's top-K lists equal
// the truncated full ranking bit for bit; TopKOptions::cross_check asserts
// exactly that against the oracle inside Run. Models without a kernel
// sweep (DescribeSweep == false, e.g. rule predictors) fall back to the
// full Score* sweep with heap selection — correct, just not fast.

#ifndef KGC_EVAL_TOPK_H_
#define KGC_EVAL_TOPK_H_

#include <span>
#include <vector>

#include "kg/link_predictor.h"
#include "kg/triple_store.h"

namespace kgc {

struct TopKOptions {
  /// Entries kept per query (raw and filtered lists each).
  int k = 10;
  /// RankerOptions routing switch: when set, EvaluatePredictor resolves
  /// Hits@K through the fast path (rank/MRR keep the full sweep).
  bool enabled = false;
  /// Norm-bound tile pruning for distance sweeps. Results are bit-identical
  /// on or off; off only costs the skipped work.
  bool prune = true;
  /// Assert fast top-K == oracle truncated ranking (lists, scores, watch
  /// scores) for every query inside Run. Expensive: runs the full sweep.
  bool cross_check = false;
  /// Queries scored per blocked kernel call.
  int query_block = 8;
  /// Entity rows per tile (also the pruning granularity).
  int tile_rows = 256;
  /// Worker threads (0 = KGC_THREADS / hardware default). Results and
  /// kgc.topk.* counters are bit-identical for any value.
  int threads = 0;
};

/// One retrieval query: rank candidate tails of (anchor, relation, ?) when
/// tails is set, else candidate heads of (?, relation, anchor).
struct TopKQuery {
  bool tails = true;
  RelationId relation = 0;
  EntityId anchor = 0;
  /// Entities whose exact scores the caller needs regardless of whether
  /// they reach the top-K (e.g. the true entity of a test triple). Scored
  /// directly, outside the pruned sweep.
  std::vector<EntityId> watch;
};

struct TopKEntry {
  float score = 0.0f;
  EntityId entity = 0;
};

struct TopKResult {
  /// Best-first (score desc, entity asc), at most K entries.
  std::vector<TopKEntry> raw;
  /// Same, excluding entities that complete a known triple in the filter
  /// store. Equals `raw` when Run was given no filter.
  std::vector<TopKEntry> filtered;
  /// Exact scores for TopKQuery::watch, in order.
  std::vector<float> watch_scores;
};

class TopKEngine {
 public:
  TopKEngine(const LinkPredictor& predictor, const TopKOptions& options);

  /// Retrieves top-K for every query. `filter` may be null (filtered lists
  /// then mirror the raw lists). Queries are grouped by (direction,
  /// relation) and groups are sharded whole across threads, so results and
  /// counters never depend on the thread count.
  std::vector<TopKResult> Run(std::span<const TopKQuery> queries,
                              const TripleStore* filter) const;

  /// Full-ranking oracle: ScoreTails/ScoreHeads over every entity, sorted
  /// by (score desc, entity asc), truncated to k. The reference Run must
  /// match bit for bit.
  static TopKResult OracleTopK(const LinkPredictor& predictor,
                               const TopKQuery& query, int k,
                               const TripleStore* filter);

 private:
  const LinkPredictor& predictor_;
  TopKOptions options_;
};

}  // namespace kgc

#endif  // KGC_EVAL_TOPK_H_
