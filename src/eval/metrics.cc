#include "eval/metrics.h"

#include "util/check.h"

namespace kgc {

void MetricsAccumulator::Add(double raw_rank, double filtered_rank) {
  KGC_DCHECK(raw_rank >= 1.0);
  KGC_DCHECK(filtered_rank >= 1.0);
  ++count_;
  sum_rank_ += raw_rank;
  sum_inv_rank_ += 1.0 / raw_rank;
  if (raw_rank <= 1.0) hits1_ += 1;
  if (raw_rank <= 10.0) hits10_ += 1;
  fsum_rank_ += filtered_rank;
  fsum_inv_rank_ += 1.0 / filtered_rank;
  if (filtered_rank <= 1.0) fhits1_ += 1;
  if (filtered_rank <= 10.0) fhits10_ += 1;
}

void MetricsAccumulator::Add(const TripleRanks& ranks) {
  Add(ranks.head_raw, ranks.head_filtered);
  Add(ranks.tail_raw, ranks.tail_filtered);
  ++triples_;
}

LinkPredictionMetrics MetricsAccumulator::Finalize() const {
  LinkPredictionMetrics metrics;
  metrics.num_triples = triples_ > 0 ? triples_ : count_;
  if (count_ == 0) return metrics;
  const double n = static_cast<double>(count_);
  metrics.mr = sum_rank_ / n;
  metrics.mrr = sum_inv_rank_ / n;
  metrics.hits1 = hits1_ / n;
  metrics.hits10 = hits10_ / n;
  metrics.fmr = fsum_rank_ / n;
  metrics.fmrr = fsum_inv_rank_ / n;
  metrics.fhits1 = fhits1_ / n;
  metrics.fhits10 = fhits10_ / n;
  return metrics;
}

LinkPredictionMetrics ComputeMetrics(std::span<const TripleRanks> ranks) {
  MetricsAccumulator acc;
  for (const TripleRanks& r : ranks) acc.Add(r);
  return acc.Finalize();
}

std::unordered_map<RelationId, LinkPredictionMetrics> ComputeMetricsByRelation(
    std::span<const TripleRanks> ranks) {
  std::unordered_map<RelationId, MetricsAccumulator> accs;
  for (const TripleRanks& r : ranks) accs[r.triple.relation].Add(r);
  std::unordered_map<RelationId, LinkPredictionMetrics> result;
  result.reserve(accs.size());
  for (const auto& [relation, acc] : accs) {
    result.emplace(relation, acc.Finalize());
  }
  return result;
}

LinkPredictionMetrics ComputeMetricsWhere(std::span<const TripleRanks> ranks,
                                          const std::vector<bool>& keep) {
  KGC_CHECK_EQ(ranks.size(), keep.size());
  MetricsAccumulator acc;
  for (size_t i = 0; i < ranks.size(); ++i) {
    if (keep[i]) acc.Add(ranks[i]);
  }
  return acc.Finalize();
}

}  // namespace kgc
