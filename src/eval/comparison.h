// Cross-model comparisons (paper Tables 7, 8 and Figures 5-8).
//
// All functions take per-model rank vectors produced by RankTriples over the
// SAME test list, so index i refers to the same test triple everywhere.

#ifndef KGC_EVAL_COMPARISON_H_
#define KGC_EVAL_COMPARISON_H_

#include <array>
#include <string>
#include <vector>

#include "eval/category.h"
#include "eval/metrics.h"

namespace kgc {

/// One model's ranks, labelled.
struct LabeledRanks {
  std::string model;
  const std::vector<TripleRanks>* ranks = nullptr;
};

/// Table 8: number of distinct test relations on which each model is the
/// most accurate, per measure. Measures are rounded as in the paper (two
/// decimals; MRR-like measures three), and ties credit every tied model.
struct BestRelationCounts {
  std::string model;
  int fmr = 0;
  int fhits10 = 0;
  int fhits1 = 0;
  int fmrr = 0;
};
std::vector<BestRelationCounts> CountBestRelations(
    const std::vector<LabeledRanks>& models);

/// Figure 5/6 heatmap: share[m][k] = percentage of relation k's test triples
/// on which model m achieves the best per-triple reciprocal rank (filtered,
/// both sides pooled; ties credit every tied model). `relations` lists the
/// distinct test relations in display order.
struct WinShareHeatmap {
  std::vector<RelationId> relations;
  /// models x relations, percentages 0..100.
  std::vector<std::vector<double>> share;
};
WinShareHeatmap ComputePerRelationWinShare(
    const std::vector<LabeledRanks>& models);

/// Table 7: among test triples on which `challenger` outperforms `baseline`
/// under each measure, the percentage having redundant (reverse or
/// duplicate) counterparts in the training set. `has_train_redundancy` is
/// aligned with the rank vectors (from ComputeRedundancyBitmap cases).
struct OutperformRedundancyShare {
  double fmr = 0.0;
  double fhits10 = 0.0;
  double fhits1 = 0.0;
  double fmrr = 0.0;
  size_t outperform_fmr = 0, outperform_fhits10 = 0, outperform_fhits1 = 0,
         outperform_fmrr = 0;
};
OutperformRedundancyShare ComputeOutperformRedundancy(
    const std::vector<TripleRanks>& challenger,
    const std::vector<TripleRanks>& baseline,
    const std::vector<bool>& has_train_redundancy);

/// Figure 7a/8a: per relation category, the number of relations on which
/// each model attains the best FMRR. result[m][c] for model m, category c.
std::vector<std::array<int, 4>> CountBestRelationsByCategory(
    const std::vector<LabeledRanks>& models,
    const std::vector<RelationCategory>& categories);

}  // namespace kgc

#endif  // KGC_EVAL_COMPARISON_H_
