#include "eval/triple_classification.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace kgc {
namespace {

struct ScoredExample {
  double score = 0.0;
  bool positive = false;
};

// Corrupts `positive` into a negative absent from the full dataset.
Triple Corrupt(const Triple& positive, const TripleStore& all,
               const TripleClassificationOptions& options, Rng& rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    Triple corrupted = positive;
    const EntityId replacement = static_cast<EntityId>(
        rng.Uniform(static_cast<uint64_t>(all.num_entities())));
    if (options.corrupt_both_sides && rng.Bernoulli(0.5)) {
      corrupted.head = replacement;
    } else {
      corrupted.tail = replacement;
    }
    if (corrupted != positive && !all.Contains(corrupted)) return corrupted;
  }
  Triple corrupted = positive;
  corrupted.tail = static_cast<EntityId>(
      rng.Uniform(static_cast<uint64_t>(all.num_entities())));
  return corrupted;
}

// The threshold maximizing balanced accuracy over scored examples; midpoint
// between the best separating pair.
double BestThreshold(std::vector<ScoredExample>& examples) {
  if (examples.empty()) return 0.0;
  std::sort(examples.begin(), examples.end(),
            [](const ScoredExample& a, const ScoredExample& b) {
              return a.score < b.score;
            });
  // Classifying "score >= t" as positive: sweep candidate cuts.
  int64_t positives = 0;
  for (const ScoredExample& e : examples) positives += e.positive ? 1 : 0;
  // Start with the threshold below all scores: all predicted positive.
  int64_t correct = positives;
  int64_t best_correct = correct;
  double best_threshold = examples.front().score - 1.0;
  for (size_t i = 0; i < examples.size(); ++i) {
    // Move the threshold just above examples[i].
    correct += examples[i].positive ? -1 : 1;
    if (correct > best_correct) {
      best_correct = correct;
      best_threshold = i + 1 < examples.size()
                           ? (examples[i].score + examples[i + 1].score) / 2.0
                           : examples[i].score + 1.0;
    }
  }
  return best_threshold;
}

// Threshold fitting over the validation split. Takes the caller's Rng so
// EvaluateTripleClassification keeps its historical draw order (valid-split
// corruption first, then test corruption from the same stream) bit-exact.
ClassificationThresholds FitThresholdsWithRng(
    const KgeModel& model, const Dataset& dataset,
    const TripleClassificationOptions& options, Rng& rng) {
  const TripleStore& all = dataset.all_store();

  // Score balanced valid examples per relation.
  std::vector<std::vector<ScoredExample>> valid_scores(
      static_cast<size_t>(dataset.num_relations()));
  std::vector<ScoredExample> global_scores;
  for (const Triple& t : dataset.valid()) {
    const Triple negative = Corrupt(t, all, options, rng);
    const ScoredExample pos{model.Score(t.head, t.relation, t.tail), true};
    const ScoredExample neg{
        model.Score(negative.head, negative.relation, negative.tail), false};
    valid_scores[static_cast<size_t>(t.relation)].push_back(pos);
    valid_scores[static_cast<size_t>(t.relation)].push_back(neg);
    global_scores.push_back(pos);
    global_scores.push_back(neg);
  }

  ClassificationThresholds thresholds;
  thresholds.global = BestThreshold(global_scores);
  thresholds.per_relation.assign(
      static_cast<size_t>(dataset.num_relations()), thresholds.global);
  for (RelationId r = 0; r < dataset.num_relations(); ++r) {
    auto& scores = valid_scores[static_cast<size_t>(r)];
    if (scores.size() >= 4) {
      thresholds.per_relation[static_cast<size_t>(r)] = BestThreshold(scores);
    }
  }
  return thresholds;
}

}  // namespace

ClassificationThresholds FitClassificationThresholds(
    const KgeModel& model, const Dataset& dataset,
    const TripleClassificationOptions& options) {
  Rng rng(options.seed);
  return FitThresholdsWithRng(model, dataset, options, rng);
}

std::vector<ClassifiedTriple> ClassifyTriples(
    const KgeModel& model, const ClassificationThresholds& thresholds,
    std::span<const Triple> triples) {
  std::vector<ClassifiedTriple> out;
  out.reserve(triples.size());
  for (const Triple& t : triples) {
    ClassifiedTriple c;
    c.score = model.Score(t.head, t.relation, t.tail);
    c.threshold = thresholds.ThresholdFor(t.relation);
    c.label = c.score >= c.threshold;
    out.push_back(c);
  }
  return out;
}

TripleClassificationResult EvaluateTripleClassification(
    const KgeModel& model, const Dataset& dataset,
    const TripleClassificationOptions& options) {
  TripleClassificationResult result;
  const TripleStore& all = dataset.all_store();
  Rng rng(options.seed);

  const ClassificationThresholds fitted =
      FitThresholdsWithRng(model, dataset, options, rng);
  result.thresholds = fitted.per_relation;

  // Classify the balanced test set.
  size_t true_positives = 0, true_negatives = 0, total = 0;
  for (const Triple& t : dataset.test()) {
    const Triple negative = Corrupt(t, all, options, rng);
    const double threshold = result.thresholds[static_cast<size_t>(t.relation)];
    if (model.Score(t.head, t.relation, t.tail) >= threshold) {
      ++true_positives;
    }
    if (model.Score(negative.head, negative.relation, negative.tail) <
        threshold) {
      ++true_negatives;
    }
    ++total;
  }
  result.num_test_pairs = total;
  if (total > 0) {
    result.true_positive_rate =
        static_cast<double>(true_positives) / static_cast<double>(total);
    result.true_negative_rate =
        static_cast<double>(true_negatives) / static_cast<double>(total);
    result.accuracy =
        (result.true_positive_rate + result.true_negative_rate) / 2.0;
  }
  return result;
}

}  // namespace kgc
