#include "harness/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/string_util.h"

namespace kgc {
namespace {

using Clock = std::chrono::steady_clock;

const char* SignalName(int sig) {
  switch (sig) {
    case SIGTERM: return "SIGTERM";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGINT: return "SIGINT";
    default: return nullptr;
  }
}

// Child-side stream redirect; async-signal-safe calls only (we are between
// fork and exec). Returns false on failure.
bool RedirectTo(const std::string& path, int fd) {
  if (path.empty()) return true;
  const int file =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (file < 0) return false;
  const bool ok = ::dup2(file, fd) >= 0;
  ::close(file);
  return ok;
}

}  // namespace

std::string SubprocessResult::Describe() const {
  std::string inner;
  if (term_signal != 0) {
    if (const char* name = SignalName(term_signal)) {
      inner = StrFormat("signal:%s", name);
    } else {
      inner = StrFormat("signal:%d", term_signal);
    }
  } else {
    inner = StrFormat("exit:%d", exit_code);
  }
  return timed_out ? StrFormat("watchdog(%s)", inner.c_str()) : inner;
}

StatusOr<SubprocessResult> RunSubprocess(const SubprocessOptions& options) {
  if (options.argv.empty()) {
    return Status::InvalidArgument("RunSubprocess: empty argv");
  }
  // Build the C argv before forking: no allocation between fork and exec.
  std::vector<char*> argv;
  argv.reserve(options.argv.size() + 1);
  for (const std::string& arg : options.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(StrFormat("fork failed: %s", strerror(errno)));
  }
  if (pid == 0) {
    // Child. setenv allocates, which is formally unsafe post-fork in a
    // multithreaded parent but is the standard posix_spawn-less idiom; the
    // supervisor keeps its pre-fork state simple (no locks held around
    // RunSubprocess calls).
    for (const std::string& name : options.unset_env) {
      ::unsetenv(name.c_str());
    }
    for (const auto& [name, value] : options.env) {
      ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
    }
    if (!RedirectTo(options.stdout_path, STDOUT_FILENO) ||
        !RedirectTo(options.stderr_path, STDERR_FILENO)) {
      ::_exit(126);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed (missing binary, not executable, ...)
  }

  // Parent: poll with WNOHANG so the watchdog clock keeps running.
  const auto start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  SubprocessResult result;
  bool sent_term = false;
  double kill_at = 0.0;
  for (;;) {
    int wstatus = 0;
    rusage child_usage{};
    // wait4 = waitpid + the reaped child's rusage, so the supervisor gets
    // per-child CPU/RSS/fault accounting for free on the same poll.
    const pid_t done = ::wait4(pid, &wstatus, WNOHANG, &child_usage);
    if (done == pid) {
      result.seconds = elapsed();
      if (WIFSIGNALED(wstatus)) {
        result.term_signal = WTERMSIG(wstatus);
      } else {
        result.exit_code = WEXITSTATUS(wstatus);
      }
      result.rusage_ok = true;
      result.cpu_user_seconds =
          static_cast<double>(child_usage.ru_utime.tv_sec) +
          static_cast<double>(child_usage.ru_utime.tv_usec) * 1e-6;
      result.cpu_sys_seconds =
          static_cast<double>(child_usage.ru_stime.tv_sec) +
          static_cast<double>(child_usage.ru_stime.tv_usec) * 1e-6;
      result.max_rss_bytes =
          static_cast<int64_t>(child_usage.ru_maxrss) * 1024;  // KiB on Linux
      result.minor_faults = child_usage.ru_minflt;
      result.major_faults = child_usage.ru_majflt;
      result.vol_ctx_switches = child_usage.ru_nvcsw;
      result.invol_ctx_switches = child_usage.ru_nivcsw;
      return result;
    }
    if (done < 0 && errno != EINTR) {
      return Status::Internal(
          StrFormat("wait4 failed: %s", strerror(errno)));
    }
    if (options.timeout_seconds > 0 && !sent_term &&
        elapsed() > options.timeout_seconds) {
      result.timed_out = true;
      sent_term = true;
      kill_at = elapsed() + std::max(0.0, options.term_grace_seconds);
      ::kill(pid, SIGTERM);
    }
    if (sent_term && elapsed() > kill_at) {
      ::kill(pid, SIGKILL);
      kill_at = 1e30;  // send it once
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace kgc
