#include "harness/suite.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "harness/subprocess.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "util/deadline.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgc {
namespace {

namespace fs = std::filesystem;

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

// Public (suite.h): also the escalation hook for snapshot rollbacks.
int QuarantineRecentArtifacts(const std::string& cache_dir,
                              fs::file_time_type since,
                              const std::string& table) {
  if (cache_dir.empty()) return 0;
  std::error_code ec;
  fs::recursive_directory_iterator it(cache_dir, ec);
  if (ec) return 0;
  // Collect first: QuarantineCorrupt renames while we iterate otherwise.
  std::vector<std::string> suspects;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string path = entry.path().string();
    if (EndsWith(path, ".corrupt") || EndsWith(path, ".tmp")) continue;
    const fs::file_time_type mtime = entry.last_write_time(ec);
    if (ec || mtime < since) continue;
    suspects.push_back(path);
  }
  std::sort(suspects.begin(), suspects.end());
  for (const std::string& path : suspects) {
    QuarantineCorrupt(
        path, Status::Internal(StrFormat(
                  "suspect artifact: written during repeated failures of %s",
                  table.c_str())));
  }
  return static_cast<int>(suspects.size());
}

namespace {

std::string ManifestLine(const TableRun& run) {
  std::string line = StrFormat(
      "{\"schema\":\"kgc.suite_manifest.v1\",\"table\":\"%s\","
      "\"status\":\"%s\",\"attempts\":%d,\"exit\":\"%s\",\"seconds\":%s,"
      "\"quarantined\":%d,\"stdout\":\"%s\",\"wall\":\"%s\"",
      obs::JsonEscape(run.table).c_str(), obs::JsonEscape(run.status).c_str(),
      run.attempts, obs::JsonEscape(run.exit_detail).c_str(),
      obs::JsonDouble(run.seconds).c_str(), run.quarantined,
      obs::JsonEscape(run.stdout_path).c_str(), obs::Iso8601UtcNow().c_str());
  if (run.rusage_ok) {
    line += StrFormat(
        ",\"resources\":{\"cpu_user_seconds\":%s,\"cpu_sys_seconds\":%s,"
        "\"max_rss_bytes\":%lld,\"minor_faults\":%lld,\"major_faults\":%lld,"
        "\"vol_ctx_switches\":%lld,\"invol_ctx_switches\":%lld}",
        obs::JsonDouble(run.cpu_user_seconds).c_str(),
        obs::JsonDouble(run.cpu_sys_seconds).c_str(),
        static_cast<long long>(run.max_rss_bytes),
        static_cast<long long>(run.minor_faults),
        static_cast<long long>(run.major_faults),
        static_cast<long long>(run.vol_ctx_switches),
        static_cast<long long>(run.invol_ctx_switches));
  }
  line += "}\n";
  return line;
}

// Folds one reaped attempt's rusage into the table's totals (CPU, faults
// and switches add up across attempts; RSS keeps the high-water mark).
void AccumulateChildUsage(const SubprocessResult& result, TableRun* run) {
  if (!result.rusage_ok) return;
  run->rusage_ok = true;
  run->cpu_user_seconds += result.cpu_user_seconds;
  run->cpu_sys_seconds += result.cpu_sys_seconds;
  run->max_rss_bytes = std::max(run->max_rss_bytes, result.max_rss_bytes);
  run->minor_faults += result.minor_faults;
  run->major_faults += result.major_faults;
  run->vol_ctx_switches += result.vol_ctx_switches;
  run->invol_ctx_switches += result.invol_ctx_switches;
}

}  // namespace

bool SuiteResult::all_ok() const {
  return std::all_of(tables.begin(), tables.end(),
                     [](const TableRun& t) { return t.ok(); });
}

int SuiteResult::num_failed() const {
  return static_cast<int>(std::count_if(
      tables.begin(), tables.end(),
      [](const TableRun& t) { return !t.ok(); }));
}

std::vector<std::string> DefaultBenchTables() {
  // Mirrors bench/CMakeLists.txt: every kgc_add_bench target, suite order.
  return {
      "bench_table1_dataset_stats",
      "bench_fig1_fmrr_drop",
      "bench_sec421_reverse_leakage",
      "bench_fig4_redundancy_cases",
      "bench_table2_cartesian_survivors",
      "bench_table3_cartesian_predictor",
      "bench_table5_fb15k",
      "bench_table6_wn18",
      "bench_table7_outperform_redundancy",
      "bench_table8_best_model_counts",
      "bench_fig5_fig6_heatmaps",
      "bench_fig7_category_breakdown",
      "bench_table9_table10_category_hits",
      "bench_table11_yago",
      "bench_fig8_table12_yago_categories",
      "bench_table13_fhits1_simple_model",
      "bench_ablation_cleaning_threshold",
      "bench_ablation_negative_sampling",
      "bench_ext_other_tasks",
  };
}

StatusOr<SuiteResult> RunSuite(const SuiteOptions& options) {
  if (options.tables.empty()) {
    return Status::InvalidArgument("RunSuite: no tables to run");
  }
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("RunSuite: max_attempts must be >= 1");
  }
  KGC_RETURN_IF_ERROR(MakeDirectories(options.out_dir));
  if (!options.cache_dir.empty()) {
    KGC_RETURN_IF_ERROR(MakeDirectories(options.cache_dir));
  }
  SuiteResult suite;
  suite.manifest_path = options.manifest_path.empty()
                            ? options.out_dir + "/suite_manifest.jsonl"
                            : options.manifest_path;
  std::FILE* manifest = std::fopen(suite.manifest_path.c_str(), "w");
  if (manifest == nullptr) {
    return Status::IoError("cannot open manifest " + suite.manifest_path);
  }

  for (const std::string& table : options.tables) {
    TableRun run;
    run.table = table;
    run.stdout_path = options.out_dir + "/" + table + ".out";
    const std::string binary = options.bench_dir + "/" + table;
    if (!FileExists(binary)) {
      run.status = "failed";
      run.exit_detail = "missing binary";
      LogError("suite: %s: missing binary %s", table.c_str(),
               binary.c_str());
      std::fputs(ManifestLine(run).c_str(), manifest);
      std::fflush(manifest);
      suite.tables.push_back(run);
      continue;
    }

    const fs::file_time_type table_start = fs::file_time_type::clock::now();
    int hard_failures = 0;  // crashes/kills, not orderly deadline exits
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      if (attempt > 0) {
        const double backoff = std::min(
            options.backoff_cap_seconds,
            options.backoff_base_seconds * static_cast<double>(1 << (attempt - 1)));
        if (backoff > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
      }
      SubprocessOptions sub;
      sub.argv = {binary,
                  "--report=" + options.out_dir + "/" + table +
                      ".report.jsonl"};
      sub.stdout_path = run.stdout_path;
      sub.stderr_path = options.out_dir + "/" + table + ".err";
      sub.timeout_seconds = options.timeout_seconds;
      sub.term_grace_seconds = options.term_grace_seconds;
      if (!options.cache_dir.empty()) {
        sub.env.push_back({"KGC_CACHE_DIR", options.cache_dir});
      }
      if (options.phase_timeout_seconds > 0) {
        sub.env.push_back({"KGC_PHASE_TIMEOUT_S",
                           StrFormat("%g", options.phase_timeout_seconds)});
      }
      if (!options.epoch_scale.empty()) {
        sub.env.push_back({"KGC_EPOCH_SCALE", options.epoch_scale});
      }
      if (options.threads > 0) {
        sub.env.push_back({"KGC_THREADS", StrFormat("%d", options.threads)});
      }
      // Chaos faults model transient damage: first attempt only. Retries
      // explicitly clear KGC_FAULTS so the same deterministic spec cannot
      // re-fire on every attempt (and any spec inherited from the
      // supervisor's own environment stays out of the children).
      if (!options.chaos_faults.empty() && attempt == 0) {
        sub.env.push_back({"KGC_FAULTS", options.chaos_faults});
      } else {
        sub.unset_env.push_back("KGC_FAULTS");
      }

      auto result = RunSubprocess(sub);
      run.attempts = attempt + 1;
      if (!result.ok()) {
        std::fclose(manifest);
        return result.status();
      }
      run.seconds += result->seconds;
      run.exit_detail = result->Describe();
      AccumulateChildUsage(*result, &run);
      if (result->ok()) {
        run.status = "ok";
        break;
      }
      const bool orderly_timeout =
          result->term_signal == 0 && result->exit_code == kDeadlineExitCode;
      run.status = orderly_timeout ? "timeout" : "failed";
      LogWarning("suite: %s attempt %d/%d failed (%s)%s", table.c_str(),
                 attempt + 1, options.max_attempts,
                 run.exit_detail.c_str(),
                 attempt + 1 < options.max_attempts ? "; retrying" : "");
      if (!orderly_timeout) {
        // A deadline exit is orderly — checkpoints were saved, nothing can
        // be torn, the retry resumes. A crash or kill is not: after the
        // second one, suspect the cache artifacts this table touched and
        // route them through the quarantine path before retrying.
        ++hard_failures;
        if (hard_failures >= 2 && attempt + 1 < options.max_attempts) {
          const int n = QuarantineRecentArtifacts(options.cache_dir,
                                                  table_start, table);
          run.quarantined += n;
          if (n > 0) {
            LogWarning("suite: %s: quarantined %d suspect cache artifacts",
                       table.c_str(), n);
          }
        }
      }
    }
    std::fputs(ManifestLine(run).c_str(), manifest);
    std::fflush(manifest);
    suite.tables.push_back(run);
  }

  TableRun summary;
  summary.table = "_suite";
  summary.status = suite.all_ok() ? "ok" : "failed";
  summary.attempts = static_cast<int>(suite.tables.size());
  summary.exit_detail =
      StrFormat("%d/%zu tables ok", static_cast<int>(suite.tables.size()) -
                                        suite.num_failed(),
                suite.tables.size());
  for (const TableRun& t : suite.tables) {
    summary.seconds += t.seconds;
    summary.quarantined += t.quarantined;
    if (t.rusage_ok) {
      summary.rusage_ok = true;
      summary.cpu_user_seconds += t.cpu_user_seconds;
      summary.cpu_sys_seconds += t.cpu_sys_seconds;
      summary.max_rss_bytes = std::max(summary.max_rss_bytes, t.max_rss_bytes);
      summary.minor_faults += t.minor_faults;
      summary.major_faults += t.major_faults;
      summary.vol_ctx_switches += t.vol_ctx_switches;
      summary.invol_ctx_switches += t.invol_ctx_switches;
    }
  }
  std::fputs(ManifestLine(summary).c_str(), manifest);
  std::fclose(manifest);
  return suite;
}

}  // namespace kgc
