// Subprocess execution with a watchdog: the isolation primitive under
// tools/kgc_suite.
//
// Each bench table runs in its own process so a crash, hang, or injected
// fault in one table cannot take down the suite — the supervisor observes
// the exit status and decides (retry, quarantine, degrade). The watchdog
// escalates gently: after `timeout_seconds` the child gets SIGTERM (its
// BenchTelemetry signal hook flushes an attributed run report), and only
// after `term_grace_seconds` more does SIGKILL end a child that ignored
// the term. All artifact writes in the tree are crash-safe
// (util/file_util.h AtomicWriteFile), so even the SIGKILL path cannot
// leave a torn file — at worst a stale `.tmp` that the next writer
// replaces.

#ifndef KGC_HARNESS_SUBPROCESS_H_
#define KGC_HARNESS_SUBPROCESS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace kgc {

struct SubprocessOptions {
  /// Program + arguments; argv[0] is the executable path.
  std::vector<std::string> argv;
  /// Environment overrides applied in the child before exec.
  std::vector<std::pair<std::string, std::string>> env;
  /// Variables removed from the child environment (e.g. KGC_FAULTS on a
  /// retry, so a first-attempt chaos spec does not re-fire forever).
  std::vector<std::string> unset_env;
  /// Redirect targets; empty inherits the parent stream. Files are
  /// truncated.
  std::string stdout_path;
  std::string stderr_path;
  /// Watchdog: wall-clock budget for the child; <= 0 disables.
  double timeout_seconds = 0.0;
  /// SIGTERM-to-SIGKILL escalation delay once the watchdog fires.
  double term_grace_seconds = 5.0;
};

struct SubprocessResult {
  /// Child's exit code; meaningful only when term_signal == 0.
  int exit_code = -1;
  /// Signal that terminated the child (0 = exited normally).
  int term_signal = 0;
  /// The watchdog fired (the child was SIGTERMed and possibly SIGKILLed).
  bool timed_out = false;
  double seconds = 0.0;
  /// Child resource usage harvested with wait4 (covers the child and its
  /// waited-for descendants). rusage_ok is false when the platform/WNOHANG
  /// path could not provide it.
  bool rusage_ok = false;
  double cpu_user_seconds = 0.0;
  double cpu_sys_seconds = 0.0;
  int64_t max_rss_bytes = 0;
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t vol_ctx_switches = 0;
  int64_t invol_ctx_switches = 0;

  bool ok() const { return !timed_out && term_signal == 0 && exit_code == 0; }
  /// "exit:0", "exit:124", "signal:SIGSEGV", "watchdog(signal:SIGTERM)".
  std::string Describe() const;
};

/// Forks, execs, supervises. Status errors cover supervisor-side failures
/// (fork/exec plumbing); a child that ran and failed is a non-ok
/// SubprocessResult, not a Status error.
StatusOr<SubprocessResult> RunSubprocess(const SubprocessOptions& options);

}  // namespace kgc

#endif  // KGC_HARNESS_SUBPROCESS_H_
