// Suite supervision: retry, backoff, quarantine escalation, degradation.
//
// RunSuite drives a list of bench tables as isolated subprocesses
// (harness/subprocess.h) and turns their raw exit statuses into suite
// policy:
//
//   - Watchdog: each attempt gets a wall-clock budget; a stuck child is
//     SIGTERMed (grace) then SIGKILLed. Independently, children get
//     KGC_PHASE_TIMEOUT_S so a slow-but-alive phase exits *itself* with
//     kDeadlineExitCode after saving a resumable checkpoint — the orderly
//     "timeout" path that the supervisor prefers over its own kill.
//   - Retry with exponential backoff: failed attempts are retried up to
//     max_attempts with base * 2^k sleeps (capped). A chaos fault spec
//     (KGC_FAULTS) is applied to the FIRST attempt only and explicitly
//     cleared on retries — injected faults model transient damage, and a
//     deterministic spec would otherwise re-fire identically forever.
//   - Quarantine escalation: when a table fails repeatedly and at least
//     once non-orderly (crash/kill, not a deadline exit), the shared cache
//     artifacts written since the table started are moved aside via
//     QuarantineCorrupt (the PR 1 `.corrupt` path) before the next retry,
//     so a poisoned artifact cannot fail every retry from the cache.
//   - Graceful degradation: a table that exhausts retries is recorded as
//     "failed" (or "timeout") in the manifest and the suite moves on;
//     remaining tables still complete.
//
// The manifest is JSONL, one object per table plus a trailing "_suite"
// summary, schema "kgc.suite_manifest.v1":
//
//   {"schema":"kgc.suite_manifest.v1","table":"bench_table5_fb15k",
//    "status":"ok","attempts":2,"exit":"exit:0","seconds":1.9,
//    "quarantined":0,"stdout":"out/bench_table5_fb15k.out",
//    "wall":"2026-08-07T12:00:00Z","resources":{"cpu_user_seconds":1.7,...}}
//
// The "resources" object is the child's rusage harvested with wait4 (CPU
// and fault totals across attempts, peak RSS over attempts); it is omitted
// for tables where no child was ever reaped (missing binary).
//
// It is appended and flushed table by table, so a killed supervisor leaves
// a readable prefix.

#ifndef KGC_HARNESS_SUITE_H_
#define KGC_HARNESS_SUITE_H_

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgc {

struct SuiteOptions {
  /// Directory holding the bench binaries (e.g. "<build>/bench").
  std::string bench_dir;
  /// Table binaries to run, in order.
  std::vector<std::string> tables;
  /// Per-table stdout/stderr captures and run reports land here.
  std::string out_dir = "kgc_suite_out";
  /// Shared artifact cache handed to children as KGC_CACHE_DIR ("" =
  /// children use their own default).
  std::string cache_dir;
  /// Manifest path ("" = <out_dir>/suite_manifest.jsonl).
  std::string manifest_path;
  /// Per-attempt watchdog budget in seconds; <= 0 disables.
  double timeout_seconds = 0.0;
  /// SIGTERM-to-SIGKILL grace once the watchdog fires.
  double term_grace_seconds = 5.0;
  /// Per-phase cooperative deadline for children (KGC_PHASE_TIMEOUT_S);
  /// <= 0 leaves the child's environment untouched.
  double phase_timeout_seconds = 0.0;
  /// Attempts per table (1 = no retries).
  int max_attempts = 3;
  /// Exponential backoff between attempts: base * 2^k, capped.
  double backoff_base_seconds = 0.5;
  double backoff_cap_seconds = 8.0;
  /// KGC_FAULTS spec injected into each table's FIRST attempt only.
  std::string chaos_faults;
  /// KGC_EPOCH_SCALE passthrough ("" = inherit).
  std::string epoch_scale;
  /// KGC_THREADS for children; 0 = inherit.
  int threads = 0;
};

struct TableRun {
  std::string table;
  /// "ok" | "timeout" (deadline exit persisted) | "failed".
  std::string status;
  int attempts = 0;
  /// SubprocessResult::Describe() of the last attempt, or a supervisor
  /// note ("missing binary").
  std::string exit_detail;
  double seconds = 0.0;  ///< total across attempts
  int quarantined = 0;   ///< cache artifacts quarantined between retries
  std::string stdout_path;
  /// Child resource usage harvested by the supervisor (wait4). CPU, fault
  /// and context-switch totals accumulate across attempts; max_rss_bytes
  /// is the max over attempts. rusage_ok is false when no attempt was
  /// actually reaped (e.g. missing binary).
  bool rusage_ok = false;
  double cpu_user_seconds = 0.0;
  double cpu_sys_seconds = 0.0;
  int64_t max_rss_bytes = 0;
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t vol_ctx_switches = 0;
  int64_t invol_ctx_switches = 0;

  bool ok() const { return status == "ok"; }
};

struct SuiteResult {
  std::vector<TableRun> tables;
  std::string manifest_path;

  bool all_ok() const;
  int num_failed() const;
};

/// The bench tables the full suite runs, in canonical order (every
/// kgc_add_bench binary except the google-benchmark microbench).
std::vector<std::string> DefaultBenchTables();

/// Runs the suite. Status errors are supervisor-side problems (cannot
/// create out_dir / manifest); table failures are reported in SuiteResult.
StatusOr<SuiteResult> RunSuite(const SuiteOptions& options);

/// Moves aside (QuarantineCorrupt) every cache artifact under `cache_dir`
/// written at or after `since` — the suspect set when `what` keeps failing:
/// whatever it (or a failing predecessor attempt) wrote may be poisoned.
/// Quarantine markers and write-temp leftovers are skipped. Returns the
/// number quarantined. Used by the suite supervisor between retries and by
/// the snapshot rotator when a rolled-back generation is escalated.
int QuarantineRecentArtifacts(const std::string& cache_dir,
                              std::filesystem::file_time_type since,
                              const std::string& what);

}  // namespace kgc

#endif  // KGC_HARNESS_SUITE_H_
