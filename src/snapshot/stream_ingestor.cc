#include "snapshot/stream_ingestor.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "eval/metrics.h"
#include "eval/ranker.h"
#include "kg/kg_io.h"
#include "models/model_store.h"
#include "obs/metrics.h"
#include "redundancy/detectors.h"
#include "util/crc32.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgc {
namespace {

namespace fs = std::filesystem;

// Mixes the stream seed with the generation number (splitmix64 finalizer)
// so every generation trains with a distinct but replay-stable seed.
uint64_t MixSeed(uint64_t seed, int64_t generation) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(generation) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string SanitizeLabel(std::string label) {
  for (char& c : label) {
    if (c == '/' || c == ' ' || c == '\\') c = '_';
  }
  return label;
}

// Filtered MRR of the candidate model over the candidate's valid split —
// the regression-gate measure.
double ValidFilteredMrr(const KgeModel& model, const Dataset& candidate,
                        int threads) {
  if (candidate.valid().empty()) return 0.0;
  RankerOptions ranker_options;
  ranker_options.threads = threads;
  const std::vector<TripleRanks> ranks =
      RankTriples(model, candidate, candidate.valid(), ranker_options);
  return ComputeMetrics(ranks).fmrr;
}

}  // namespace

StreamIngestor::StreamIngestor(SnapshotRegistry& registry,
                               StreamIngestorOptions options)
    : registry_(&registry), options_(std::move(options)) {}

Status StreamIngestor::StageCandidate(Dataset& candidate, bool warm_start,
                                      SnapshotManifest& manifest) {
  const std::string staging = registry_->StagingDir(manifest.generation);

  std::unique_ptr<KgeModel> model;
  const ModelHyperParams params = DefaultHyperParams(options_.model_type);
  if (warm_start) {
    // Continue from the parent's trained parameters: the disk round-trip
    // (rather than cloning the in-memory model) keeps warm starts
    // deterministic across process restarts — replay reloads the same
    // bytes.
    ModelStore parent_store(registry_->GenerationDir(manifest.parent));
    auto loaded = parent_store.Load("model");
    if (!loaded.ok()) return loaded.status();
    model = std::move(*loaded);
  } else {
    model = CreateModel(options_.model_type, candidate.num_entities(),
                        candidate.num_relations(), params);
  }

  TrainOptions train;
  train.epochs = static_cast<int>(manifest.epochs);
  train.seed = manifest.train_seed;
  train.checkpoint_path = staging + "/train.ckpt";
  train.checkpoint_every = std::max(1, train.epochs / 4);
  const TrainStats stats = TrainModel(*model, candidate, train);
  LogInfo("snapshot: trained generation %lld (%s start, %d epochs, "
          "final loss %.4f)",
          static_cast<long long>(manifest.generation),
          warm_start ? "warm" : "cold", stats.epochs_run, stats.final_loss);

  ModelStore staging_store(staging);
  if (!staging_store.usable()) {
    return Status::IoError("cannot stage into " + staging);
  }
  KGC_RETURN_IF_ERROR(staging_store.Save("model", *model));
  KGC_RETURN_IF_ERROR(SaveOpenKeDataset(candidate, staging + "/data"));

  auto model_bytes = ReadFileBytes(staging + "/model.kgcm");
  if (!model_bytes.ok()) return model_bytes.status();
  manifest.model_bytes = static_cast<int64_t>(model_bytes->size());
  manifest.model_crc32 = Crc32(model_bytes->data(), model_bytes->size());
  auto data_crc = ComputeDataDirCrc(staging + "/data");
  if (!data_crc.ok()) return data_crc.status();
  manifest.data_crc32 = *data_crc;

  manifest.model = ModelTypeName(options_.model_type);
  manifest.warm_start = warm_start;
  manifest.dataset_name = candidate.name();
  manifest.num_entities = candidate.num_entities();
  manifest.num_relations = candidate.num_relations();
  manifest.train_triples = static_cast<int64_t>(candidate.train().size());
  manifest.valid_triples = static_cast<int64_t>(candidate.valid().size());
  manifest.test_triples = static_cast<int64_t>(candidate.test().size());
  manifest.valid_mrr =
      ValidFilteredMrr(*model, candidate, options_.threads);

  staged_model_ = std::move(model);
  return Status::Ok();
}

void StreamIngestor::QuarantineBatch(const std::vector<std::string>& lines,
                                     const std::string& label,
                                     const Status& why) {
  obs::Registry::Get()
      .GetCounter(obs::kSnapshotBatchesQuarantined)
      .Increment();
  const std::string base =
      registry_->QuarantineDir() + "/" + SanitizeLabel(label);
  const Status dir_status = MakeDirectories(registry_->QuarantineDir());
  if (!dir_status.ok()) {
    LogWarning("snapshot: cannot quarantine batch %s: %s", label.c_str(),
               dir_status.ToString().c_str());
    return;
  }
  std::string payload;
  for (const std::string& line : lines) {
    payload += line;
    payload += '\n';
  }
  const Status payload_status =
      WriteStringToFile(base + ".lines", payload);
  const Status reason_status =
      WriteStringToFile(base + ".reason", why.ToString() + "\n");
  if (!payload_status.ok() || !reason_status.ok()) {
    LogWarning("snapshot: batch quarantine write failed for %s",
               label.c_str());
  }
  LogWarning("snapshot: quarantined batch %s (%s)", label.c_str(),
             why.ToString().c_str());
}

void StreamIngestor::AuditDelta(const Dataset& candidate,
                                const std::vector<RelationId>& touched,
                                SnapshotManifest& manifest) const {
  const TripleStore& store = candidate.all_store();
  const DetectorOptions detector;  // paper defaults: theta = delta = 0.8
  static obs::Counter& compared =
      obs::Registry::Get().GetCounter(obs::kRedundancyPairsCompared);
  static obs::Counter& flagged =
      obs::Registry::Get().GetCounter(obs::kRedundancyPairsFlagged);

  // Only relations the delta touched are re-audited, but each is compared
  // against every relation — a new batch can create an overlap with any
  // old relation. Flagged pairs are keyed (min, max) so a pair where both
  // sides were touched counts once.
  std::unordered_set<uint64_t> duplicate_pairs;
  std::unordered_set<uint64_t> reverse_pairs;
  std::unordered_set<RelationId> symmetric;
  int64_t cartesian = 0;
  for (RelationId r : touched) {
    const size_t size_r = store.RelationSize(r);
    if (size_r >= detector.min_relation_size) {
      const EntitySetView subjects = store.Subjects(r);
      const EntitySetView objects = store.Objects(r);
      const double denominator =
          static_cast<double>(subjects.size()) *
          static_cast<double>(objects.size());
      if (denominator > 0 &&
          static_cast<double>(size_r) / denominator >
              detector.cartesian_density) {
        ++cartesian;
      }
    }
    for (RelationId s = 0; s < store.num_relations(); ++s) {
      const size_t size_s = store.RelationSize(s);
      if (size_r < detector.min_relation_size ||
          size_s < detector.min_relation_size) {
        continue;
      }
      compared.Increment();
      const uint64_t pair_key =
          PackPair(std::min(r, s), std::max(r, s));
      if (s != r) {
        const size_t inter =
            PairIntersectionSize(store.Pairs(r), store.Pairs(s));
        if (static_cast<double>(inter) / static_cast<double>(size_r) >
                detector.theta1 &&
            static_cast<double>(inter) / static_cast<double>(size_s) >
                detector.theta2) {
          if (duplicate_pairs.insert(pair_key).second) flagged.Increment();
        }
      }
      const size_t rev =
          PairReverseIntersectionSize(store.Pairs(r), store.Pairs(s));
      if (s == r) {
        if (static_cast<double>(rev) / static_cast<double>(size_r) >
            detector.theta1) {
          symmetric.insert(r);
        }
      } else if (static_cast<double>(rev) / static_cast<double>(size_r) >
                     detector.theta1 &&
                 static_cast<double>(rev) / static_cast<double>(size_s) >
                     detector.theta2) {
        if (reverse_pairs.insert(pair_key).second) flagged.Increment();
      }
    }
  }
  manifest.relations_audited = static_cast<int64_t>(touched.size());
  manifest.duplicate_pairs = static_cast<int64_t>(duplicate_pairs.size());
  manifest.reverse_pairs = static_cast<int64_t>(reverse_pairs.size());
  manifest.symmetric_relations = static_cast<int64_t>(symmetric.size());
  manifest.cartesian_relations = cartesian;
}

StatusOr<IngestReport> StreamIngestor::Bootstrap(const Dataset& base) {
  if (registry_->current() != nullptr) {
    return Status::FailedPrecondition(
        "registry already holds a generation; bootstrap requires an empty "
        "registry");
  }
  const int64_t generation = 0;

  SnapshotManifest manifest;
  manifest.generation = generation;
  manifest.parent = -1;
  manifest.source_batch = "bootstrap";
  manifest.source_batch_index = -1;
  manifest.epochs = options_.bootstrap_epochs > 0 ? options_.bootstrap_epochs
                                                  : options_.epochs;
  manifest.train_seed = MixSeed(options_.train_seed, generation);
  manifest.epsilon = options_.epsilon;
  manifest.delta_triples = static_cast<int64_t>(base.train().size());

  Dataset candidate(base.name(), base.vocab(), base.train(), base.valid(),
                    base.test());

  KGC_RETURN_IF_ERROR(registry_->BeginGeneration(generation));
  const fs::file_time_type staged_since = fs::file_time_type::clock::now();
  (void)staged_since;  // bootstrap is never rolled back (no parent gate)
  KGC_RETURN_IF_ERROR(StageCandidate(candidate, /*warm_start=*/false,
                                     manifest));

  std::vector<RelationId> touched;
  touched.reserve(static_cast<size_t>(candidate.num_relations()));
  for (RelationId r = 0; r < candidate.num_relations(); ++r) {
    touched.push_back(r);
  }
  AuditDelta(candidate, touched, manifest);

  auto loaded = std::make_shared<LoadedGeneration>();
  loaded->manifest = manifest;
  loaded->dataset = std::move(candidate);
  loaded->model = std::move(staged_model_);
  KGC_RETURN_IF_ERROR(registry_->Publish(std::move(loaded)));

  IngestReport report;
  report.outcome = "published";
  report.generation = generation;
  report.delta_triples = static_cast<size_t>(manifest.delta_triples);
  report.valid_mrr = manifest.valid_mrr;
  return report;
}

StatusOr<IngestReport> StreamIngestor::IngestBatch(
    const std::vector<std::string>& lines, const std::string& label,
    int64_t batch_index) {
  obs::Registry::Get().GetCounter(obs::kSnapshotBatchesIngested).Increment();
  std::shared_ptr<const LoadedGeneration> parent = registry_->current();
  if (parent == nullptr) {
    return Status::FailedPrecondition(
        "registry is empty; Bootstrap() a base generation first");
  }

  IngestReport report;
  if (batch_index >= 0 &&
      parent->manifest.source_batch_index >= batch_index) {
    // Crash-recovery replay: this batch is already folded into the live
    // generation (or one of its ancestors).
    report.outcome = "skipped";
    report.generation = parent->manifest.generation;
    report.detail = StrFormat("batch %lld already covered by generation %lld",
                              static_cast<long long>(batch_index),
                              static_cast<long long>(
                                  parent->manifest.generation));
    return report;
  }

  // 1. Validate. Lenient mode drops and counts; strict mode quarantines
  // the whole batch on the first bad line.
  IngestOptions ingest = options_.ingest;
  if (!ingest.strict) ingest.drop_bad_lines = true;
  IngestSummary summary;
  ingest.summary = &summary;
  Vocab vocab = parent->dataset.vocab();
  auto parsed = ParseTripleLines(lines, label, vocab, ingest);
  if (!parsed.ok()) {
    QuarantineBatch(lines, label, parsed.status());
    report.outcome = "quarantined";
    report.rejected_lines = summary.lines_rejected;
    report.detail = parsed.status().ToString();
    return report;
  }

  // 2. Deduplicate against the live graph and within the batch.
  const TripleStore& known = parent->dataset.all_store();
  std::unordered_set<Triple, TripleHash> seen;
  TripleList delta;
  for (const Triple& t : *parsed) {
    if (known.Contains(t)) continue;
    if (!seen.insert(t).second) continue;
    delta.push_back(t);
  }
  report.rejected_lines = summary.lines_rejected;
  if (delta.empty()) {
    report.outcome = "empty";
    report.generation = parent->manifest.generation;
    report.detail = "no fresh triples after deduplication";
    return report;
  }
  // 3. Split the delta and assemble the candidate dataset.
  TripleList train = parent->dataset.train();
  TripleList valid = parent->dataset.valid();
  std::vector<RelationId> touched;
  std::unordered_set<RelationId> touched_set;
  size_t fresh = 0;
  for (const Triple& t : delta) {
    ++fresh;
    if (options_.valid_every > 0 &&
        fresh % static_cast<size_t>(options_.valid_every) == 0) {
      valid.push_back(t);
    } else {
      train.push_back(t);
    }
    if (touched_set.insert(t.relation).second) touched.push_back(t.relation);
  }
  const bool warm_start =
      vocab.num_entities() == parent->dataset.num_entities() &&
      vocab.num_relations() == parent->dataset.num_relations();
  if (!warm_start) {
    obs::Registry::Get().GetCounter(obs::kSnapshotColdStarts).Increment();
  }
  Dataset candidate(parent->dataset.name(), std::move(vocab),
                    std::move(train), std::move(valid),
                    parent->dataset.test());

  const int64_t generation = parent->manifest.generation + 1;
  SnapshotManifest manifest;
  manifest.generation = generation;
  manifest.parent = parent->manifest.generation;
  manifest.source_batch = label;
  manifest.source_batch_index = batch_index;
  manifest.epochs = options_.epochs;
  manifest.train_seed = MixSeed(options_.train_seed, generation);
  manifest.epsilon = options_.epsilon;
  manifest.delta_triples = static_cast<int64_t>(delta.size());
  manifest.rejected_lines = static_cast<int64_t>(summary.lines_rejected);
  manifest.parent_valid_mrr = parent->manifest.valid_mrr;

  // 4. Stage: train (warm when the vocab shape held), audit, hash.
  KGC_RETURN_IF_ERROR(registry_->BeginGeneration(generation));
  const fs::file_time_type staged_since = fs::file_time_type::clock::now();
  KGC_RETURN_IF_ERROR(StageCandidate(candidate, warm_start, manifest));
  AuditDelta(candidate, touched, manifest);

  report.generation = generation;
  report.delta_triples = delta.size();
  report.valid_mrr = manifest.valid_mrr;
  report.parent_valid_mrr = manifest.parent_valid_mrr;

  // 5. Regression gate.
  if (manifest.valid_mrr <
      manifest.parent_valid_mrr - manifest.epsilon) {
    manifest.status = "rolled_back";
    manifest.rollback_reason = StrFormat(
        "valid fMRR %.6f regressed more than epsilon=%g below parent %.6f",
        manifest.valid_mrr, manifest.epsilon, manifest.parent_valid_mrr);
    staged_model_.reset();
    KGC_RETURN_IF_ERROR(registry_->Rollback(manifest, staged_since));
    report.outcome = "rolled_back";
    report.detail = manifest.rollback_reason;
    return report;
  }

  auto loaded = std::make_shared<LoadedGeneration>();
  loaded->manifest = manifest;
  loaded->dataset = std::move(candidate);
  loaded->model = std::move(staged_model_);
  KGC_RETURN_IF_ERROR(registry_->Publish(std::move(loaded)));
  report.outcome = "published";
  return report;
}

}  // namespace kgc
