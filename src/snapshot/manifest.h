// Snapshot generation manifests and the CURRENT pointer.
//
// Every published model generation carries a one-line JSON manifest
// (schema "kgc.snapshot_manifest.v1") recording its lineage (parent
// generation, source batch), content hashes binding it to the model and
// dataset bytes on disk, the incremental redundancy-audit verdicts, and the
// validation-gate evidence (valid-split filtered MRR vs the parent's, and
// the regression epsilon it was admitted under). Rolled-back candidates get
// the same record with status "rolled_back" plus the reason, appended to
// the registry's rotation log so escalations are auditable.
//
// The CURRENT pointer (schema "kgc.snapshot_current.v1") is a tiny JSON
// file naming the live generation and the CRC-32 of its manifest bytes —
// the single atomically-replaced commit point of the rotation protocol
// (see snapshot_registry.h).
//
// Rendering is flat, single-line, key-sorted-by-construction JSON;
// doubles use %.17g so a manifest round-trips bit-exactly (the chaos
// harness diffs recovered state against a clean run byte for byte).
// Manifests deliberately carry no wall-clock timestamps: a replayed
// rotation must produce identical bytes.

#ifndef KGC_SNAPSHOT_MANIFEST_H_
#define KGC_SNAPSHOT_MANIFEST_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace kgc {

inline constexpr char kSnapshotManifestSchema[] = "kgc.snapshot_manifest.v1";
inline constexpr char kSnapshotCurrentSchema[] = "kgc.snapshot_current.v1";

/// One generation's full provenance record.
struct SnapshotManifest {
  int64_t generation = 0;
  /// Parent generation this one was warm-started / derived from; -1 for
  /// the bootstrap generation.
  int64_t parent = -1;
  /// "published" | "rolled_back".
  std::string status = "published";
  /// Label of the stream batch that produced this generation ("bootstrap"
  /// for generation 0).
  std::string source_batch;
  /// Monotone index of that batch in the stream; replayed batches with an
  /// index <= the current generation's are skipped (crash-recovery replay).
  int64_t source_batch_index = -1;

  std::string dataset_name;
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t train_triples = 0;
  int64_t valid_triples = 0;
  int64_t test_triples = 0;
  /// Fresh (non-duplicate) triples this batch contributed.
  int64_t delta_triples = 0;
  /// Malformed lines dropped by lenient ingestion (IngestSummary).
  int64_t rejected_lines = 0;

  /// Training provenance.
  bool warm_start = false;
  int64_t epochs = 0;
  uint64_t train_seed = 0;
  std::string model;  ///< ModelTypeName of the trained model

  /// Content hashes binding the manifest to the artifact bytes.
  uint32_t model_crc32 = 0;
  int64_t model_bytes = 0;
  uint32_t data_crc32 = 0;

  /// Incremental redundancy-audit verdicts over the delta-touched
  /// relations (counts, not listings — the full catalogs stay in memory).
  int64_t relations_audited = 0;
  int64_t duplicate_pairs = 0;
  int64_t reverse_pairs = 0;
  int64_t symmetric_relations = 0;
  int64_t cartesian_relations = 0;

  /// Validation gate: filtered MRR on the valid split, the parent's, and
  /// the epsilon the decision was made under (publish iff
  /// valid_mrr >= parent_valid_mrr - epsilon).
  double valid_mrr = 0.0;
  double parent_valid_mrr = 0.0;
  double epsilon = 0.0;
  /// Human-readable gate verdict for status "rolled_back"; empty otherwise.
  std::string rollback_reason;
};

/// The atomically-replaced commit point: which generation is live, and the
/// CRC-32 of that generation's manifest.json bytes (detects a CURRENT that
/// survived a crash but points at a generation from a different lineage).
struct CurrentPointer {
  int64_t generation = -1;
  uint32_t manifest_crc32 = 0;
};

/// Renders a manifest as one line of flat JSON (no trailing newline).
std::string RenderManifest(const SnapshotManifest& manifest);

/// Parses RenderManifest output. Unknown keys are ignored (forward
/// compatibility); a wrong schema or malformed JSON is kInvalidArgument.
StatusOr<SnapshotManifest> ParseManifest(const std::string& json);

std::string RenderCurrentPointer(const CurrentPointer& current);
StatusOr<CurrentPointer> ParseCurrentPointer(const std::string& json);

}  // namespace kgc

#endif  // KGC_SNAPSHOT_MANIFEST_H_
