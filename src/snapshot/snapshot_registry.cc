#include "snapshot/snapshot_registry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "harness/suite.h"
#include "models/model_store.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

#include "kg/kg_io.h"

namespace kgc {
namespace {

namespace fs = std::filesystem;

// The five files SaveOpenKeDataset writes, in the canonical hashing order.
constexpr const char* kDataFiles[] = {"entity2id.txt", "relation2id.txt",
                                      "train2id.txt", "valid2id.txt",
                                      "test2id.txt"};

// Consults the named failpoint and dies the way the armed kind dictates:
// kCrash hard-exits like a SIGKILL (no atexit flushing — the whole point is
// an unclean death mid-protocol), kStall sleeps the payload, anything else
// surfaces as an injected I/O error for the caller to propagate.
Status SnapshotFailpoint(const std::string& site) {
  FaultKind kind = FaultKind::kEnospc;
  int64_t payload = 0;
  if (!FaultInjector::Get().ShouldFailAt(site, &kind, &payload)) {
    return Status::Ok();
  }
  switch (kind) {
    case FaultKind::kCrash:
      LogError("injected crash at failpoint %s", site.c_str());
      std::_Exit(137);
    case FaultKind::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(payload));
      return Status::Ok();
    default:
      return Status::IoError("injected fault at failpoint " + site);
  }
}

}  // namespace

StatusOr<uint32_t> ComputeDataDirCrc(const std::string& data_dir) {
  uint32_t crc = 0;
  for (const char* file : kDataFiles) {
    auto bytes = ReadFileBytes(data_dir + "/" + std::string(file));
    if (!bytes.ok()) return bytes.status();
    crc = Crc32Update(crc, bytes->data(), bytes->size());
  }
  return crc;
}

StatusOr<std::unique_ptr<SnapshotRegistry>> SnapshotRegistry::Open(
    const std::string& root) {
  std::unique_ptr<SnapshotRegistry> registry(new SnapshotRegistry(root));
  KGC_RETURN_IF_ERROR(registry->Recover());
  return registry;
}

std::string SnapshotRegistry::GenerationDir(int64_t generation) const {
  return root_ + StrFormat("/gen-%06lld", static_cast<long long>(generation));
}

std::string SnapshotRegistry::StagingDir(int64_t generation) const {
  return GenerationDir(generation) + ".staging";
}

int64_t SnapshotRegistry::current_generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ == nullptr ? -1 : current_->manifest.generation;
}

std::shared_ptr<const LoadedGeneration> SnapshotRegistry::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

Status SnapshotRegistry::BeginGeneration(int64_t generation) {
  KGC_RETURN_IF_ERROR(SnapshotFailpoint("rotate:stage"));
  const std::string staging = StagingDir(generation);
  // A leftover staging dir from an aborted attempt is stale by definition:
  // the replayed batch rebuilds it from scratch.
  std::error_code ec;
  fs::remove_all(staging, ec);
  return MakeDirectories(staging);
}

Status SnapshotRegistry::Publish(std::shared_ptr<LoadedGeneration> loaded) {
  const SnapshotManifest& manifest = loaded->manifest;
  const int64_t generation = manifest.generation;
  const std::string staging = StagingDir(generation);
  const std::string final_dir = GenerationDir(generation);

  const std::string manifest_text = RenderManifest(manifest) + "\n";
  KGC_RETURN_IF_ERROR(SnapshotFailpoint("rotate:manifest"));
  KGC_RETURN_IF_ERROR(WriteStringToFile(staging + "/manifest.json",
                                        manifest_text));

  KGC_RETURN_IF_ERROR(SnapshotFailpoint("rotate:rename"));
  KGC_RETURN_IF_ERROR(RenamePath(staging, final_dir));

  CurrentPointer pointer;
  pointer.generation = generation;
  pointer.manifest_crc32 =
      Crc32(manifest_text.data(), manifest_text.size());
  KGC_RETURN_IF_ERROR(SnapshotFailpoint("publish:current"));
  KGC_RETURN_IF_ERROR(WriteStringToFile(CurrentPath(),
                                        RenderCurrentPointer(pointer) + "\n"));

  // Past the commit point: the generation is durable and live. The log
  // append is advisory, so an injected I/O failure here is downgraded to a
  // warning (a crash kind still kills the process inside the failpoint).
  const Status log_gate = SnapshotFailpoint("publish:log");
  if (log_gate.ok()) {
    AppendRotationLog(manifest);
  } else {
    LogWarning("rotation.log append skipped: %s",
               log_gate.ToString().c_str());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = std::move(loaded);
  }
  obs::Registry::Get().GetCounter(obs::kSnapshotPublished).Increment();
  obs::Registry::Get()
      .GetCounter(obs::kSnapshotDeltaTriples)
      .Add(static_cast<uint64_t>(manifest.delta_triples));
  obs::Registry::Get()
      .GetGauge(obs::kSnapshotCurrentGeneration)
      .Set(static_cast<double>(generation));
  LogInfo("snapshot: published generation %lld (%lld delta triples, "
          "valid fMRR %.4f)",
          static_cast<long long>(generation),
          static_cast<long long>(manifest.delta_triples), manifest.valid_mrr);
  return Status::Ok();
}

Status SnapshotRegistry::Rollback(const SnapshotManifest& manifest,
                                  fs::file_time_type staged_since) {
  const int64_t generation = manifest.generation;
  const std::string staging = StagingDir(generation);
  obs::Registry::Get().GetCounter(obs::kSnapshotRollbacks).Increment();
  LogWarning("snapshot: rolling back generation %lld: %s",
             static_cast<long long>(generation),
             manifest.rollback_reason.c_str());

  // Escalate through the suite-supervisor quarantine path first: the
  // candidate's artifacts get .corrupt-suffixed in place, preserving the
  // evidence even if the directory move below fails.
  KGC_RETURN_IF_ERROR(SnapshotFailpoint("rollback:quarantine"));
  const int quarantined = QuarantineRecentArtifacts(
      staging, staged_since,
      StrFormat("snapshot generation %lld (regressed)",
                static_cast<long long>(generation)));
  if (quarantined > 0) {
    LogWarning("snapshot: quarantined %d artifacts of generation %lld",
               quarantined, static_cast<long long>(generation));
  }

  KGC_RETURN_IF_ERROR(SnapshotFailpoint("rollback:cleanup"));
  SweepAside(staging, "rolled back");

  KGC_RETURN_IF_ERROR(SnapshotFailpoint("rollback:record"));
  AppendRotationLog(manifest);
  return Status::Ok();
}

StatusOr<SnapshotManifest> SnapshotRegistry::ReadManifest(
    int64_t generation) const {
  auto text = ReadFileToString(GenerationDir(generation) + "/manifest.json");
  if (!text.ok()) return text.status();
  return ParseManifest(*text);
}

Status SnapshotRegistry::ValidateGeneration(
    int64_t generation, const uint32_t* expected_crc) const {
  const std::string dir = GenerationDir(generation);
  auto manifest_text = ReadFileToString(dir + "/manifest.json");
  if (!manifest_text.ok()) return manifest_text.status();
  if (expected_crc != nullptr) {
    const uint32_t crc =
        Crc32(manifest_text->data(), manifest_text->size());
    if (crc != *expected_crc) {
      return Status::IoError(StrFormat(
          "generation %lld manifest CRC %u does not match CURRENT's %u",
          static_cast<long long>(generation), crc, *expected_crc));
    }
  }
  auto manifest = ParseManifest(*manifest_text);
  if (!manifest.ok()) return manifest.status();
  if (manifest->generation != generation) {
    return Status::IoError(StrFormat(
        "generation dir %lld holds manifest for generation %lld",
        static_cast<long long>(generation),
        static_cast<long long>(manifest->generation)));
  }
  if (manifest->status != "published") {
    return Status::IoError(StrFormat("generation %lld has status '%s'",
                                     static_cast<long long>(generation),
                                     manifest->status.c_str()));
  }
  auto model_bytes = ReadFileBytes(dir + "/model.kgcm");
  if (!model_bytes.ok()) return model_bytes.status();
  if (static_cast<int64_t>(model_bytes->size()) != manifest->model_bytes ||
      Crc32(model_bytes->data(), model_bytes->size()) !=
          manifest->model_crc32) {
    return Status::IoError(StrFormat(
        "generation %lld model bytes do not match manifest hash",
        static_cast<long long>(generation)));
  }
  auto data_crc = ComputeDataDirCrc(dir + "/data");
  if (!data_crc.ok()) return data_crc.status();
  if (*data_crc != manifest->data_crc32) {
    return Status::IoError(StrFormat(
        "generation %lld data files do not match manifest hash",
        static_cast<long long>(generation)));
  }
  return Status::Ok();
}

StatusOr<LoadedGeneration> SnapshotRegistry::LoadGeneration(
    int64_t generation) const {
  const std::string dir = GenerationDir(generation);
  auto manifest = ReadManifest(generation);
  if (!manifest.ok()) return manifest.status();
  auto dataset = LoadOpenKeDataset(dir + "/data", manifest->dataset_name);
  if (!dataset.ok()) return dataset.status();
  // The OpenKE layout stores explicit dense ids, so the reloaded vocab is
  // id-identical to the one the model was trained against; the shape check
  // below catches any divergence anyway.
  ModelStore store(dir);
  auto model = store.Load("model");
  if (!model.ok()) return model.status();
  if ((*model)->num_entities() != dataset->num_entities() ||
      (*model)->num_relations() != dataset->num_relations()) {
    return Status::IoError(StrFormat(
        "generation %lld model shape (%d entities, %d relations) does not "
        "match its dataset (%d, %d)",
        static_cast<long long>(generation), (*model)->num_entities(),
        (*model)->num_relations(), dataset->num_entities(),
        dataset->num_relations()));
  }
  LoadedGeneration loaded;
  loaded.manifest = std::move(*manifest);
  loaded.dataset = std::move(*dataset);
  loaded.model = std::move(*model);
  return loaded;
}

bool SnapshotRegistry::SweepAside(const std::string& path, const char* why) {
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return false;
  // Recovery must make progress even when failpoints are armed, so the
  // sweep uses the filesystem directly rather than the fault-injecting
  // helpers.
  fs::create_directories(QuarantineDir(), ec);
  const std::string base =
      QuarantineDir() + "/" + fs::path(path).filename().string();
  std::string target = base;
  for (int k = 1; fs::exists(target, ec); ++k) {
    target = base + StrFormat(".%d", k);
  }
  fs::rename(path, target, ec);
  if (ec) {
    fs::remove_all(path, ec);
    LogWarning("snapshot: removed %s (%s)", path.c_str(), why);
  } else {
    LogWarning("snapshot: moved %s aside to %s (%s)", path.c_str(),
               target.c_str(), why);
  }
  return true;
}

Status SnapshotRegistry::Recover() {
  KGC_RETURN_IF_ERROR(MakeDirectories(root_));

  // Inventory the root: generation dirs and staging leftovers.
  std::vector<int64_t> generations;
  std::vector<std::string> staging_dirs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 8 && name.compare(name.size() - 8, 8, ".staging") == 0) {
      staging_dirs.push_back(entry.path().string());
      continue;
    }
    if (name.rfind("gen-", 0) == 0) {
      char* end = nullptr;
      const long long parsed = std::strtoll(name.c_str() + 4, &end, 10);
      if (end != nullptr && *end == '\0') generations.push_back(parsed);
    }
  }
  std::sort(generations.begin(), generations.end());

  // Where does CURRENT claim to point?
  int64_t desired = -1;
  bool pointer_present = false;
  bool pointer_valid = false;
  if (FileExists(CurrentPath())) {
    pointer_present = true;
    auto text = ReadFileToString(CurrentPath());
    if (text.ok()) {
      auto pointer = ParseCurrentPointer(*text);
      if (pointer.ok()) {
        desired = pointer->generation;
        pointer_valid =
            ValidateGeneration(desired, &pointer->manifest_crc32).ok();
        if (!pointer_valid) {
          LogWarning("snapshot: CURRENT points at generation %lld but it "
                     "fails validation",
                     static_cast<long long>(desired));
        }
      }
    }
  }

  // Fall back to the newest intact generation when the pointer is missing
  // or damaged.
  int64_t chosen = pointer_valid ? desired : -1;
  if (chosen < 0) {
    for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
      if (ValidateGeneration(*it, nullptr).ok()) {
        chosen = *it;
        break;
      }
    }
  }

  const bool needs_repair =
      (pointer_present && (!pointer_valid || desired != chosen)) ||
      (!pointer_present && chosen >= 0);
  if (needs_repair) {
    recovered_ = true;
    if (chosen >= 0) {
      auto manifest_text =
          ReadFileToString(GenerationDir(chosen) + "/manifest.json");
      if (!manifest_text.ok()) return manifest_text.status();
      CurrentPointer pointer;
      pointer.generation = chosen;
      pointer.manifest_crc32 =
          Crc32(manifest_text->data(), manifest_text->size());
      KGC_RETURN_IF_ERROR(WriteStringToFile(
          CurrentPath(), RenderCurrentPointer(pointer) + "\n"));
      LogWarning("snapshot: recovered CURRENT -> generation %lld",
                 static_cast<long long>(chosen));
    } else {
      fs::remove(CurrentPath(), ec);
      LogWarning("snapshot: no intact generation; registry reset to empty");
    }
    obs::Registry::Get().GetCounter(obs::kSnapshotRecoveries).Increment();
  }

  // Sweep in-flight leftovers: staging dirs and any generation beyond the
  // chosen one (unreachable — its publish never committed, or its CURRENT
  // flip was lost). Replay rebuilds them under the same numbers, which is
  // what keeps recovery bit-deterministic.
  for (const std::string& staging : staging_dirs) {
    if (SweepAside(staging, "orphan staging dir")) ++orphans_swept_;
  }
  for (int64_t generation : generations) {
    if (generation > chosen) {
      if (SweepAside(GenerationDir(generation), "unreachable generation")) {
        ++orphans_swept_;
      }
    }
  }
  if (orphans_swept_ > 0) {
    obs::Registry::Get()
        .GetCounter(obs::kSnapshotOrphansSwept)
        .Add(static_cast<uint64_t>(orphans_swept_));
  }

  if (chosen >= 0) {
    auto loaded = LoadGeneration(chosen);
    if (!loaded.ok()) return loaded.status();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ =
          std::make_shared<const LoadedGeneration>(std::move(*loaded));
    }
    obs::Registry::Get()
        .GetGauge(obs::kSnapshotCurrentGeneration)
        .Set(static_cast<double>(chosen));
  }
  return Status::Ok();
}

void SnapshotRegistry::AppendRotationLog(const SnapshotManifest& manifest) {
  // Advisory audit trail: appended after the commit point, never read back
  // for recovery, so failures only warn.
  std::FILE* log = std::fopen(RotationLogPath().c_str(), "ab");
  if (log == nullptr) {
    LogWarning("snapshot: cannot append rotation.log");
    return;
  }
  const std::string line = RenderManifest(manifest) + "\n";
  std::fputs(line.c_str(), log);
  std::fflush(log);
  std::fclose(log);
}

Status SnapshotRegistry::RefreshFromDisk() const {
  // Mid-rotation, CURRENT passes through transient states another process
  // can observe: absent (between unlink and the atomic-rename landing on
  // some filesystems), half-written by a torn write, or pointing at a
  // generation whose directory rename has not landed. Each is retryable;
  // five attempts with 1ms * 2^n backoff outlasts any healthy rotation.
  constexpr int kMaxAttempts = 5;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt > 0) {
      obs::Registry::Get()
          .GetCounter(obs::kSnapshotRepinRetries)
          .Increment();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(int64_t{1} << (attempt - 1)));
    }
    auto text = ReadFileToString(CurrentPath());
    if (!text.ok()) {
      if (text.status().code() == StatusCode::kNotFound) {
        // Empty registry — or a rotation's unlink/rename window. If a
        // generation is already live in memory, keep serving it; an empty
        // registry stays empty either way.
        return Status::Ok();
      }
      last = text.status();
      continue;
    }
    auto pointer = ParseCurrentPointer(*text);
    if (!pointer.ok()) {
      last = pointer.status();  // torn or garbage CURRENT: retry
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const int64_t in_memory =
          current_ == nullptr ? -1 : current_->manifest.generation;
      if (pointer->generation == in_memory) return Status::Ok();
    }
    Status valid =
        ValidateGeneration(pointer->generation, &pointer->manifest_crc32);
    if (!valid.ok()) {
      last = valid;
      continue;
    }
    auto loaded = LoadGeneration(pointer->generation);
    if (!loaded.ok()) {
      last = loaded.status();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = std::make_shared<const LoadedGeneration>(std::move(*loaded));
    }
    obs::Registry::Get()
        .GetGauge(obs::kSnapshotCurrentGeneration)
        .Set(static_cast<double>(pointer->generation));
    return Status::Ok();
  }
  return last;
}

bool SnapshotReader::Repin() {
  // Pick up rotations from other processes first; on persistent failure
  // (registry root vanished, CURRENT corrupt beyond the retry budget) the
  // in-memory generation keeps serving and the pin simply does not move.
  Status refreshed = registry_->RefreshFromDisk();
  if (!refreshed.ok()) {
    LogWarning("snapshot: repin refresh failed, keeping generation %lld: %s",
               static_cast<long long>(generation_number()),
               refreshed.ToString().c_str());
  }
  if (pinned_ != nullptr &&
      registry_->current_generation() == pinned_->manifest.generation) {
    return false;
  }
  std::shared_ptr<const LoadedGeneration> next = registry_->current();
  if (next == pinned_) return false;
  Stopwatch watch;
  pinned_ = std::move(next);
  obs::Registry::Get().GetCounter(obs::kSnapshotReaderSwaps).Increment();
  obs::Registry::Get()
      .GetDurationHistogram(obs::kSnapshotReaderSwapSeconds)
      .Observe(watch.ElapsedSeconds());
  return true;
}

}  // namespace kgc
