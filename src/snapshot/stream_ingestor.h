// Streaming triple ingestion: turns batches of raw triple lines into
// validated, trained, audited, regression-gated snapshot generations.
//
// Per batch (see DESIGN.md "Snapshot lifecycle" for the full state
// machine):
//
//   1. Validate every line through DatasetValidator. Strict mode
//      quarantines the whole batch on the first bad line (payload +
//      reason land in <root>/quarantine/ for post-mortems); lenient mode
//      (IngestOptions::drop_bad_lines) drops and counts bad lines into
//      the manifest's rejected_lines field.
//   2. Deduplicate the delta against the live generation's triples (and
//      within the batch). An empty delta publishes nothing.
//   3. Warm-start incremental training from the parent generation's model
//      when the vocabulary shape is unchanged; a batch that grew the
//      vocab forces a cold start (kgc.snapshot.cold_starts). The training
//      seed mixes the stream seed with the generation number so a
//      replayed batch retrains bit-identically.
//   4. Re-run the redundancy detectors incrementally: only relations the
//      delta touched are compared (against all relations), and the counts
//      land in the manifest.
//   5. Gate on the valid-split filtered MRR: the candidate publishes only
//      if it does not regress more than `epsilon` below the parent's;
//      otherwise it is rolled back through the suite-supervisor
//      quarantine path with the verdict recorded.
//
// Replay safety: batches carry a monotone index; after a crash the stream
// is replayed from the start and IngestBatch skips every batch whose index
// the live generation already covers, so recovery converges to the same
// generation chain (and bit-identical scores) as an uninterrupted run.

#ifndef KGC_SNAPSHOT_STREAM_INGESTOR_H_
#define KGC_SNAPSHOT_STREAM_INGESTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/dataset_validator.h"
#include "models/model.h"
#include "models/trainer.h"
#include "snapshot/snapshot_registry.h"
#include "util/status.h"

namespace kgc {

struct StreamIngestorOptions {
  /// Line validation. strict=true quarantines whole batches on any bad
  /// line; otherwise drop_bad_lines is forced on and rejects are counted.
  IngestOptions ingest;
  ModelType model_type = ModelType::kTransE;
  /// Epochs per incremental round (bootstrap uses bootstrap_epochs if > 0).
  int epochs = 20;
  int bootstrap_epochs = 0;
  uint64_t train_seed = 13;
  /// Publish gate: candidate publishes iff
  /// valid_fmrr >= parent_valid_fmrr - epsilon. A negative epsilon forces
  /// rollback deterministically (used by the chaos harness).
  double epsilon = 0.05;
  /// Every valid_every-th fresh triple joins the valid split instead of
  /// train, so the gate keeps measuring new data; <= 0 sends all to train.
  int valid_every = 8;
  /// Ranker threads for the validation sweep (0 = KGC_THREADS default).
  int threads = 0;
};

/// Outcome of one batch (also recorded in the generation manifest).
struct IngestReport {
  /// "published" | "rolled_back" | "quarantined" | "empty" | "skipped".
  std::string outcome;
  /// Generation published or rolled back; -1 when none was staged.
  int64_t generation = -1;
  size_t delta_triples = 0;
  size_t rejected_lines = 0;
  double valid_mrr = 0.0;
  double parent_valid_mrr = 0.0;
  std::string detail;

  bool published() const { return outcome == "published"; }
};

class StreamIngestor {
 public:
  /// The registry must outlive the ingestor.
  StreamIngestor(SnapshotRegistry& registry, StreamIngestorOptions options);

  /// Publishes generation 0 from a full dataset. The registry must be
  /// empty; the bootstrap is not regression-gated (there is no parent).
  StatusOr<IngestReport> Bootstrap(const Dataset& base);

  /// Ingests one batch of raw "head<TAB>relation<TAB>tail" lines. `label`
  /// names the batch in manifests and quarantine files; `batch_index` is
  /// its monotone stream position (replay skips covered indexes).
  StatusOr<IngestReport> IngestBatch(const std::vector<std::string>& lines,
                                     const std::string& label,
                                     int64_t batch_index);

  const StreamIngestorOptions& options() const { return options_; }

 private:
  /// Trains, audits, hashes and stages a candidate into the staging dir;
  /// fills the manifest's training/audit/hash fields.
  Status StageCandidate(Dataset& candidate, bool warm_start,
                        SnapshotManifest& manifest);
  /// Moves the rejected batch payload + reason into quarantine/.
  void QuarantineBatch(const std::vector<std::string>& lines,
                       const std::string& label, const Status& why);
  /// Counts detector verdicts over the relations the delta touched.
  void AuditDelta(const Dataset& candidate,
                  const std::vector<RelationId>& touched,
                  SnapshotManifest& manifest) const;

  SnapshotRegistry* registry_;
  StreamIngestorOptions options_;
  /// Model trained by the last StageCandidate, handed to Publish (or
  /// dropped on rollback).
  std::unique_ptr<KgeModel> staged_model_;
};

}  // namespace kgc

#endif  // KGC_SNAPSHOT_STREAM_INGESTOR_H_
