#include "snapshot/manifest.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "obs/json.h"
#include "util/string_util.h"

namespace kgc {
namespace {

void AppendString(std::string& out, const char* key,
                  const std::string& value) {
  out += StrFormat(",\"%s\":\"%s\"", key, obs::JsonEscape(value).c_str());
}

void AppendInt(std::string& out, const char* key, int64_t value) {
  out += StrFormat(",\"%s\":%lld", key, static_cast<long long>(value));
}

void AppendUint(std::string& out, const char* key, uint64_t value) {
  out += StrFormat(",\"%s\":%llu", key, static_cast<unsigned long long>(value));
}

// %.17g: enough digits that the double round-trips bit-exactly, which the
// chaos harness relies on when diffing a recovered registry against a
// clean run.
void AppendDouble(std::string& out, const char* key, double value) {
  out += StrFormat(",\"%s\":%.17g", key, value);
}

// Minimal scanner for the flat one-line JSON objects this module itself
// renders: string and number values only, no nesting. Unknown keys are
// collected like any other so newer writers stay readable.
class FlatJsonScanner {
 public:
  explicit FlatJsonScanner(const std::string& text) : text_(text) {}

  /// Scans the whole object into key -> raw value (strings unescaped).
  StatusOr<std::map<std::string, std::string>> Scan() {
    std::map<std::string, std::string> fields;
    SkipSpace();
    if (!Consume('{')) return Malformed("expected '{'");
    SkipSpace();
    if (Consume('}')) return fields;
    while (true) {
      SkipSpace();
      auto key = ScanString();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (!Consume(':')) return Malformed("expected ':'");
      SkipSpace();
      auto value = ScanValue();
      if (!value.ok()) return value.status();
      fields[*key] = *value;
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return fields;
      return Malformed("expected ',' or '}'");
    }
  }

 private:
  Status Malformed(const std::string& detail) const {
    return Status::InvalidArgument(
        StrFormat("bad manifest JSON at byte %zu: %s", pos_, detail.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ScanString() {
    if (!Consume('"')) return Malformed("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Malformed("truncated \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Malformed("bad \\u digit");
          }
          // JsonEscape only emits \u00xx for control bytes; anything wider
          // is degraded to '?' rather than attempting full UTF-16.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Malformed("unknown escape");
      }
    }
    return Malformed("unterminated string");
  }

  StatusOr<std::string> ScanValue() {
    if (pos_ < text_.size() && text_[pos_] == '"') return ScanString();
    // Number / true / false: take the token up to the next delimiter.
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Malformed("empty value");
    return text_.substr(start, pos_ - start);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

int64_t FieldInt(const std::map<std::string, std::string>& fields,
                 const char* key, int64_t fallback = 0) {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  return static_cast<int64_t>(std::strtoll(it->second.c_str(), nullptr, 10));
}

uint64_t FieldUint(const std::map<std::string, std::string>& fields,
                   const char* key) {
  auto it = fields.find(key);
  if (it == fields.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double FieldDouble(const std::map<std::string, std::string>& fields,
                   const char* key) {
  auto it = fields.find(key);
  if (it == fields.end()) return 0.0;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string FieldString(const std::map<std::string, std::string>& fields,
                        const char* key) {
  auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

}  // namespace

std::string RenderManifest(const SnapshotManifest& m) {
  std::string out = "{\"schema\":\"";
  out += kSnapshotManifestSchema;
  out += "\"";
  AppendInt(out, "generation", m.generation);
  AppendInt(out, "parent", m.parent);
  AppendString(out, "status", m.status);
  AppendString(out, "source_batch", m.source_batch);
  AppendInt(out, "source_batch_index", m.source_batch_index);
  AppendString(out, "dataset_name", m.dataset_name);
  AppendInt(out, "num_entities", m.num_entities);
  AppendInt(out, "num_relations", m.num_relations);
  AppendInt(out, "train_triples", m.train_triples);
  AppendInt(out, "valid_triples", m.valid_triples);
  AppendInt(out, "test_triples", m.test_triples);
  AppendInt(out, "delta_triples", m.delta_triples);
  AppendInt(out, "rejected_lines", m.rejected_lines);
  AppendInt(out, "warm_start", m.warm_start ? 1 : 0);
  AppendInt(out, "epochs", m.epochs);
  AppendUint(out, "train_seed", m.train_seed);
  AppendString(out, "model", m.model);
  AppendUint(out, "model_crc32", m.model_crc32);
  AppendInt(out, "model_bytes", m.model_bytes);
  AppendUint(out, "data_crc32", m.data_crc32);
  AppendInt(out, "relations_audited", m.relations_audited);
  AppendInt(out, "duplicate_pairs", m.duplicate_pairs);
  AppendInt(out, "reverse_pairs", m.reverse_pairs);
  AppendInt(out, "symmetric_relations", m.symmetric_relations);
  AppendInt(out, "cartesian_relations", m.cartesian_relations);
  AppendDouble(out, "valid_mrr", m.valid_mrr);
  AppendDouble(out, "parent_valid_mrr", m.parent_valid_mrr);
  AppendDouble(out, "epsilon", m.epsilon);
  AppendString(out, "rollback_reason", m.rollback_reason);
  out += "}";
  return out;
}

StatusOr<SnapshotManifest> ParseManifest(const std::string& json) {
  FlatJsonScanner scanner(json);
  auto fields = scanner.Scan();
  if (!fields.ok()) return fields.status();
  if (FieldString(*fields, "schema") != kSnapshotManifestSchema) {
    return Status::InvalidArgument("not a " +
                                   std::string(kSnapshotManifestSchema) +
                                   " manifest");
  }
  SnapshotManifest m;
  m.generation = FieldInt(*fields, "generation");
  m.parent = FieldInt(*fields, "parent", -1);
  m.status = FieldString(*fields, "status");
  m.source_batch = FieldString(*fields, "source_batch");
  m.source_batch_index = FieldInt(*fields, "source_batch_index", -1);
  m.dataset_name = FieldString(*fields, "dataset_name");
  m.num_entities = FieldInt(*fields, "num_entities");
  m.num_relations = FieldInt(*fields, "num_relations");
  m.train_triples = FieldInt(*fields, "train_triples");
  m.valid_triples = FieldInt(*fields, "valid_triples");
  m.test_triples = FieldInt(*fields, "test_triples");
  m.delta_triples = FieldInt(*fields, "delta_triples");
  m.rejected_lines = FieldInt(*fields, "rejected_lines");
  m.warm_start = FieldInt(*fields, "warm_start") != 0;
  m.epochs = FieldInt(*fields, "epochs");
  m.train_seed = FieldUint(*fields, "train_seed");
  m.model = FieldString(*fields, "model");
  m.model_crc32 = static_cast<uint32_t>(FieldUint(*fields, "model_crc32"));
  m.model_bytes = FieldInt(*fields, "model_bytes");
  m.data_crc32 = static_cast<uint32_t>(FieldUint(*fields, "data_crc32"));
  m.relations_audited = FieldInt(*fields, "relations_audited");
  m.duplicate_pairs = FieldInt(*fields, "duplicate_pairs");
  m.reverse_pairs = FieldInt(*fields, "reverse_pairs");
  m.symmetric_relations = FieldInt(*fields, "symmetric_relations");
  m.cartesian_relations = FieldInt(*fields, "cartesian_relations");
  m.valid_mrr = FieldDouble(*fields, "valid_mrr");
  m.parent_valid_mrr = FieldDouble(*fields, "parent_valid_mrr");
  m.epsilon = FieldDouble(*fields, "epsilon");
  m.rollback_reason = FieldString(*fields, "rollback_reason");
  return m;
}

std::string RenderCurrentPointer(const CurrentPointer& current) {
  std::string out = "{\"schema\":\"";
  out += kSnapshotCurrentSchema;
  out += "\"";
  AppendInt(out, "generation", current.generation);
  AppendUint(out, "manifest_crc32", current.manifest_crc32);
  out += "}";
  return out;
}

StatusOr<CurrentPointer> ParseCurrentPointer(const std::string& json) {
  FlatJsonScanner scanner(json);
  auto fields = scanner.Scan();
  if (!fields.ok()) return fields.status();
  if (FieldString(*fields, "schema") != kSnapshotCurrentSchema) {
    return Status::InvalidArgument("not a " +
                                   std::string(kSnapshotCurrentSchema) +
                                   " pointer");
  }
  CurrentPointer current;
  current.generation = FieldInt(*fields, "generation", -1);
  current.manifest_crc32 =
      static_cast<uint32_t>(FieldUint(*fields, "manifest_crc32"));
  return current;
}

}  // namespace kgc
