// Snapshot lifecycle: an append-only directory of immutable model
// generations with a single atomically-replaced CURRENT pointer, crash-safe
// at every step, plus zero-downtime reader attachment.
//
// On-disk layout under one registry root:
//
//   <root>/CURRENT            JSON pointer (kgc.snapshot_current.v1) to the
//                             live generation + CRC of its manifest
//   <root>/rotation.log       JSONL: one manifest per publish/rollback
//                             (advisory audit trail, rebuilt state never
//                             depends on it)
//   <root>/gen-000042/        one immutable generation:
//     manifest.json             kgc.snapshot_manifest.v1 (atomic write)
//     model.kgcm                trained model (CRC-32 footer)
//     data/                     dataset in OpenKE layout (explicit dense
//                               ids, so model rows stay aligned with vocab
//                               ids across save/reload)
//   <root>/gen-000043.staging/  in-flight candidate (swept on recovery)
//   <root>/quarantine/          rejected batches, rolled-back candidates,
//                               and corrupt generations moved aside
//
// Rotation protocol (each step is a named FaultInjector failpoint, so the
// chaos harness can kill the rotator at every arrow):
//
//   BeginGeneration  -> mkdir gen-N.staging            [rotate:stage]
//   ...ingestor writes model.kgcm + data/ into staging...
//   Publish          -> write staging/manifest.json    [rotate:manifest]
//                    -> rename staging -> gen-N        [rotate:rename]
//                    -> atomic-replace CURRENT         [publish:current]   <- commit point
//                    -> append rotation.log            [publish:log]      (best effort)
//   Rollback         -> quarantine staged artifacts    [rollback:quarantine]
//                    -> move staging -> quarantine/    [rollback:cleanup]
//                    -> append rotation.log            [rollback:record]
//
// A crash before the CURRENT flip leaves the old generation live and an
// orphan staging/generation directory; Open() sweeps those into quarantine
// (kgc.snapshot.orphans_swept) and the stream replays the batch, reusing
// the same generation number — recovery is deterministic, so the chaos
// harness can assert bit-identical scores against an uninterrupted run. A
// crash after the flip leaves the new generation fully durable; the append
// to rotation.log is advisory and its loss is tolerated.
//
// Readers never block rotation: the live generation is held behind a
// refcounted shared_ptr, SnapshotReader pins it, and Repin() hops to the
// newest generation between queries. A pinned old generation stays valid
// (and its files untouched) until the last reader lets go.

#ifndef KGC_SNAPSHOT_SNAPSHOT_REGISTRY_H_
#define KGC_SNAPSHOT_SNAPSHOT_REGISTRY_H_

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>

#include "kg/dataset.h"
#include "models/model.h"
#include "snapshot/manifest.h"
#include "util/status.h"

namespace kgc {

/// One generation materialized in memory: provenance + data + model.
/// Immutable once published; shared by the registry and any readers.
struct LoadedGeneration {
  SnapshotManifest manifest;
  Dataset dataset;
  std::unique_ptr<KgeModel> model;
};

class SnapshotRegistry {
 public:
  /// Opens (creating if needed) the registry at `root`, running crash
  /// recovery first: validates the CURRENT pointer against the generation
  /// it names (manifest CRC, model CRC footer, data hash), falls back to
  /// the newest intact generation when the pointed one is damaged, sweeps
  /// staging leftovers and unreachable generations into quarantine/, and
  /// loads the live generation into memory.
  static StatusOr<std::unique_ptr<SnapshotRegistry>> Open(
      const std::string& root);

  const std::string& root() const { return root_; }

  /// Live generation number; -1 when the registry is empty.
  int64_t current_generation() const;

  /// The live generation (null when empty). The returned pointer pins the
  /// generation: it stays valid across any number of later rotations.
  std::shared_ptr<const LoadedGeneration> current() const;

  /// Recovery evidence from Open (also counted in kgc.snapshot.*).
  int orphans_swept() const { return orphans_swept_; }
  bool recovered() const { return recovered_; }

  std::string GenerationDir(int64_t generation) const;
  std::string StagingDir(int64_t generation) const;
  std::string QuarantineDir() const { return root_ + "/quarantine"; }
  std::string CurrentPath() const { return root_ + "/CURRENT"; }
  std::string RotationLogPath() const { return root_ + "/rotation.log"; }

  /// Creates (wiping any leftover) the staging directory for `generation`.
  /// Failpoint: rotate:stage.
  Status BeginGeneration(int64_t generation);

  /// Publishes the staged generation described by `loaded` (whose
  /// artifacts the ingestor already wrote into StagingDir): manifest write
  /// -> dir rename -> CURRENT flip -> log append, then swaps the live
  /// in-memory generation. On error the registry still serves the old
  /// generation; leftover directories are swept by the next Open.
  Status Publish(std::shared_ptr<LoadedGeneration> loaded);

  /// Rolls back the staged generation: escalates its artifacts through the
  /// suite-supervisor quarantine path (harness QuarantineRecentArtifacts,
  /// evidence preserved as .corrupt files), moves the staging directory to
  /// quarantine/, and records the rolled_back manifest in rotation.log.
  /// `staged_since` bounds the escalation to artifacts written by this
  /// candidate.
  Status Rollback(const SnapshotManifest& manifest,
                  std::filesystem::file_time_type staged_since);

  /// Re-reads CURRENT and, when it names a generation other than the
  /// in-memory one (another process rotated, or this process restarted
  /// behind a writer), validates + loads it and swaps the live pointer.
  /// A racing rotation can surface transient failures — a missing,
  /// half-written, or unparseable CURRENT, or a generation whose rename
  /// has not landed yet — so each failure is retried with bounded
  /// exponential backoff (kgc.snapshot.repin_retries). On exhaustion the
  /// previous generation stays live and the last error is returned.
  Status RefreshFromDisk() const;

  /// Reads and validates a generation from disk (manifest -> data ->
  /// model, checking every content hash).
  StatusOr<LoadedGeneration> LoadGeneration(int64_t generation) const;

  StatusOr<SnapshotManifest> ReadManifest(int64_t generation) const;

 private:
  explicit SnapshotRegistry(std::string root) : root_(std::move(root)) {}

  Status Recover();
  /// kOk if gen-N on disk is internally consistent; `expected_crc` (when
  /// non-null) additionally pins the manifest bytes to CURRENT.
  Status ValidateGeneration(int64_t generation,
                            const uint32_t* expected_crc) const;
  /// Moves a path into quarantine/ under a unique name (falls back to
  /// deleting it). Returns true if anything was moved or deleted.
  bool SweepAside(const std::string& path, const char* why);
  void AppendRotationLog(const SnapshotManifest& manifest);

  std::string root_;
  int orphans_swept_ = 0;
  bool recovered_ = false;

  mutable std::mutex mutex_;  // guards current_ swap vs reader pins
  mutable std::shared_ptr<const LoadedGeneration> current_;  // RefreshFromDisk
};

/// CRC-32 over the five OpenKE files of a generation's data/ directory, in
/// canonical order — the `data_crc32` manifest field. Shared by the
/// ingestor (manifest construction) and the registry (recovery
/// validation).
StatusOr<uint32_t> ComputeDataDirCrc(const std::string& data_dir);

/// A live-query handle: pins one generation so rotation can never swap a
/// model out from under a ranking sweep. Repin() hops to the newest
/// generation between queries — the zero-downtime hot swap.
class SnapshotReader {
 public:
  explicit SnapshotReader(const SnapshotRegistry& registry)
      : registry_(&registry), pinned_(registry.current()) {}

  /// The pinned generation (null if the registry was empty at pin time).
  const std::shared_ptr<const LoadedGeneration>& generation() const {
    return pinned_;
  }

  int64_t generation_number() const {
    return pinned_ == nullptr ? -1 : pinned_->manifest.generation;
  }

  /// Swaps to the registry's current generation. Returns true if the pin
  /// moved (counted in kgc.snapshot.reader_swaps / reader_swap_seconds).
  bool Repin();

 private:
  const SnapshotRegistry* registry_;
  std::shared_ptr<const LoadedGeneration> pinned_;
};

}  // namespace kgc

#endif  // KGC_SNAPSHOT_SNAPSHOT_REGISTRY_H_
