#include "rules/amie.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace kgc {

std::string Rule::ToString(const Vocab& vocab) const {
  switch (kind) {
    case RuleBodyKind::kSame:
      return StrFormat("%s(x,y) => %s(x,y)  [supp=%zu conf=%.2f pca=%.2f]",
                       vocab.RelationName(body1).c_str(),
                       vocab.RelationName(head).c_str(), support,
                       std_confidence, pca_confidence);
    case RuleBodyKind::kInverse:
      return StrFormat("%s(y,x) => %s(x,y)  [supp=%zu conf=%.2f pca=%.2f]",
                       vocab.RelationName(body1).c_str(),
                       vocab.RelationName(head).c_str(), support,
                       std_confidence, pca_confidence);
    case RuleBodyKind::kPath:
      return StrFormat(
          "%s(x,z) ^ %s(z,y) => %s(x,y)  [supp=%zu conf=%.2f pca=%.2f]",
          vocab.RelationName(body1).c_str(),
          vocab.RelationName(body2).c_str(),
          vocab.RelationName(head).c_str(), support, std_confidence,
          pca_confidence);
  }
  return "<invalid rule>";
}

namespace {

// Relations holding between each linked (h, t) pair.
using PairRelationIndex =
    std::unordered_map<uint64_t, std::vector<RelationId>>;

PairRelationIndex BuildPairRelationIndex(const TripleStore& train) {
  PairRelationIndex index;
  index.reserve(train.size());
  for (const Triple& t : train.triples()) {
    index[PackPair(t.head, t.tail)].push_back(t.relation);
  }
  return index;
}

// Finalizes confidence fields and applies thresholds; returns true if the
// rule survives.
bool FinalizeRule(const TripleStore& train, const AmieOptions& options,
                  size_t pca_body, Rule& rule) {
  const size_t head_size = train.RelationSize(rule.head);
  if (rule.support < options.min_support || rule.body_size == 0 ||
      head_size == 0) {
    return false;
  }
  rule.std_confidence =
      static_cast<double>(rule.support) / static_cast<double>(rule.body_size);
  rule.pca_confidence =
      pca_body > 0 ? static_cast<double>(rule.support) /
                         static_cast<double>(pca_body)
                   : 0.0;
  rule.head_coverage =
      static_cast<double>(rule.support) / static_cast<double>(head_size);
  if (rule.head_coverage < options.min_head_coverage) return false;
  const double confidence = options.use_pca_confidence ? rule.pca_confidence
                                                       : rule.std_confidence;
  return confidence >= options.min_confidence;
}

// A rule whose support has been counted but whose PCA denominator — a sweep
// over its body pairs — is still pending. `body_pairs` views storage that
// stays valid for the whole mining run (the TripleStore's CSR arrays or the
// path-body map's sorted key vectors).
struct RuleCandidate {
  Rule rule;
  PairSetView body_pairs;
};

}  // namespace

std::vector<Rule> MineRules(const TripleStore& train,
                            const AmieOptions& options) {
  DeadlinePhase deadline_phase("mine");
  obs::TraceSpan span("mine_rules");
  span.AddArgInt("relations", train.num_relations());
  span.AddArgInt("triples", static_cast<long long>(train.size()));
  const int32_t num_relations = train.num_relations();
  const PairRelationIndex pair_index = BuildPairRelationIndex(train);

  // --- Unary rules: r1(x,y) => rh(x,y) and r1(y,x) => rh(x,y). ------------
  // For each body relation count, via the pair index, how many of its pairs
  // (or reversed pairs) carry each other relation. Body relations are
  // statically sharded across threads; each shard emits candidates into its
  // own vector and the shards concatenate in order, reproducing the serial
  // ascending-body emission sequence exactly.
  const size_t num_bodies =
      num_relations > 0 ? static_cast<size_t>(num_relations) : size_t{0};
  std::vector<std::vector<RuleCandidate>> unary_local(static_cast<size_t>(
      std::max(PlannedShards(num_bodies, options.threads), 1)));
  ParallelFor(num_bodies, options.threads,
              [&](size_t begin, size_t end, int shard) {
    std::vector<RuleCandidate>& out = unary_local[static_cast<size_t>(shard)];
    for (size_t b = begin; b < end; ++b) {
      const RelationId body = static_cast<RelationId>(b);
      const PairSetView body_pairs = train.Pairs(body);
      if (body_pairs.size() < options.min_support) continue;
      std::unordered_map<RelationId, size_t> same_support;
      std::unordered_map<RelationId, size_t> inverse_support;
      for (uint64_t key : body_pairs) {
        auto it = pair_index.find(key);
        if (it != pair_index.end()) {
          for (RelationId rh : it->second) same_support[rh] += 1;
        }
        const auto [x, y] = UnpackPair(key);
        auto rit = pair_index.find(PackPair(y, x));
        if (rit != pair_index.end()) {
          for (RelationId rh : rit->second) inverse_support[rh] += 1;
        }
      }
      auto emit = [&](RuleBodyKind kind, RelationId head, size_t support) {
        if (kind == RuleBodyKind::kSame && head == body) return;  // tautology
        if (support < options.min_support) return;
        RuleCandidate candidate;
        candidate.rule.kind = kind;
        candidate.rule.body1 = body;
        candidate.rule.head = head;
        candidate.rule.support = support;
        candidate.rule.body_size = body_pairs.size();
        candidate.body_pairs = body_pairs;
        out.push_back(candidate);
      };
      for (const auto& [head, support] : same_support) {
        emit(RuleBodyKind::kSame, head, support);
      }
      for (const auto& [head, support] : inverse_support) {
        emit(RuleBodyKind::kInverse, head, support);
      }
    }
  });
  std::vector<RuleCandidate> candidates;
  for (std::vector<RuleCandidate>& local : unary_local) {
    candidates.insert(candidates.end(), local.begin(), local.end());
  }
  // Candidate rounds are the miner's deadline boundaries: a timeout lands
  // between rounds, never inside a sharded sweep. Rules are mined from the
  // training split alone, so a retry simply re-mines.
  PhaseBoundary("mine_unary_candidates");

  // --- Path rules: r1(x,z) ^ r2(z,y) => rh(x,y). --------------------------
  // Enumerate 2-hop body pairs through each mediator entity; bodies are
  // keyed by (r1, r2). The enumeration stays serial: the global
  // max_path_pairs cap makes which pairs get enumerated order-dependent, so
  // sharding it would break the determinism contract. The expensive part —
  // the per-candidate PCA sweep — joins the parallel evaluation below.
  struct PathBody {
    std::unordered_set<uint64_t> pairs;
    std::unordered_map<RelationId, size_t> support;
    // `pairs` dumped and sorted once enumeration finishes, so candidates can
    // hold a PairSetView over stable storage.
    std::vector<uint64_t> sorted_pairs;
  };
  std::unordered_map<uint64_t, PathBody> bodies;
  size_t total_pairs = 0;

  // Per-entity adjacency. in_edges[z] = (r1, x) with (x, r1, z);
  // out_edges[z] = (r2, y) with (z, r2, y).
  std::vector<std::vector<std::pair<RelationId, EntityId>>> in_edges(
      static_cast<size_t>(train.num_entities()));
  std::vector<std::vector<std::pair<RelationId, EntityId>>> out_edges(
      static_cast<size_t>(train.num_entities()));
  for (const Triple& t : train.triples()) {
    in_edges[static_cast<size_t>(t.tail)].push_back({t.relation, t.head});
    out_edges[static_cast<size_t>(t.head)].push_back({t.relation, t.tail});
  }
  constexpr size_t kMaxCombosPerEntity = 20'000;
  for (EntityId z = 0; z < train.num_entities(); ++z) {
    const auto& in = in_edges[static_cast<size_t>(z)];
    const auto& out = out_edges[static_cast<size_t>(z)];
    if (in.empty() || out.empty()) continue;
    if (in.size() * out.size() > kMaxCombosPerEntity) continue;  // hub cap
    if (total_pairs > options.max_path_pairs) break;
    for (const auto& [r1, x] : in) {
      for (const auto& [r2, y] : out) {
        PathBody& body =
            bodies[(static_cast<uint64_t>(static_cast<uint32_t>(r1)) << 32) |
                   static_cast<uint32_t>(r2)];
        if (!body.pairs.insert(PackPair(x, y)).second) continue;
        ++total_pairs;
        auto it = pair_index.find(PackPair(x, y));
        if (it != pair_index.end()) {
          for (RelationId rh : it->second) body.support[rh] += 1;
        }
      }
    }
  }
  for (auto& [key, body] : bodies) {
    const RelationId r1 = static_cast<RelationId>(key >> 32);
    const RelationId r2 = static_cast<RelationId>(key & 0xffffffffULL);
    body.sorted_pairs.assign(body.pairs.begin(), body.pairs.end());
    std::sort(body.sorted_pairs.begin(), body.sorted_pairs.end());
    for (const auto& [head, support] : body.support) {
      if (support < options.min_support) continue;
      RuleCandidate candidate;
      candidate.rule.kind = RuleBodyKind::kPath;
      candidate.rule.body1 = r1;
      candidate.rule.body2 = r2;
      candidate.rule.head = head;
      candidate.rule.support = support;
      candidate.rule.body_size = body.sorted_pairs.size();
      candidate.body_pairs = PairSetView::FromKeys(body.sorted_pairs);
      candidates.push_back(candidate);
    }
  }

  PhaseBoundary("mine_path_candidates");

  // --- Support/confidence evaluation, sharded over candidates. ------------
  // The PCA denominator — body pairs whose x has some head-relation fact —
  // is the dominant cost and is independent per candidate. Each candidate
  // evaluates into its own slot; surviving rules compact in candidate order,
  // which is exactly the order the serial loop pushed them.
  std::vector<Rule> finalized(candidates.size());
  std::vector<uint8_t> survived(candidates.size(), 0);
  ParallelFor(candidates.size(), options.threads,
              [&](size_t begin, size_t end, int /*shard*/) {
    for (size_t i = begin; i < end; ++i) {
      const RuleCandidate& candidate = candidates[i];
      const EntitySetView head_subjects = train.Subjects(candidate.rule.head);
      size_t pca_body = 0;
      for (uint64_t key : candidate.body_pairs) {
        const auto [bx, by] = UnpackPair(key);
        const EntityId x =
            candidate.rule.kind == RuleBodyKind::kInverse ? by : bx;
        if (head_subjects.contains(x)) ++pca_body;
      }
      Rule rule = candidate.rule;
      if (FinalizeRule(train, options, pca_body, rule)) {
        finalized[i] = rule;
        survived[i] = 1;
      }
    }
  });
  std::vector<Rule> rules;
  for (size_t i = 0; i < finalized.size(); ++i) {
    if (survived[i]) rules.push_back(finalized[i]);
  }
  // Counted after the sharded evaluation so both totals are shard-plan
  // independent (candidates are emitted in a deterministic order).
  static obs::Counter& candidates_counter =
      obs::Registry::Get().GetCounter(obs::kAmieCandidates);
  static obs::Counter& kept_counter =
      obs::Registry::Get().GetCounter(obs::kAmieRulesKept);
  candidates_counter.Add(candidates.size());
  kept_counter.Add(rules.size());

  std::sort(rules.begin(), rules.end(), [&](const Rule& a, const Rule& b) {
    const double ca = options.use_pca_confidence ? a.pca_confidence
                                                 : a.std_confidence;
    const double cb = options.use_pca_confidence ? b.pca_confidence
                                                 : b.std_confidence;
    if (ca != cb) return ca > cb;
    return a.support > b.support;
  });
  return rules;
}

RulePredictor::RulePredictor(std::vector<Rule> rules,
                             const TripleStore& train,
                             const AmieOptions& options)
    : rules_(std::move(rules)),
      train_(train),
      options_(options),
      by_head_(static_cast<size_t>(train.num_relations())) {
  for (const Rule& rule : rules_) {
    KGC_CHECK_GE(rule.head, 0);
    KGC_CHECK_LT(rule.head, train.num_relations());
    by_head_[static_cast<size_t>(rule.head)].push_back(&rule);
  }
  for (auto& bucket : by_head_) {
    std::sort(bucket.begin(), bucket.end(),
              [this](const Rule* a, const Rule* b) {
                return Confidence(*a) > Confidence(*b);
              });
  }
}

const std::vector<const Rule*>& RulePredictor::RulesForHead(
    RelationId r) const {
  static const std::vector<const Rule*>* empty =
      new std::vector<const Rule*>();
  if (r < 0 || static_cast<size_t>(r) >= by_head_.size()) return *empty;
  return by_head_[static_cast<size_t>(r)];
}

void RulePredictor::ScoreTails(EntityId h, RelationId r,
                               std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  std::vector<float> best(out.size(), 0.0f);
  std::vector<int> count(out.size(), 0);
  auto credit = [&](EntityId y, double confidence) {
    const size_t k = static_cast<size_t>(y);
    best[k] = std::max(best[k], static_cast<float>(confidence));
    count[k] = std::min(count[k] + 1, 1000);
  };
  for (const Rule* rule : RulesForHead(r)) {
    const double confidence = Confidence(*rule);
    switch (rule->kind) {
      case RuleBodyKind::kSame:
        for (EntityId y : train_.Tails(h, rule->body1)) credit(y, confidence);
        break;
      case RuleBodyKind::kInverse:
        for (EntityId y : train_.Heads(rule->body1, h)) credit(y, confidence);
        break;
      case RuleBodyKind::kPath:
        for (EntityId z : train_.Tails(h, rule->body1)) {
          for (EntityId y : train_.Tails(z, rule->body2)) {
            credit(y, confidence);
          }
        }
        break;
    }
  }
  for (size_t k = 0; k < out.size(); ++k) {
    // Max confidence, ties broken by the number of generating rules.
    out[k] = best[k] + static_cast<float>(count[k]) * 1e-6f;
  }
}

void RulePredictor::ScoreHeads(RelationId r, EntityId t,
                               std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  std::vector<float> best(out.size(), 0.0f);
  std::vector<int> count(out.size(), 0);
  auto credit = [&](EntityId x, double confidence) {
    const size_t k = static_cast<size_t>(x);
    best[k] = std::max(best[k], static_cast<float>(confidence));
    count[k] = std::min(count[k] + 1, 1000);
  };
  for (const Rule* rule : RulesForHead(r)) {
    const double confidence = Confidence(*rule);
    switch (rule->kind) {
      case RuleBodyKind::kSame:
        for (EntityId x : train_.Heads(rule->body1, t)) credit(x, confidence);
        break;
      case RuleBodyKind::kInverse:
        for (EntityId x : train_.Tails(t, rule->body1)) credit(x, confidence);
        break;
      case RuleBodyKind::kPath:
        for (EntityId z : train_.Heads(rule->body2, t)) {
          for (EntityId x : train_.Heads(rule->body1, z)) {
            credit(x, confidence);
          }
        }
        break;
    }
  }
  for (size_t k = 0; k < out.size(); ++k) {
    out[k] = best[k] + static_cast<float>(count[k]) * 1e-6f;
  }
}

}  // namespace kgc
