// Horn rule representation for observed-feature link prediction.

#ifndef KGC_RULES_RULE_H_
#define KGC_RULES_RULE_H_

#include <string>

#include "kg/triple.h"
#include "kg/vocab.h"

namespace kgc {

/// Body shape of a mined rule. Variables follow AMIE's convention with head
/// atom head_relation(x, y).
enum class RuleBodyKind {
  /// r1(x, y) => head(x, y)  -- duplicate / subsumption rule.
  kSame = 0,
  /// r1(y, x) => head(x, y)  -- inverse rule.
  kInverse = 1,
  /// r1(x, z) ^ r2(z, y) => head(x, y)  -- composition (path) rule.
  kPath = 2,
};

/// A closed Horn rule with up to two body atoms.
struct Rule {
  RuleBodyKind kind = RuleBodyKind::kSame;
  RelationId body1 = -1;
  /// Second body atom; only for kPath.
  RelationId body2 = -1;
  RelationId head = -1;

  /// Number of body instantiations that satisfy the head.
  size_t support = 0;
  /// Number of body instantiations (distinct (x, y) pairs).
  size_t body_size = 0;
  /// support / body_size.
  double std_confidence = 0.0;
  /// PCA confidence: the denominator only counts body pairs (x, y) whose x
  /// has at least one head-relation fact (partial-completeness assumption).
  double pca_confidence = 0.0;
  /// support / |head relation|.
  double head_coverage = 0.0;

  /// Renders the rule using `vocab` relation names, AMIE-style.
  std::string ToString(const Vocab& vocab) const;
};

}  // namespace kgc

#endif  // KGC_RULES_RULE_H_
