#include "rules/cartesian_predictor.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace kgc {

CartesianPredictor::CartesianPredictor(const TripleStore& train,
                                       const DetectorOptions& options)
    : train_(train),
      cartesian_(static_cast<size_t>(train.num_relations()), false) {
  for (const CartesianEvidence& evidence :
       FindCartesianRelations(train, options)) {
    cartesian_[static_cast<size_t>(evidence.relation)] = true;
  }
}

CartesianPredictor::CartesianPredictor(
    const TripleStore& train, std::vector<RelationId> cartesian_relations)
    : train_(train),
      cartesian_(static_cast<size_t>(train.num_relations()), false) {
  for (RelationId r : cartesian_relations) {
    KGC_CHECK_GE(r, 0);
    KGC_CHECK_LT(r, train.num_relations());
    cartesian_[static_cast<size_t>(r)] = true;
  }
}

void CartesianPredictor::EnableTypeExtension(
    std::vector<int32_t> entity_type) {
  KGC_CHECK_EQ(static_cast<int64_t>(entity_type.size()),
               static_cast<int64_t>(train_.num_entities()));
  entity_type_ = std::move(entity_type);
  // Precomputed for every relation up front: scoring runs concurrently on
  // the ranker's worker threads, so a lazily-filled cache would race.
  subject_type_.assign(static_cast<size_t>(train_.num_relations()), -1);
  object_type_.assign(static_cast<size_t>(train_.num_relations()), -1);
  for (RelationId r = 0; r < train_.num_relations(); ++r) {
    subject_type_[static_cast<size_t>(r)] =
        ComputeMajorityType(r, /*objects=*/false);
    object_type_[static_cast<size_t>(r)] =
        ComputeMajorityType(r, /*objects=*/true);
  }
}

int32_t CartesianPredictor::MajorityType(RelationId r, bool objects) const {
  const std::vector<int32_t>& cache = objects ? object_type_ : subject_type_;
  return cache[static_cast<size_t>(r)];
}

int32_t CartesianPredictor::ComputeMajorityType(RelationId r,
                                                bool objects) const {
  std::unordered_map<int32_t, size_t> counts;
  const EntitySetView entities =
      objects ? train_.Objects(r) : train_.Subjects(r);
  for (EntityId e : entities) {
    counts[entity_type_[static_cast<size_t>(e)]]++;
  }
  int32_t best = -1;
  size_t best_count = 0;
  for (const auto& [type, count] : counts) {
    if (count > best_count) {
      best = type;
      best_count = count;
    }
  }
  return best;
}

std::vector<RelationId> CartesianPredictor::CartesianRelations() const {
  std::vector<RelationId> result;
  for (RelationId r = 0; r < train_.num_relations(); ++r) {
    if (cartesian_[static_cast<size_t>(r)]) result.push_back(r);
  }
  return result;
}

void CartesianPredictor::ScoreTails(EntityId h, RelationId r,
                                    std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  if (cartesian_[static_cast<size_t>(r)]) {
    // Predict every object of the relation, provided h is a known subject
    // (or, with the type extension, any subject of the relation's type).
    const bool head_qualifies =
        train_.Subjects(r).contains(h) ||
        (type_extension_enabled() &&
         entity_type_[static_cast<size_t>(h)] ==
             MajorityType(r, /*objects=*/false));
    if (head_qualifies) {
      for (EntityId t : train_.Objects(r)) {
        out[static_cast<size_t>(t)] = 1.0f;
      }
      if (type_extension_enabled()) {
        const int32_t object_type = MajorityType(r, /*objects=*/true);
        for (EntityId t = 0; t < train_.num_entities(); ++t) {
          if (entity_type_[static_cast<size_t>(t)] == object_type) {
            out[static_cast<size_t>(t)] =
                std::max(out[static_cast<size_t>(t)], 0.5f);
          }
        }
      }
    }
  }
  // Known facts score highest regardless (the relation may not be Cartesian;
  // then the training adjacency is all we assert).
  for (EntityId t : train_.Tails(h, r)) {
    out[static_cast<size_t>(t)] = 2.0f;
  }
}

void CartesianPredictor::ScoreHeads(RelationId r, EntityId t,
                                    std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  if (cartesian_[static_cast<size_t>(r)]) {
    const bool tail_qualifies =
        train_.Objects(r).contains(t) ||
        (type_extension_enabled() &&
         entity_type_[static_cast<size_t>(t)] ==
             MajorityType(r, /*objects=*/true));
    if (tail_qualifies) {
      for (EntityId h : train_.Subjects(r)) {
        out[static_cast<size_t>(h)] = 1.0f;
      }
      if (type_extension_enabled()) {
        const int32_t subject_type = MajorityType(r, /*objects=*/false);
        for (EntityId h = 0; h < train_.num_entities(); ++h) {
          if (entity_type_[static_cast<size_t>(h)] == subject_type) {
            out[static_cast<size_t>(h)] =
                std::max(out[static_cast<size_t>(h)], 0.5f);
          }
        }
      }
    }
  }
  for (EntityId h : train_.Heads(r, t)) {
    out[static_cast<size_t>(h)] = 2.0f;
  }
}

}  // namespace kgc
