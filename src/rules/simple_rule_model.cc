#include "rules/simple_rule_model.h"

#include <algorithm>

namespace kgc {

SimpleRuleModel::SimpleRuleModel(const TripleStore& train, double theta)
    : SimpleRuleModel(train, [&] {
        DetectorOptions options;
        options.theta1 = theta;
        options.theta2 = theta;
        return RedundancyCatalog::Detect(train, options);
      }()) {}

SimpleRuleModel::SimpleRuleModel(const TripleStore& train,
                                 RedundancyCatalog catalog)
    : train_(train),
      catalog_(std::move(catalog)),
      reverse_partners_(static_cast<size_t>(train.num_relations())),
      duplicate_partners_(static_cast<size_t>(train.num_relations())),
      symmetric_(static_cast<size_t>(train.num_relations()), false) {
  for (RelationId r = 0; r < train.num_relations(); ++r) {
    reverse_partners_[static_cast<size_t>(r)] = catalog_.ReversePartners(r);
    duplicate_partners_[static_cast<size_t>(r)] =
        catalog_.DuplicatePartners(r);
  }
  for (RelationId r : catalog_.symmetric_relations) {
    symmetric_[static_cast<size_t>(r)] = true;
  }
}

void SimpleRuleModel::ScoreTails(EntityId h, RelationId r,
                                 std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  // Reverse rule: (y, r2, h) => (h, r, y).
  for (RelationId r2 : reverse_partners_[static_cast<size_t>(r)]) {
    for (EntityId y : train_.Heads(r2, h)) {
      out[static_cast<size_t>(y)] = 1.0f;
    }
  }
  if (symmetric_[static_cast<size_t>(r)]) {
    for (EntityId y : train_.Heads(r, h)) {
      out[static_cast<size_t>(y)] = 1.0f;
    }
  }
  // Duplicate rule: (h, r2, y) => (h, r, y).
  for (RelationId r2 : duplicate_partners_[static_cast<size_t>(r)]) {
    for (EntityId y : train_.Tails(h, r2)) {
      out[static_cast<size_t>(y)] = 1.0f;
    }
  }
}

void SimpleRuleModel::ScoreHeads(RelationId r, EntityId t,
                                 std::span<float> out) const {
  std::fill(out.begin(), out.end(), 0.0f);
  // Reverse rule: (t, r2, x) => (x, r, t).
  for (RelationId r2 : reverse_partners_[static_cast<size_t>(r)]) {
    for (EntityId x : train_.Tails(t, r2)) {
      out[static_cast<size_t>(x)] = 1.0f;
    }
  }
  if (symmetric_[static_cast<size_t>(r)]) {
    for (EntityId x : train_.Tails(t, r)) {
      out[static_cast<size_t>(x)] = 1.0f;
    }
  }
  // Duplicate rule: (x, r2, t) => (x, r, t).
  for (RelationId r2 : duplicate_partners_[static_cast<size_t>(r)]) {
    for (EntityId x : train_.Heads(r2, t)) {
      out[static_cast<size_t>(x)] = 1.0f;
    }
  }
}

}  // namespace kgc
