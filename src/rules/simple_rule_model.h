// The paper's "Simple Model" (§4.2.1, Table 13).
//
// A deliberately trivial predictor: find relation pairs whose subject-object
// pair sets intersect above 80% (reverse or duplicate pairs, plus symmetric
// relations), derive rules of the form (h, r1, t) => (t, r2, h) /
// (h, r1, t) => (h, r2, t), and answer queries purely by rule lookup in the
// training set. On leaky benchmarks it matches or beats every embedding
// model; on cleaned benchmarks it collapses -- the paper's headline point.

#ifndef KGC_RULES_SIMPLE_RULE_MODEL_H_
#define KGC_RULES_SIMPLE_RULE_MODEL_H_

#include "kg/link_predictor.h"
#include "kg/triple_store.h"
#include "redundancy/leakage.h"

namespace kgc {

class SimpleRuleModel final : public LinkPredictor {
 public:
  /// Detects >theta-intersection relation pairs on `train` (which must
  /// outlive the model).
  SimpleRuleModel(const TripleStore& train, double theta = 0.8);

  /// Uses a pre-built catalog instead of detecting (e.g. the oracle one).
  SimpleRuleModel(const TripleStore& train, RedundancyCatalog catalog);

  const char* name() const override { return "SimpleModel"; }
  int32_t num_entities() const override { return train_.num_entities(); }
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;

  const RedundancyCatalog& catalog() const { return catalog_; }

 private:
  const TripleStore& train_;
  RedundancyCatalog catalog_;
  // Partner lookup tables, indexed by relation.
  std::vector<std::vector<RelationId>> reverse_partners_;
  std::vector<std::vector<RelationId>> duplicate_partners_;
  std::vector<bool> symmetric_;
};

}  // namespace kgc

#endif  // KGC_RULES_SIMPLE_RULE_MODEL_H_
