// AMIE-style rule mining (Galarraga et al., WWW 2013) and rule-based link
// prediction.
//
// The miner searches closed Horn rules of the three shapes in rule.h over a
// training store, computing support, standard confidence, PCA confidence and
// head coverage. Prediction follows the paper's protocol (§5.2): for a query
// all rules with the query relation in the head are instantiated; candidate
// entities are ranked by the maximum confidence of a generating rule, ties
// broken by the number of distinct rules that generate the candidate.

#ifndef KGC_RULES_AMIE_H_
#define KGC_RULES_AMIE_H_

#include <memory>
#include <vector>

#include "kg/link_predictor.h"
#include "kg/triple_store.h"
#include "rules/rule.h"

namespace kgc {

struct AmieOptions {
  size_t min_support = 5;
  double min_head_coverage = 0.01;
  double min_confidence = 0.05;
  /// Cap on enumerated 2-hop body pairs per (r1, r2) to bound mining time.
  size_t max_path_pairs = 2'000'000;
  /// Rank candidates by PCA confidence (true, AMIE+'s default) or standard.
  bool use_pca_confidence = true;
  /// Worker threads for candidate generation and support/confidence
  /// evaluation (0 = KGC_THREADS / hardware default; see util/parallel.h).
  /// The mined rule list is bit-identical for any value.
  int threads = 0;
};

/// Mines rules from `train`.
std::vector<Rule> MineRules(const TripleStore& train,
                            const AmieOptions& options = {});

/// Observed-feature link predictor backed by mined rules.
class RulePredictor final : public LinkPredictor {
 public:
  /// `train` must outlive the predictor.
  RulePredictor(std::vector<Rule> rules, const TripleStore& train,
                const AmieOptions& options = {});

  const char* name() const override { return "AMIE"; }
  int32_t num_entities() const override { return train_.num_entities(); }
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;

  const std::vector<Rule>& rules() const { return rules_; }

  /// Rules whose head is `r`, strongest confidence first.
  const std::vector<const Rule*>& RulesForHead(RelationId r) const;

 private:
  double Confidence(const Rule& rule) const {
    return options_.use_pca_confidence ? rule.pca_confidence
                                       : rule.std_confidence;
  }

  std::vector<Rule> rules_;
  const TripleStore& train_;
  AmieOptions options_;
  std::vector<std::vector<const Rule*>> by_head_;
};

}  // namespace kgc

#endif  // KGC_RULES_AMIE_H_
