// Cartesian-product-property predictor (paper §4.3(2), Table 3).
//
// A relation whose observed subject-object pairs are dense in S_r x O_r is
// declared a Cartesian product relation; the predictor then scores every
// (h in S_r, t in O_r) as true. The paper shows this trivial method beats
// TransE on such relations -- especially when judged against the full
// Freebase snapshot (here: the synthetic world graph).

#ifndef KGC_RULES_CARTESIAN_PREDICTOR_H_
#define KGC_RULES_CARTESIAN_PREDICTOR_H_

#include <vector>

#include "kg/link_predictor.h"
#include "kg/triple_store.h"
#include "redundancy/detectors.h"

namespace kgc {

class CartesianPredictor final : public LinkPredictor {
 public:
  /// Detects Cartesian relations on `train` (must outlive the predictor)
  /// with the given density threshold.
  CartesianPredictor(const TripleStore& train,
                     const DetectorOptions& options = {});

  /// Forces a specific relation set to be treated as Cartesian (used when
  /// relations were detected on a larger store, e.g. the world graph).
  CartesianPredictor(const TripleStore& train,
                     std::vector<RelationId> cartesian_relations);

  /// Enables the paper's type-system extension (§4.3(2)): instead of
  /// closing over the *observed* subjects/objects S_r x O_r, predict for
  /// every entity sharing a type with them. `entity_type[e]` assigns each
  /// entity one type id (Freebase entity types; in the synthetic benchmarks
  /// the generator's domains). A relation's subject/object type is the
  /// majority type of its observed subjects/objects.
  void EnableTypeExtension(std::vector<int32_t> entity_type);

  bool type_extension_enabled() const { return !entity_type_.empty(); }

  const char* name() const override { return "CartesianRule"; }
  int32_t num_entities() const override { return train_.num_entities(); }
  void ScoreTails(EntityId h, RelationId r, std::span<float> out) const override;
  void ScoreHeads(RelationId r, EntityId t, std::span<float> out) const override;

  bool IsCartesian(RelationId r) const {
    return cartesian_[static_cast<size_t>(r)];
  }
  std::vector<RelationId> CartesianRelations() const;

 private:
  // Majority type of a relation's observed subjects (if `objects` is false)
  // or objects; -1 when untyped or no triples. Pure lookup into the tables
  // precomputed by EnableTypeExtension (scoring is concurrent, so there is
  // no lazy fill-in).
  int32_t MajorityType(RelationId r, bool objects) const;
  int32_t ComputeMajorityType(RelationId r, bool objects) const;

  const TripleStore& train_;
  std::vector<bool> cartesian_;
  std::vector<int32_t> entity_type_;
  // Per relation, majority subject/object types (filled eagerly).
  std::vector<int32_t> subject_type_;
  std::vector<int32_t> object_type_;
};

}  // namespace kgc

#endif  // KGC_RULES_CARTESIAN_PREDICTOR_H_
