// Long-lived worker-thread pool backing the execution engine (parallel.h).
//
// The pool owns N worker threads that drain a FIFO work queue. Work items
// are type-erased void() closures; submission never blocks (the queue is
// unbounded) and the destructor drains outstanding work before joining, so
// shutdown is clean even with jobs still queued. The pool can grow — never
// shrink — via EnsureWorkers, which lets one process-wide pool serve every
// ParallelFor thread-count request without respawning threads per call.
//
// Most code should not touch this class directly: use ParallelFor
// (util/parallel.h), which shards a range over the shared pool with a
// deterministic static partition.

#ifndef KGC_UTIL_THREAD_POOL_H_
#define KGC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kgc {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads (0 is valid: an empty pool that can grow).
  explicit ThreadPool(int num_workers);

  /// Drains queued work, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; some worker will run it. Must not be called after (or
  /// concurrently with) destruction.
  void Submit(std::function<void()> job);

  /// Grows the pool to at least `num_workers` threads. Thread-safe.
  void EnsureWorkers(int num_workers);

  int num_workers() const;

  /// The process-wide pool shared by all ParallelFor calls. Created on
  /// first use with DefaultThreadCount() - 1 workers (the calling thread
  /// always executes one shard itself); grown on demand.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace kgc

#endif  // KGC_UTIL_THREAD_POOL_H_
