// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).
//
// Used as the integrity footer of every binary cache artifact (.kgcm model
// files, .ranks tables, .ckpt training checkpoints) so that truncation and
// bit-rot are detected at load time instead of surfacing as garbage metrics.

#ifndef KGC_UTIL_CRC32_H_
#define KGC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace kgc {

/// CRC-32 of `size` bytes starting at `data`, with the conventional
/// all-ones initial value and final inversion (matches zlib's crc32()).
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: feed `crc` the result of the previous call (start
/// from 0) to checksum a stream in chunks.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace kgc

#endif  // KGC_UTIL_CRC32_H_
