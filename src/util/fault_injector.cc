#include "util/fault_injector.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgc {

bool ParseFaultKind(const std::string& name, FaultKind* kind) {
  if (name == "torn_write") {
    *kind = FaultKind::kTornWrite;
  } else if (name == "short_read") {
    *kind = FaultKind::kShortRead;
  } else if (name == "enospc") {
    *kind = FaultKind::kEnospc;
  } else if (name == "rename_fail") {
    *kind = FaultKind::kRenameFail;
  } else if (name == "mkdir_fail") {
    *kind = FaultKind::kMkdirFail;
  } else if (name == "stall") {
    *kind = FaultKind::kStall;
  } else if (name == "crash") {
    *kind = FaultKind::kCrash;
  } else {
    return false;
  }
  return true;
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    if (const char* spec = std::getenv("KGC_FAULTS")) {
      instance->ArmFromSpec(spec);
    }
    return instance;
  }();
  return *injector;
}

void FaultInjector::Arm(FaultKind kind, int times, int skip, int64_t payload) {
  Slot& slot = slots_[static_cast<size_t>(kind)];
  slot.times = times;
  slot.skip = skip;
  slot.payload = payload;
}

void FaultInjector::Disarm(FaultKind kind) {
  slots_[static_cast<size_t>(kind)] = Slot{};
}

void FaultInjector::DisarmAll() {
  for (Slot& slot : slots_) slot = Slot{};
}

bool FaultInjector::ShouldFail(FaultKind kind, int64_t* payload) {
  Slot& slot = slots_[static_cast<size_t>(kind)];
  ++slot.seen;
  if (slot.times <= 0) return false;
  if (slot.skip > 0) {
    --slot.skip;
    return false;
  }
  --slot.times;
  if (payload != nullptr) *payload = slot.payload;
  static obs::Counter& injected =
      obs::Registry::Get().GetCounter(obs::kFaultsInjected);
  injected.Increment();
  return true;
}

int64_t FaultInjector::ops_seen(FaultKind kind) const {
  return slots_[static_cast<size_t>(kind)].seen;
}

int FaultInjector::times_remaining(FaultKind kind) const {
  return slots_[static_cast<size_t>(kind)].times;
}

bool FaultInjector::ArmFromSpec(const std::string& spec) {
  bool all_ok = true;
  for (const std::string& entry : Split(spec, ',')) {
    if (Trim(entry).empty()) continue;
    const std::vector<std::string> fields = Split(Trim(entry), ':');
    FaultKind kind;
    if (!ParseFaultKind(fields[0], &kind)) {
      LogWarning("KGC_FAULTS: unknown fault kind '%s'", fields[0].c_str());
      all_ok = false;
      continue;
    }
    int times = 1;
    int skip = 0;
    int64_t payload = 0;
    bool entry_ok = true;
    for (size_t i = 1; i < fields.size(); ++i) {
      const std::vector<std::string> kv = Split(fields[i], '=');
      if (kv.size() != 2) {
        entry_ok = false;
        break;
      }
      const long value = std::strtol(kv[1].c_str(), nullptr, 10);
      if (kv[0] == "times") {
        times = static_cast<int>(value);
      } else if (kv[0] == "skip") {
        skip = static_cast<int>(value);
      } else if (kv[0] == "bytes" || kv[0] == "ms") {
        payload = value;
      } else {
        entry_ok = false;
        break;
      }
    }
    if (!entry_ok) {
      LogWarning("KGC_FAULTS: malformed entry '%s'", entry.c_str());
      all_ok = false;
      continue;
    }
    LogWarning("fault injection armed: %s times=%d skip=%d payload=%lld",
               fields[0].c_str(), times, skip,
               static_cast<long long>(payload));
    Arm(kind, times, skip, payload);
  }
  return all_ok;
}

}  // namespace kgc
