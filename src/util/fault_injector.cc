#include "util/fault_injector.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "obs/resource_stats.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// Bridge for the obs-layer telemetry failpoints ("obs:procfs",
// "obs:rusage", "obs:perf"): obs cannot depend on this injector (it is the
// lowest layer), so it exposes a hook that we route into the site
// registry. Armed via e.g. KGC_FAULTS=enospc@obs:procfs:times=3.
bool TelemetryFailpointBridge(const char* site) {
  return FaultInjector::Get().ShouldFailAt(site);
}

}  // namespace

bool ParseFaultKind(const std::string& name, FaultKind* kind) {
  if (name == "torn_write") {
    *kind = FaultKind::kTornWrite;
  } else if (name == "short_read") {
    *kind = FaultKind::kShortRead;
  } else if (name == "enospc") {
    *kind = FaultKind::kEnospc;
  } else if (name == "rename_fail") {
    *kind = FaultKind::kRenameFail;
  } else if (name == "mkdir_fail") {
    *kind = FaultKind::kMkdirFail;
  } else if (name == "stall") {
    *kind = FaultKind::kStall;
  } else if (name == "crash") {
    *kind = FaultKind::kCrash;
  } else {
    return false;
  }
  return true;
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    if (const char* spec = std::getenv("KGC_FAULTS")) {
      instance->ArmFromSpec(spec);
    }
    obs::SetTelemetryFailpoint(&TelemetryFailpointBridge);
    return instance;
  }();
  return *injector;
}

void FaultInjector::Arm(FaultKind kind, int times, int skip, int64_t payload) {
  Slot& slot = slots_[static_cast<size_t>(kind)];
  slot.times = times;
  slot.skip = skip;
  slot.payload = payload;
}

void FaultInjector::Disarm(FaultKind kind) {
  slots_[static_cast<size_t>(kind)] = Slot{};
}

void FaultInjector::DisarmAll() {
  for (Slot& slot : slots_) slot = Slot{};
  sites_.clear();
}

void FaultInjector::ArmSite(const std::string& site, FaultKind kind,
                            int times, int skip, int64_t payload) {
  SiteSlot& entry = sites_[site];
  entry.kind = kind;
  entry.slot.times = times;
  entry.slot.skip = skip;
  entry.slot.payload = payload;
}

void FaultInjector::DisarmSite(const std::string& site) {
  sites_.erase(site);
}

bool FaultInjector::ShouldFailAt(const std::string& site, FaultKind* kind,
                                 int64_t* payload) {
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  SiteSlot& entry = it->second;
  ++entry.slot.seen;
  if (entry.slot.times <= 0) return false;
  if (entry.slot.skip > 0) {
    --entry.slot.skip;
    return false;
  }
  --entry.slot.times;
  if (kind != nullptr) *kind = entry.kind;
  if (payload != nullptr) *payload = entry.slot.payload;
  static obs::Counter& injected =
      obs::Registry::Get().GetCounter(obs::kFaultsInjected);
  injected.Increment();
  return true;
}

int FaultInjector::site_times_remaining(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.slot.times;
}

bool FaultInjector::ShouldFail(FaultKind kind, int64_t* payload) {
  Slot& slot = slots_[static_cast<size_t>(kind)];
  ++slot.seen;
  if (slot.times <= 0) return false;
  if (slot.skip > 0) {
    --slot.skip;
    return false;
  }
  --slot.times;
  if (payload != nullptr) *payload = slot.payload;
  static obs::Counter& injected =
      obs::Registry::Get().GetCounter(obs::kFaultsInjected);
  injected.Increment();
  return true;
}

int64_t FaultInjector::ops_seen(FaultKind kind) const {
  return slots_[static_cast<size_t>(kind)].seen;
}

int FaultInjector::times_remaining(FaultKind kind) const {
  return slots_[static_cast<size_t>(kind)].times;
}

namespace {

// True if `field` is a recognised option assignment ("times=3"). Anything
// else — including a bare word — belongs to the kind@site token, which may
// itself contain ':' (site names like "rotate:manifest").
bool IsOptionField(const std::string& field) {
  const std::vector<std::string> kv = Split(field, '=');
  if (kv.size() != 2) return false;
  return kv[0] == "times" || kv[0] == "skip" || kv[0] == "bytes" ||
         kv[0] == "ms";
}

}  // namespace

bool FaultInjector::ArmFromSpec(const std::string& spec) {
  bool all_ok = true;
  for (const std::string& entry : Split(spec, ',')) {
    if (Trim(entry).empty()) continue;
    const std::vector<std::string> fields = Split(Trim(entry), ':');
    // Options are parsed from the tail: the longest suffix of key=value
    // fields. The remaining prefix, re-joined with ':', is the kind (or
    // kind@site) token.
    size_t head_end = fields.size();
    while (head_end > 1 && IsOptionField(fields[head_end - 1])) --head_end;
    std::vector<std::string> head_fields(fields.begin(),
                                         fields.begin() + head_end);
    const std::string head = Join(head_fields, ":");

    std::string kind_name = head;
    std::string site;
    const size_t at = head.find('@');
    if (at != std::string::npos) {
      kind_name = head.substr(0, at);
      site = head.substr(at + 1);
    }
    FaultKind kind;
    if (!ParseFaultKind(kind_name, &kind) ||
        (at != std::string::npos && site.empty())) {
      LogWarning("KGC_FAULTS: unknown fault kind '%s'", head.c_str());
      all_ok = false;
      continue;
    }
    int times = 1;
    int skip = 0;
    int64_t payload = 0;
    for (size_t i = head_end; i < fields.size(); ++i) {
      const std::vector<std::string> kv = Split(fields[i], '=');
      const long value = std::strtol(kv[1].c_str(), nullptr, 10);
      if (kv[0] == "times") {
        times = static_cast<int>(value);
      } else if (kv[0] == "skip") {
        skip = static_cast<int>(value);
      } else {  // bytes or ms
        payload = value;
      }
    }
    LogWarning("fault injection armed: %s%s%s times=%d skip=%d payload=%lld",
               kind_name.c_str(), site.empty() ? "" : " at ", site.c_str(),
               times, skip, static_cast<long long>(payload));
    if (site.empty()) {
      Arm(kind, times, skip, payload);
    } else {
      ArmSite(site, kind, times, skip, payload);
    }
  }
  return all_ok;
}

}  // namespace kgc
