// -march-enabled compilation of the shared kernel bodies. CMake compiles
// this TU with -march=x86-64-v3 (and -ffp-contract=off) when the toolchain
// supports it, defining KGC_HAVE_NATIVE_KERNELS; otherwise the TU degrades
// to a stub so the dispatcher links unconditionally.

#ifdef KGC_HAVE_NATIVE_KERNELS

#define KGC_VECMATH_NAMESPACE native_path
#include "util/vecmath_kernels.inc"

namespace kgc::vec {

const KernelOps* GetNativeOpsImpl() { return native_path::GetOps("native"); }

}  // namespace kgc::vec

#else  // !KGC_HAVE_NATIVE_KERNELS

#include "util/vecmath.h"

namespace kgc::vec {

const KernelOps* GetNativeOpsImpl() { return nullptr; }

}  // namespace kgc::vec

#endif  // KGC_HAVE_NATIVE_KERNELS
