// Small string helpers shared across the library.

#ifndef KGC_UTIL_STRING_UTIL_H_
#define KGC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kgc {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// Formats a fraction as a percentage with one decimal, e.g. "70.3%".
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace kgc

#endif  // KGC_UTIL_STRING_UTIL_H_
