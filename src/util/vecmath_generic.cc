// Generic (baseline-ISA) compilation of the shared kernel bodies. Built
// with -ffp-contract=off; see vecmath.h for the bit-exactness contract.

#define KGC_VECMATH_NAMESPACE generic_path
#include "util/vecmath_kernels.inc"

namespace kgc::vec {

const KernelOps* GetGenericOpsImpl() { return generic_path::GetOps("generic"); }

}  // namespace kgc::vec
