#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace kgc {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatPercent(double fraction, int digits) {
  return StrFormat("%.*f%%", digits, fraction * 100.0);
}

}  // namespace kgc
