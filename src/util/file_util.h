// Filesystem helpers (text I/O, directory creation).

#ifndef KGC_UTIL_FILE_UTIL_H_
#define KGC_UTIL_FILE_UTIL_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kgc {

/// Reads a whole text file.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes a whole text file (truncating).
Status WriteStringToFile(const std::string& path, const std::string& content);

/// Reads a text file into lines (without trailing newline characters).
StatusOr<std::vector<std::string>> ReadLines(const std::string& path);

/// Creates a directory (and parents) if missing.
Status MakeDirectories(const std::string& path);

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

}  // namespace kgc

#endif  // KGC_UTIL_FILE_UTIL_H_
