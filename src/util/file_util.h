// Filesystem helpers (text I/O, directory creation, crash-safe writes).
//
// All raw reads and writes funnel through ReadFileBytes / AtomicWriteFile,
// which consult the FaultInjector failpoints — arming a failpoint exercises
// every artifact path in the system with realistic storage failures.

#ifndef KGC_UTIL_FILE_UTIL_H_
#define KGC_UTIL_FILE_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgc {

/// Reads a whole text file.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes a whole text file atomically (write temp + rename).
Status WriteStringToFile(const std::string& path, const std::string& content);

/// Reads a text file into lines (without trailing newline characters).
StatusOr<std::vector<std::string>> ReadLines(const std::string& path);

/// Creates a directory (and parents) if missing.
Status MakeDirectories(const std::string& path);

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Reads a whole file as bytes. kNotFound if absent; kIoError on a short
/// read (including injected ones).
StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Crash-safe whole-file write: writes `path + ".tmp"`, fsyncs it, renames
/// it over `path`, and fsyncs the parent directory, so a crash at any point
/// leaves either the old file or the new one — never a torn mix. Honors the
/// kTornWrite / kEnospc / kRenameFail failpoints.
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size);

/// Atomically renames `from` to `to` (same filesystem) and fsyncs the
/// destination's parent directory so the rename itself is durable. Works on
/// files and directories alike — it is the commit step of multi-file
/// protocols (snapshot generation publish). Honors the kRenameFail
/// failpoint.
Status RenamePath(const std::string& from, const std::string& to);

/// Runs `op` up to `max_attempts` times, backing off ~1ms * 2^attempt
/// between tries, while it returns kIoError (other codes — kNotFound,
/// corrupt-data failures — are returned immediately: retrying cannot fix
/// them). `what` labels retry log lines.
Status RetryIo(const std::string& what, int max_attempts,
               const std::function<Status()>& op);

/// Moves a corrupt artifact aside to `path + ".corrupt"` (best effort —
/// falls back to deleting it) so the caller can regenerate the artifact
/// while the evidence survives for post-mortems. Logs a warning.
void QuarantineCorrupt(const std::string& path, const Status& why);

}  // namespace kgc

#endif  // KGC_UTIL_FILE_UTIL_H_
