#include "util/serialize.h"

#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace kgc {

void BinaryWriter::Append(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void BinaryWriter::WriteU32(uint32_t value) { Append(&value, sizeof(value)); }
void BinaryWriter::WriteU64(uint64_t value) { Append(&value, sizeof(value)); }
void BinaryWriter::WriteDouble(double value) { Append(&value, sizeof(value)); }
void BinaryWriter::WriteFloat(float value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  Append(value.data(), value.size());
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  Append(values.data(), values.size() * sizeof(double));
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& values) {
  WriteU64(values.size());
  Append(values.data(), values.size() * sizeof(float));
}

Status BinaryWriter::Flush(const std::string& path) const {
  const std::string temp_path = path + ".tmp";
  std::FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open for write: " + temp_path);
  }
  const size_t written = buffer_.empty()
                             ? 0
                             : std::fwrite(buffer_.data(), 1, buffer_.size(),
                                           file);
  const int close_result = std::fclose(file);
  if (written != buffer_.size() || close_result != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("short write: " + temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("rename failed: " + path);
  }
  return Status::Ok();
}

StatusOr<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(file);
    return Status::IoError("cannot stat: " + path);
  }
  std::vector<uint8_t> buffer(static_cast<size_t>(size));
  const size_t read =
      buffer.empty() ? 0 : std::fread(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (read != buffer.size()) {
    return Status::IoError("short read: " + path);
  }
  return BinaryReader(std::move(buffer));
}

Status BinaryReader::ReadBytes(void* out, size_t size) {
  if (position_ + size > buffer_.size()) {
    return Status::IoError(
        StrFormat("truncated buffer: need %zu bytes at offset %zu of %zu",
                  size, position_, buffer_.size()));
  }
  std::memcpy(out, buffer_.data() + position_, size);
  position_ += size;
  return Status::Ok();
}

StatusOr<uint32_t> BinaryReader::ReadU32() {
  uint32_t value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<uint64_t> BinaryReader::ReadU64() {
  uint64_t value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<int32_t> BinaryReader::ReadI32() {
  auto value = ReadU32();
  if (!value.ok()) return value.status();
  return static_cast<int32_t>(*value);
}

StatusOr<int64_t> BinaryReader::ReadI64() {
  auto value = ReadU64();
  if (!value.ok()) return value.status();
  return static_cast<int64_t>(*value);
}

StatusOr<double> BinaryReader::ReadDouble() {
  double value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<float> BinaryReader::ReadFloat() {
  float value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<std::string> BinaryReader::ReadString() {
  auto size = ReadU64();
  if (!size.ok()) return size.status();
  std::string value(static_cast<size_t>(*size), '\0');
  KGC_RETURN_IF_ERROR(ReadBytes(value.data(), value.size()));
  return value;
}

StatusOr<std::vector<double>> BinaryReader::ReadDoubleVector() {
  auto size = ReadU64();
  if (!size.ok()) return size.status();
  if (*size > (buffer_.size() - position_) / sizeof(double)) {
    return Status::IoError("vector length exceeds buffer");
  }
  std::vector<double> values(static_cast<size_t>(*size));
  KGC_RETURN_IF_ERROR(
      ReadBytes(values.data(), values.size() * sizeof(double)));
  return values;
}

StatusOr<std::vector<float>> BinaryReader::ReadFloatVector() {
  auto size = ReadU64();
  if (!size.ok()) return size.status();
  if (*size > (buffer_.size() - position_) / sizeof(float)) {
    return Status::IoError("vector length exceeds buffer");
  }
  std::vector<float> values(static_cast<size_t>(*size));
  KGC_RETURN_IF_ERROR(ReadBytes(values.data(), values.size() * sizeof(float)));
  return values;
}

}  // namespace kgc
