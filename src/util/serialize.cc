#include "util/serialize.h"

#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// Integrity footer: kFooterMagic then the payload CRC-32, both u32 LE.
constexpr uint32_t kFooterMagic = 0x4b435243U;  // "KCRC"
constexpr size_t kFooterSize = 2 * sizeof(uint32_t);

uint32_t LoadU32(const uint8_t* bytes) {
  uint32_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

}  // namespace

void BinaryWriter::Append(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void BinaryWriter::WriteU32(uint32_t value) { Append(&value, sizeof(value)); }
void BinaryWriter::WriteU64(uint64_t value) { Append(&value, sizeof(value)); }
void BinaryWriter::WriteDouble(double value) { Append(&value, sizeof(value)); }
void BinaryWriter::WriteFloat(float value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  Append(value.data(), value.size());
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteU64(values.size());
  Append(values.data(), values.size() * sizeof(double));
}

void BinaryWriter::WriteFloatVector(std::span<const float> values) {
  WriteU64(values.size());
  Append(values.data(), values.size() * sizeof(float));
}

Status BinaryWriter::Flush(const std::string& path) const {
  std::vector<uint8_t> framed = buffer_;
  const uint32_t magic = kFooterMagic;
  const uint32_t crc = Crc32(buffer_.data(), buffer_.size());
  const auto* magic_bytes = reinterpret_cast<const uint8_t*>(&magic);
  const auto* crc_bytes = reinterpret_cast<const uint8_t*>(&crc);
  framed.insert(framed.end(), magic_bytes, magic_bytes + sizeof(magic));
  framed.insert(framed.end(), crc_bytes, crc_bytes + sizeof(crc));
  return RetryIo("write " + path, /*max_attempts=*/3, [&] {
    return AtomicWriteFile(path, framed.data(), framed.size());
  });
}

StatusOr<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  // Retry the raw read with backoff: short reads can be transient (and the
  // injected ones are); checksum failures below are not, so they are
  // checked once, after a complete read.
  StatusOr<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  for (int attempt = 1; attempt < 3 && !bytes.ok() &&
                        bytes.status().code() == StatusCode::kIoError;
       ++attempt) {
    bytes = ReadFileBytes(path);
  }
  if (!bytes.ok()) return bytes.status();

  std::vector<uint8_t> buffer = std::move(*bytes);
  if (buffer.size() < kFooterSize) {
    return Status::IoError("missing integrity footer (truncated?): " + path);
  }
  const uint8_t* footer = buffer.data() + buffer.size() - kFooterSize;
  if (LoadU32(footer) != kFooterMagic) {
    return Status::IoError(
        "missing integrity footer (truncated or legacy file): " + path);
  }
  const uint32_t stored_crc = LoadU32(footer + sizeof(uint32_t));
  const uint32_t actual_crc =
      Crc32(buffer.data(), buffer.size() - kFooterSize);
  if (stored_crc != actual_crc) {
    return Status::IoError(
        StrFormat("checksum mismatch in %s: stored %08x, computed %08x",
                  path.c_str(), stored_crc, actual_crc));
  }
  buffer.resize(buffer.size() - kFooterSize);
  return BinaryReader(std::move(buffer));
}

Status BinaryReader::ReadBytes(void* out, size_t size) {
  if (position_ + size > buffer_.size()) {
    return Status::IoError(
        StrFormat("truncated buffer: need %zu bytes at offset %zu of %zu",
                  size, position_, buffer_.size()));
  }
  std::memcpy(out, buffer_.data() + position_, size);
  position_ += size;
  return Status::Ok();
}

StatusOr<uint32_t> BinaryReader::ReadU32() {
  uint32_t value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<uint64_t> BinaryReader::ReadU64() {
  uint64_t value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<int32_t> BinaryReader::ReadI32() {
  auto value = ReadU32();
  if (!value.ok()) return value.status();
  return static_cast<int32_t>(*value);
}

StatusOr<int64_t> BinaryReader::ReadI64() {
  auto value = ReadU64();
  if (!value.ok()) return value.status();
  return static_cast<int64_t>(*value);
}

StatusOr<double> BinaryReader::ReadDouble() {
  double value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<float> BinaryReader::ReadFloat() {
  float value = 0;
  KGC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<std::string> BinaryReader::ReadString() {
  auto size = ReadU64();
  if (!size.ok()) return size.status();
  std::string value(static_cast<size_t>(*size), '\0');
  KGC_RETURN_IF_ERROR(ReadBytes(value.data(), value.size()));
  return value;
}

StatusOr<std::vector<double>> BinaryReader::ReadDoubleVector() {
  auto size = ReadU64();
  if (!size.ok()) return size.status();
  if (*size > (buffer_.size() - position_) / sizeof(double)) {
    return Status::IoError("vector length exceeds buffer");
  }
  std::vector<double> values(static_cast<size_t>(*size));
  KGC_RETURN_IF_ERROR(
      ReadBytes(values.data(), values.size() * sizeof(double)));
  return values;
}

StatusOr<std::vector<float>> BinaryReader::ReadFloatVector() {
  auto size = ReadU64();
  if (!size.ok()) return size.status();
  if (*size > (buffer_.size() - position_) / sizeof(float)) {
    return Status::IoError("vector length exceeds buffer");
  }
  std::vector<float> values(static_cast<size_t>(*size));
  KGC_RETURN_IF_ERROR(ReadBytes(values.data(), values.size() * sizeof(float)));
  return values;
}

}  // namespace kgc
