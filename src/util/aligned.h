// Over-aligned heap storage for kernel-friendly arrays.
//
// The scoring kernels (util/vecmath.h) stream over contiguous embedding
// rows; 64-byte alignment keeps every vector load inside one cache line
// and matches the widest SIMD register the dispatch can select. The
// allocator is a thin wrapper over C++17 aligned operator new, so an
// AlignedVector behaves exactly like std::vector — same growth, same
// iterator/debug semantics — just with a stronger alignment guarantee on
// data().

#ifndef KGC_UTIL_ALIGNED_H_
#define KGC_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace kgc {

/// Alignment used for all kernel-visible float storage.
inline constexpr size_t kKernelAlignment = 64;

template <typename T, size_t Alignment = kKernelAlignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "alignment weaker than the type's");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

/// std::vector with 64-byte-aligned storage. Element access, growth and
/// value semantics are unchanged; only data()'s alignment is stronger.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kKernelAlignment>>;

}  // namespace kgc

#endif  // KGC_UTIL_ALIGNED_H_
