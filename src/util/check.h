// Lightweight CHECK macros for invariant enforcement.
//
// The library is built without exceptions; unrecoverable programming errors
// abort the process with a message pointing at the failing condition.
// Recoverable conditions (bad input files, malformed configs) go through
// util::Status instead.

#ifndef KGC_UTIL_CHECK_H_
#define KGC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace kgc {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace kgc

#define KGC_CHECK(expr)                                             \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::kgc::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                               \
  } while (0)

#define KGC_CHECK_EQ(a, b) KGC_CHECK((a) == (b))
#define KGC_CHECK_NE(a, b) KGC_CHECK((a) != (b))
#define KGC_CHECK_LT(a, b) KGC_CHECK((a) < (b))
#define KGC_CHECK_LE(a, b) KGC_CHECK((a) <= (b))
#define KGC_CHECK_GT(a, b) KGC_CHECK((a) > (b))
#define KGC_CHECK_GE(a, b) KGC_CHECK((a) >= (b))

#ifdef NDEBUG
#define KGC_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define KGC_DCHECK(expr) KGC_CHECK(expr)
#endif

#endif  // KGC_UTIL_CHECK_H_
