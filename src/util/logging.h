// Minimal leveled logging to stderr.
//
// Usage:
//   KGC_LOG(INFO) << won't compile -- this is printf-style, not streams:
//   LogInfo("trained %s in %.1fs", name.c_str(), seconds);
//
// Every line carries an ISO-8601 UTC timestamp and the dense thread id
// from obs::ThreadId() (shared with trace spans, so log lines and trace
// rows correlate):
//
//   [2026-08-06T12:34:56.789Z] [INFO] [t1] trained TransE in 3.1s
//
// Verbosity is controlled globally; the KGC_LOG_LEVEL environment variable
// (debug | info | warning | error, case-insensitive) sets the startup
// level, and SetLogLevel overrides it programmatically (benches lower it
// to keep table output clean while examples keep INFO on).

#ifndef KGC_UTIL_LOGGING_H_
#define KGC_UTIL_LOGGING_H_

#include <string>

namespace kgc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo, or
/// KGC_LOG_LEVEL when set).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error",
/// case-insensitive. Returns false on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// printf-style log emitters.
void LogDebug(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogInfo(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogWarning(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogError(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace kgc

#endif  // KGC_UTIL_LOGGING_H_
