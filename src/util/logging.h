// Minimal leveled logging to stderr.
//
// Usage:
//   KGC_LOG(INFO) << won't compile -- this is printf-style, not streams:
//   LogInfo("trained %s in %.1fs", name.c_str(), seconds);
//
// Verbosity is controlled globally; benches lower it to keep table output
// clean while examples keep INFO on.

#ifndef KGC_UTIL_LOGGING_H_
#define KGC_UTIL_LOGGING_H_

#include <string>

namespace kgc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style log emitters.
void LogDebug(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogInfo(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogWarning(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogError(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace kgc

#endif  // KGC_UTIL_LOGGING_H_
