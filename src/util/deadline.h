// Phase deadlines and heartbeats: in-process watchdog for long phases.
//
// A worker process (bench binary, example, test) runs a handful of long
// phases — training, ranking, rule mining. The external supervisor
// (tools/kgc_suite) can only SIGKILL a stuck worker, which risks torn
// artifacts and loses all progress. The Deadline facility is the
// cooperative half of that watchdog: phases check in at their natural
// boundaries (end of a training epoch, between ranking passes, between
// AMIE candidate rounds), and when the per-phase budget is exhausted the
// worker exits *gracefully* — after persisting a resumable checkpoint and
// flushing telemetry — with a distinct exit code the supervisor recognizes
// as "timed out but resumable", so the retry continues instead of
// restarting.
//
// Configuration: `KGC_PHASE_TIMEOUT_S=<seconds>` (read once, on first use)
// or SetPhaseBudget(). Zero/unset disables every check. The budget applies
// per phase: BeginPhase (usually via the DeadlinePhase RAII guard) restarts
// the clock, so "train FB15k-syn" and "rank FB15k-syn" each get the full
// budget.
//
// PhaseBoundary(name) is the check-in. It
//   1. records `name` as the latest heartbeat (crash reports include it),
//   2. services the `stall` / `crash` failpoints (util/fault_injector.h) so
//      watchdog and crash recovery are testable end to end, and
//   3. when the phase budget is exhausted, invokes the deadline handler —
//      by default: log, record the exit cause, std::exit(kDeadlineExitCode)
//      (running atexit hooks, which flush the run report).
//
// Checks are serial-path only: inside a ParallelFor worker PhaseBoundary
// is a heartbeat-free no-op, so a deadline can never tear a parallel
// region (the boundary after the join catches it).

#ifndef KGC_UTIL_DEADLINE_H_
#define KGC_UTIL_DEADLINE_H_

#include <string>

namespace kgc {

/// Exit code of a deadline-triggered orderly exit. Mirrors GNU timeout(1)
/// so shell tooling reads it naturally; tools/kgc_suite maps it to the
/// "timeout" manifest status and retries without quarantine escalation
/// (the exit was orderly, so no artifact can be torn).
inline constexpr int kDeadlineExitCode = 124;

class Deadline {
 public:
  /// The process-wide deadline. Reads KGC_PHASE_TIMEOUT_S on first call.
  static Deadline& Global();

  /// Per-phase wall-clock budget in seconds; <= 0 disables all checks.
  void SetPhaseBudget(double seconds);
  double phase_budget() const;
  bool enabled() const { return phase_budget() > 0; }

  /// Restarts the phase clock and records the phase name.
  void BeginPhase(const char* name);

  /// Seconds since the last BeginPhase (0 before the first).
  double PhaseElapsedSeconds() const;

  /// True when a budget is set and the current phase has exceeded it.
  bool Expired() const;

  /// The most recent PhaseBoundary / BeginPhase name ("" before the
  /// first). Crash reports carry it as the last known location.
  std::string last_heartbeat() const;

 private:
  Deadline();
};

/// RAII BeginPhase: restarts the phase clock for the enclosing scope.
/// No-op inside a ParallelFor worker (phase state belongs to the serial
/// path).
class DeadlinePhase {
 public:
  explicit DeadlinePhase(const char* name);
};

/// Phase check-in without the exit: records the heartbeat, services the
/// stall/crash failpoints, and returns whether the phase deadline has
/// expired. For callers that must persist state before exiting (the
/// trainer saves a checkpoint first, then calls HandleDeadlineExpiry).
bool PhaseCheck(const char* phase);

/// Phase check-in (see file comment): PhaseCheck, then HandleDeadlineExpiry
/// when expired. Only returns past an expiry when a test handler returned.
void PhaseBoundary(const char* phase);

/// Invokes the deadline handler for `phase` (default: record exit cause
/// "deadline:<phase>", log, std::exit(kDeadlineExitCode)).
void HandleDeadlineExpiry(const char* phase);

/// Test hook: replaces the exit-on-expiry behavior. The handler receives
/// the phase name; returning resumes the caller as if no deadline was set.
/// Pass nullptr to restore the default.
using DeadlineHandler = void (*)(const char* phase);
void SetDeadlineHandlerForTest(DeadlineHandler handler);

}  // namespace kgc

#endif  // KGC_UTIL_DEADLINE_H_
