// Status / StatusOr: exception-free error propagation.
//
// Library code never throws. Functions that can fail for data-dependent
// reasons (I/O, parsing, invalid user configuration) return Status or
// StatusOr<T>. Programming errors use KGC_CHECK.

#ifndef KGC_UTIL_STATUS_H_
#define KGC_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace kgc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

/// A success-or-error result carrying a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Access to the value when the
/// status is not OK is a checked fatal error.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    KGC_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    KGC_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    KGC_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    KGC_CHECK(ok());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace kgc

/// Propagates a non-OK Status to the caller.
#define KGC_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::kgc::Status kgc_status_tmp_ = (expr);  \
    if (!kgc_status_tmp_.ok()) {             \
      return kgc_status_tmp_;                \
    }                                        \
  } while (0)

#endif  // KGC_UTIL_STATUS_H_
