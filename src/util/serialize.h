// Binary serialization for model checkpoints and dataset caches.
//
// Little-endian, fixed-width primitives with a magic header and version tag.
// Readers validate bounds; corrupted files surface as Status errors, never
// undefined behaviour.
//
// Every file written by BinaryWriter::Flush carries an 8-byte integrity
// footer (magic "KCRC" + CRC-32 of the payload) and lands via a crash-safe
// write-temp/fsync/rename protocol; BinaryReader::FromFile verifies and
// strips the footer, so truncation and bit-rot are detected at load time.

#ifndef KGC_UTIL_SERIALIZE_H_
#define KGC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgc {

/// Accumulates primitives into an in-memory byte buffer.
class BinaryWriter {
 public:
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI32(int32_t value) { WriteU32(static_cast<uint32_t>(value)); }
  void WriteI64(int64_t value) { WriteU64(static_cast<uint64_t>(value)); }
  void WriteDouble(double value);
  void WriteFloat(float value);
  void WriteString(const std::string& value);
  void WriteDoubleVector(const std::vector<double>& values);
  void WriteFloatVector(std::span<const float> values);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  /// Writes the buffer to `path` atomically (write temp + fsync + rename),
  /// appending the CRC-32 integrity footer. Transient I/O errors are
  /// retried with backoff.
  Status Flush(const std::string& path) const;

 private:
  void Append(const void* data, size_t size);

  std::vector<uint8_t> buffer_;
};

/// Reads primitives back from a byte buffer with bounds checking.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> buffer)
      : buffer_(std::move(buffer)) {}

  /// Loads the full content of `path`, verifying and stripping the CRC-32
  /// footer. kNotFound if absent; kIoError if the footer is missing (a
  /// truncated or pre-footer file) or the checksum does not match.
  static StatusOr<BinaryReader> FromFile(const std::string& path);

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int32_t> ReadI32();
  StatusOr<int64_t> ReadI64();
  StatusOr<double> ReadDouble();
  StatusOr<float> ReadFloat();
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<double>> ReadDoubleVector();
  StatusOr<std::vector<float>> ReadFloatVector();

  bool AtEnd() const { return position_ == buffer_.size(); }

  /// Bytes left to read; lets loaders sanity-check declared element counts
  /// against the actual payload size before allocating.
  size_t remaining() const { return buffer_.size() - position_; }

 private:
  Status ReadBytes(void* out, size_t size);

  std::vector<uint8_t> buffer_;
  size_t position_ = 0;
};

}  // namespace kgc

#endif  // KGC_UTIL_SERIALIZE_H_
