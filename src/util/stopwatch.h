// Wall-clock stopwatch for coarse experiment timing.

#ifndef KGC_UTIL_STOPWATCH_H_
#define KGC_UTIL_STOPWATCH_H_

#include <chrono>

namespace kgc {

/// Measures elapsed wall time. Starts running at construction; Stop() /
/// Start() pause and resume, accumulating across segments (span rollups
/// time paused phases this way). Elapsed readings include the in-progress
/// segment, so code written against the original always-running API
/// behaves identically.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Discards accumulated time and restarts from now.
  void Reset() {
    accumulated_ = Duration::zero();
    running_ = true;
    start_ = Clock::now();
  }

  /// Pauses; elapsed time freezes until Start(). No-op if already stopped.
  void Stop() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Resumes after Stop(). No-op if already running.
  void Start() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  /// Accumulated elapsed seconds (including the running segment, if any).
  double ElapsedSeconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  /// Accumulated elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;
  Clock::time_point start_;
  Duration accumulated_ = Duration::zero();
  bool running_ = true;
};

}  // namespace kgc

#endif  // KGC_UTIL_STOPWATCH_H_
