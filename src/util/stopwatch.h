// Wall-clock stopwatch for coarse experiment timing.

#ifndef KGC_UTIL_STOPWATCH_H_
#define KGC_UTIL_STOPWATCH_H_

#include <chrono>

namespace kgc {

/// Measures elapsed wall time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since start.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kgc

#endif  // KGC_UTIL_STOPWATCH_H_
