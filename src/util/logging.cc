#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "obs/trace.h"

namespace kgc {
namespace {

// kUnset until the first emission (or SetLogLevel) resolves the level; the
// env var is consulted exactly once.
constexpr int kUnset = -1;
std::atomic<int> g_log_level{kUnset};

int ResolveLevel() {
  int level = g_log_level.load(std::memory_order_relaxed);
  if (level != kUnset) return level;
  level = static_cast<int>(LogLevel::kInfo);
  if (const char* env = std::getenv("KGC_LOG_LEVEL");
      env != nullptr && env[0] != '\0') {
    LogLevel parsed;
    if (ParseLogLevel(env, &parsed)) {
      level = static_cast<int>(parsed);
    } else {
      std::fprintf(stderr,
                   "[WARN] KGC_LOG_LEVEL: unknown level '%s' "
                   "(expected debug|info|warning|error)\n",
                   env);
    }
  }
  int expected = kUnset;
  g_log_level.compare_exchange_strong(expected, level,
                                      std::memory_order_relaxed);
  return g_log_level.load(std::memory_order_relaxed);
}

void Emit(LogLevel level, const char* tag, const char* format, va_list args) {
  if (static_cast<int>(level) < ResolveLevel()) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &utc);

  // One vsnprintf into a local buffer, then a single fprintf, so concurrent
  // log lines never interleave mid-line.
  char message[1024];
  std::vsnprintf(message, sizeof(message), format, args);
  std::fprintf(stderr, "[%s.%03dZ] [%s] [t%d] %s\n", stamp, millis, tag,
               obs::ThreadId(), message);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(ResolveLevel()); }

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

#define KGC_DEFINE_LOG_FN(Name, level, tag)         \
  void Name(const char* format, ...) {              \
    va_list args;                                   \
    va_start(args, format);                         \
    Emit(level, tag, format, args);                 \
    va_end(args);                                   \
  }

KGC_DEFINE_LOG_FN(LogDebug, LogLevel::kDebug, "DEBUG")
KGC_DEFINE_LOG_FN(LogInfo, LogLevel::kInfo, "INFO")
KGC_DEFINE_LOG_FN(LogWarning, LogLevel::kWarning, "WARN")
KGC_DEFINE_LOG_FN(LogError, LogLevel::kError, "ERROR")

#undef KGC_DEFINE_LOG_FN

}  // namespace kgc
