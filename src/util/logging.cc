#include "util/logging.h"

#include <cstdarg>
#include <cstdio>

namespace kgc {
namespace {

LogLevel g_log_level = LogLevel::kInfo;

void Emit(LogLevel level, const char* tag, const char* format, va_list args) {
  if (level < g_log_level) return;
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, format, args);
  std::fputc('\n', stderr);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

#define KGC_DEFINE_LOG_FN(Name, level, tag)         \
  void Name(const char* format, ...) {              \
    va_list args;                                   \
    va_start(args, format);                         \
    Emit(level, tag, format, args);                 \
    va_end(args);                                   \
  }

KGC_DEFINE_LOG_FN(LogDebug, LogLevel::kDebug, "DEBUG")
KGC_DEFINE_LOG_FN(LogInfo, LogLevel::kInfo, "INFO")
KGC_DEFINE_LOG_FN(LogWarning, LogLevel::kWarning, "WARN")
KGC_DEFINE_LOG_FN(LogError, LogLevel::kError, "ERROR")

#undef KGC_DEFINE_LOG_FN

}  // namespace kgc
