// Process resource queries.

#ifndef KGC_UTIL_RESOURCE_H_
#define KGC_UTIL_RESOURCE_H_

#include <sys/resource.h>

#include <cstdint>

namespace kgc {

/// High-water-mark resident set size of this process in bytes (0 if the
/// query fails). Monotone over the process lifetime.
inline uint64_t PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kibibytes.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace kgc

#endif  // KGC_UTIL_RESOURCE_H_
