// ParallelFor: deterministic data-parallel loops over the shared thread
// pool.
//
// The contract is "same bytes out, N× faster": a loop parallelized with
// ParallelFor must produce output that is bit-identical for every thread
// count, including 1. Two properties make that easy to uphold:
//
//   1. Static range sharding. The index range [0, n) is split into S
//      contiguous shards with boundaries n*s/S — a pure function of (n, S).
//      There is no work stealing and no dynamic chunking, so which indexes
//      land together is reproducible run to run.
//   2. Shard-indexed scratch. The body receives its shard index, so callers
//      keep one scratch buffer (score arrays, local result vectors,
//      partial counters) per shard — sized with PlannedShards — and merge
//      them in shard order afterwards. Merging in shard order yields the
//      exact sequence a serial loop would have produced.
//
// Thread count resolution: an explicit `threads` argument wins; 0 defers to
// DefaultThreadCount(), which reads the KGC_THREADS environment variable
// (once, on first use) and falls back to std::thread::hardware_concurrency.
//
// Nested ParallelFor calls — a body spawning another ParallelFor — are
// rejected down to serial execution on the calling worker. The inner loop
// still runs and still honors the determinism contract (it executes as a
// single shard); it simply does not multiply the worker count.

#ifndef KGC_UTIL_PARALLEL_H_
#define KGC_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace kgc {

/// Threads from KGC_THREADS (if >= 1) else hardware_concurrency; always >= 1.
int DefaultThreadCount();

namespace internal_parallel {
inline thread_local bool in_parallel_region = false;
}  // namespace internal_parallel

/// True while the calling thread is executing a ParallelFor shard.
inline bool InParallelRegion() {
  return internal_parallel::in_parallel_region;
}

/// `threads` if positive, else DefaultThreadCount().
inline int ResolveThreadCount(int threads) {
  return threads > 0 ? threads : DefaultThreadCount();
}

/// Number of shards ParallelFor(n, threads, ...) partitions [0, n) into:
/// min(resolved thread count, n), or 0 when n == 0. Size per-shard scratch
/// with this. Every shard is non-empty.
inline int PlannedShards(size_t n, int threads = 0) {
  if (n == 0) return 0;
  return static_cast<int>(
      std::min(n, static_cast<size_t>(ResolveThreadCount(threads))));
}

/// Runs body(begin, end, shard) over the static partition of [0, n) into
/// PlannedShards(n, threads) contiguous shards. Shard 0 executes on the
/// calling thread; the rest on the shared pool. Returns after every shard
/// completes. With n == 0 the body is never called; nested calls and
/// single-shard plans execute serially inline.
inline void ParallelFor(size_t n, int threads,
                        const std::function<void(size_t, size_t, int)>& body) {
  const int planned = PlannedShards(n, threads);
  if (planned == 0) return;
  if (planned == 1 || internal_parallel::in_parallel_region) {
    obs::TraceSpan span("parallel_for.shard");
    span.AddArgInt("shard", 0);
    span.AddArgInt("n", static_cast<long long>(n));
    body(0, n, 0);
    return;
  }
  const size_t shards = static_cast<size_t>(planned);
  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureWorkers(planned - 1);

  std::mutex mutex;
  std::condition_variable all_done;
  size_t remaining = shards - 1;
  for (size_t s = 1; s < shards; ++s) {
    pool.Submit([&, s] {
      internal_parallel::in_parallel_region = true;
      {
        obs::TraceSpan span("parallel_for.shard");
        span.AddArgInt("shard", static_cast<long long>(s));
        span.AddArgInt("begin", static_cast<long long>(n * s / shards));
        span.AddArgInt("end", static_cast<long long>(n * (s + 1) / shards));
        body(n * s / shards, n * (s + 1) / shards, static_cast<int>(s));
      }
      internal_parallel::in_parallel_region = false;
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) all_done.notify_one();
    });
  }
  internal_parallel::in_parallel_region = true;
  {
    obs::TraceSpan span("parallel_for.shard");
    span.AddArgInt("shard", 0);
    span.AddArgInt("begin", 0);
    span.AddArgInt("end", static_cast<long long>(n / shards));
    body(0, n / shards, 0);
  }
  internal_parallel::in_parallel_region = false;
  std::unique_lock<std::mutex> lock(mutex);
  all_done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace kgc

#endif  // KGC_UTIL_PARALLEL_H_
