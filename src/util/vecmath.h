// Vectorized scoring-kernel library: the math primitives under every
// model's Score / ScoreTails / ScoreHeads and the trainer's row updates.
//
// Numerics contract
// -----------------
// Every reduction (dot, distances, sums) accumulates in double across
// kReduceLanes fixed lanes: lane k owns elements k, k+kReduceLanes, ... in
// order, and the lanes are combined with one fixed binary tree at the end.
// That order is a pure function of the element count — it never depends on
// thread count, dispatch path, or call site — so kernel results are
// bit-identical run to run and across KGC_THREADS. Element-wise kernels
// (axpy, scale, hadamard, row updates) have no reduction and are trivially
// deterministic.
//
// Dispatch
// --------
// Two translation units compile the same kernel source: a generic TU
// (baseline ISA) and, where the toolchain and CPU support it, a
// -march=x86-64-v3 TU (AVX2). Both are built with -ffp-contract=off so
// neither can fuse multiply-adds, which is what makes the two paths agree
// bit-exactly: wider registers only evaluate more lanes at once, they never
// change any lane's operation sequence. Dispatch is opt-in via the
// KGC_KERNEL environment variable ("generic", the default, or "native"),
// resolved once on first use; tests pin both paths' agreement.
//
// Scratch
// -------
// GetScratch hands out per-thread reusable buffers so the scoring hot path
// never touches the heap per call. Slots are per call frame by convention:
// a function may use any slots it likes but must not call another function
// that uses the same slot while the span is live.

#ifndef KGC_UTIL_VECMATH_H_
#define KGC_UTIL_VECMATH_H_

#include <cstddef>
#include <span>

namespace kgc::vec {

/// Fixed number of reduction lanes (see the numerics contract above).
/// Exposed so tests can probe dims of kReduceLanes ± 1.
inline constexpr size_t kReduceLanes = 8;

/// Number of independent per-thread scratch slots.
inline constexpr int kScratchSlots = 6;

/// The kernel table one dispatch path provides. All `rows` pointers walk
/// `num_rows` rows of `stride` floats, reading the first `dim` of each —
/// exactly the contiguous layout of EmbeddingTable storage.
struct KernelOps {
  /// Human-readable path name ("generic" / "native").
  const char* name;

  /// sum_j a[j] * b[j], accumulated in double.
  double (*dot)(const float* a, const float* b, size_t n);

  /// sum_j a[j], accumulated in double.
  double (*sum)(const float* a, size_t n);

  /// y[j] += alpha * x[j] (element-wise, no reduction).
  void (*axpy)(float alpha, const float* x, float* y, size_t n);

  /// x[j] *= s.
  void (*scale)(float* x, size_t n, float s);

  /// out[i] = dot(q, row_i).
  void (*dot_rows)(const float* q, const float* rows, size_t num_rows,
                   size_t stride, size_t dim, float* out);

  /// out[i] = dot(a_row_i, b_row_i) — paired rows of two tables.
  void (*rowwise_dot)(const float* a_rows, size_t a_stride,
                      const float* b_rows, size_t b_stride, size_t num_rows,
                      size_t dim, float* out);

  /// out[i] = sum_j |q[j] - row_i[j]|.
  void (*l1_rows)(const float* q, const float* rows, size_t num_rows,
                  size_t stride, size_t dim, float* out);

  /// out[i] = sqrt(sum_j (q[j] - row_i[j])^2).
  void (*l2_rows)(const float* q, const float* rows, size_t num_rows,
                  size_t stride, size_t dim, float* out);

  /// out[i] = sum_j |q[j] + coef_scale * coef[i] * v[j] - row_i[j]| — the
  /// hyperplane/diagonal-projection form shared by TransH and TransD.
  void (*l1_offset_rows)(const float* q, const float* v, const float* coef,
                         float coef_scale, const float* rows, size_t num_rows,
                         size_t stride, size_t dim, float* out);

  /// L2 (sqrt) variant of l1_offset_rows.
  void (*l2_offset_rows)(const float* q, const float* v, const float* coef,
                         float coef_scale, const float* rows, size_t num_rows,
                         size_t stride, size_t dim, float* out);

  /// Complex modulus distance (RotatE): rows and q hold half_dim real parts
  /// then half_dim imaginary parts; out[i] = sum_j |q_j - row_i_j| over the
  /// complex elements (sqrt of the 2-D squared distance per element).
  void (*cabs_rows)(const float* q, const float* rows, size_t num_rows,
                    size_t stride, size_t half_dim, float* out);

  /// Blocked multi-query variants: num_q query vectors (qs walks `q_stride`
  /// floats per query) against the same rows, writing num_q score rows of
  /// `out_stride` floats each: out[qi * out_stride + i] = kernel(q_qi, row_i).
  /// The inner (per-query) loop runs inside the row loop so each embedding
  /// row is loaded once per tile and scored against the whole query block.
  /// Per (query, row) the reduction is the same Reduce() expression as the
  /// single-query kernel above, so scores are bit-exact vs that path.
  void (*dot_rows_block)(const float* qs, size_t q_stride, size_t num_q,
                         const float* rows, size_t num_rows, size_t stride,
                         size_t dim, float* out, size_t out_stride);

  /// Blocked l1_rows (see dot_rows_block for the layout contract).
  void (*l1_rows_block)(const float* qs, size_t q_stride, size_t num_q,
                        const float* rows, size_t num_rows, size_t stride,
                        size_t dim, float* out, size_t out_stride);

  /// Blocked l2_rows.
  void (*l2_rows_block)(const float* qs, size_t q_stride, size_t num_q,
                        const float* rows, size_t num_rows, size_t stride,
                        size_t dim, float* out, size_t out_stride);

  /// Blocked l1_offset_rows. The per-row coefficient array is shared by the
  /// whole query block: coef[i] depends only on the relation and row (w·e_i
  /// for TransH, p_t·t for TransD), never on the query.
  void (*l1_offset_rows_block)(const float* qs, size_t q_stride, size_t num_q,
                               const float* v, const float* coef,
                               float coef_scale, const float* rows,
                               size_t num_rows, size_t stride, size_t dim,
                               float* out, size_t out_stride);

  /// Blocked l2_offset_rows.
  void (*l2_offset_rows_block)(const float* qs, size_t q_stride, size_t num_q,
                               const float* v, const float* coef,
                               float coef_scale, const float* rows,
                               size_t num_rows, size_t stride, size_t dim,
                               float* out, size_t out_stride);

  /// Blocked cabs_rows (q_stride covers the full 2 * half_dim layout).
  void (*cabs_rows_block)(const float* qs, size_t q_stride, size_t num_q,
                          const float* rows, size_t num_rows, size_t stride,
                          size_t half_dim, float* out, size_t out_stride);

  /// Complex Hadamard product in split re/im layout: out = a ∘ b, or
  /// conj(a) ∘ b when conj_a is set. Element-wise, no reduction.
  void (*complex_hadamard)(const float* a, const float* b, size_t half_dim,
                           bool conj_a, float* out);

  /// Fused SGD row update: p[j] -= lr * clamp(gscale * g[j], ±5), matching
  /// EmbeddingTable::Update element for element.
  void (*sgd_update_row)(float* p, const float* g, float gscale, size_t n,
                         float lr);

  /// Fused AdaGrad row update: gc = clamp(gscale * g[j], ±5);
  /// acc[j] += gc^2; p[j] -= lr * gc / sqrt(acc[j] + 1e-8f).
  void (*adagrad_update_row)(float* p, float* acc, const float* g,
                             float gscale, size_t n, float lr);
};

enum class KernelPath { kGeneric = 0, kNative = 1 };

/// The active kernel table. Resolved once from KGC_KERNEL ("generic"
/// default; "native" opts into the -march TU when compiled in and the CPU
/// supports it, falling back to generic with a warning otherwise).
const KernelOps& Ops();

/// True when the -march TU was compiled in and this CPU can run it.
bool NativeKernelsAvailable();

/// The table for an explicit path; kNative falls back to generic when
/// unavailable. Lets tests and benchmarks compare paths directly.
const KernelOps& OpsFor(KernelPath path);

/// Overrides the active table (not thread-safe; call before spawning
/// parallel work). Used by tests and the kernel benchmark sections.
void SetKernelPathForTest(KernelPath path);

/// Per-thread reusable scratch: n floats, 64-byte aligned, valid until the
/// next GetScratch call with the same slot on this thread. Contents are
/// unspecified on entry.
std::span<float> GetScratch(size_t n, int slot = 0);

/// out[j] = -out[j]. Element-wise sign flip used to turn kernel distances
/// into scores; cheap enough that it needs no dispatch.
inline void Negate(std::span<float> out) {
  for (float& v : out) v = -v;
}

// Convenience forwarders through the active table.
inline double Dot(const float* a, const float* b, size_t n) {
  return Ops().dot(a, b, n);
}
inline double Sum(const float* a, size_t n) { return Ops().sum(a, n); }
inline void Axpy(float alpha, const float* x, float* y, size_t n) {
  Ops().axpy(alpha, x, y, n);
}

}  // namespace kgc::vec

#endif  // KGC_UTIL_VECMATH_H_
