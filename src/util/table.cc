#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace kgc {
namespace {

std::string RepeatChar(char c, size_t n) { return std::string(n, c); }

std::string RenderSeparator(const std::vector<size_t>& widths) {
  std::string line = "+";
  for (size_t width : widths) {
    line += RepeatChar('-', width + 2);
    line += "+";
  }
  line += "\n";
  return line;
}

std::string RenderRow(const std::vector<std::string>& cells,
                      const std::vector<size_t>& widths) {
  std::string line = "|";
  for (size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string();
    line += " ";
    line += cell;
    line += RepeatChar(' ', widths[i] - cell.size());
    line += " |";
  }
  line += "\n";
  return line;
}

}  // namespace

void AsciiTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*is_separator=*/false});
}

void AsciiTable::AddSeparator() {
  rows_.push_back(Row{{}, /*is_separator=*/true});
}

std::string AsciiTable::ToString() const {
  size_t num_columns = header_.size();
  for (const Row& row : rows_) {
    num_columns = std::max(num_columns, row.cells.size());
  }
  std::vector<size_t> widths(num_columns, 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = std::max(widths[i], header_[i].size());
  }
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += "\n";
  }
  const std::string separator = RenderSeparator(widths);
  out += separator;
  if (!header_.empty()) {
    out += RenderRow(header_, widths);
    out += separator;
  }
  for (const Row& row : rows_) {
    out += row.is_separator ? separator : RenderRow(row.cells, widths);
  }
  out += separator;
  return out;
}

void AsciiTable::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace kgc
