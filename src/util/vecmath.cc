// Kernel dispatch and per-thread scratch for util/vecmath.h.

#include "util/vecmath.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/aligned.h"

namespace kgc::vec {

// Provided by vecmath_generic.cc / vecmath_native.cc; the native one
// returns nullptr when the -march TU was not compiled in.
const KernelOps* GetGenericOpsImpl();
const KernelOps* GetNativeOpsImpl();

namespace {

bool CpuSupportsNative() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("x86-64-v3") != 0;
#else
  return false;
#endif
}

const KernelOps* ResolveFromEnv() {
  const char* env = std::getenv("KGC_KERNEL");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "generic") == 0) {
    return GetGenericOpsImpl();
  }
  if (std::strcmp(env, "native") == 0) {
    if (NativeKernelsAvailable()) return GetNativeOpsImpl();
    std::fprintf(stderr,
                 "[kgc] KGC_KERNEL=native requested but native kernels are "
                 "unavailable on this build/CPU; using generic kernels\n");
    return GetGenericOpsImpl();
  }
  std::fprintf(stderr,
               "[kgc] unknown KGC_KERNEL value \"%s\" (expected \"generic\" "
               "or \"native\"); using generic kernels\n",
               env);
  return GetGenericOpsImpl();
}

std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

bool NativeKernelsAvailable() {
  return GetNativeOpsImpl() != nullptr && CpuSupportsNative();
}

const KernelOps& Ops() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // ResolveFromEnv is deterministic, so a first-use race between threads
    // resolves to the same table either way.
    ops = ResolveFromEnv();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

const KernelOps& OpsFor(KernelPath path) {
  if (path == KernelPath::kNative && NativeKernelsAvailable()) {
    return *GetNativeOpsImpl();
  }
  return *GetGenericOpsImpl();
}

void SetKernelPathForTest(KernelPath path) {
  g_active.store(&OpsFor(path), std::memory_order_release);
}

std::span<float> GetScratch(size_t n, int slot) {
  static thread_local AlignedVector<float> buffers[kScratchSlots];
  AlignedVector<float>& buf = buffers[slot];
  if (buf.size() < n) buf.resize(n);
  return {buf.data(), n};
}

}  // namespace kgc::vec
