// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (data generation, negative
// sampling, initialization, shuffling) draws from an explicitly seeded Rng so
// that experiments are bit-reproducible across runs and machines.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.

#ifndef KGC_UTIL_RNG_H_
#define KGC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace kgc {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    KGC_DCHECK(bound > 0);
    // Debiased multiply-shift (Lemire).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KGC_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; the pair's second
  /// half is cached).
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    while (u1 <= 1e-300) u1 = UniformDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = Uniform(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    KGC_CHECK_LE(k, n);
    // Floyd's algorithm would need a set; for our sizes a partial
    // Fisher-Yates over an index vector is simpler and fast enough.
    std::vector<size_t> indices(n);
    for (size_t i = 0; i < n; ++i) indices[i] = i;
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + Uniform(n - i);
      std::swap(indices[i], indices[j]);
    }
    indices.resize(k);
    return indices;
  }

  /// Derives an independent child generator; used to give each component its
  /// own stream from one experiment seed.
  Rng Fork(uint64_t stream_id) {
    uint64_t sm = Next() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(SplitMix64(sm));
  }

  /// Complete generator state, snapshot-able for checkpoint/resume. The
  /// Box-Muller cache rides along so restored streams replay bit-exactly.
  struct State {
    uint64_t words[4];
    bool has_cached_normal;
    double cached_normal;
  };

  State state() const {
    State snapshot{};
    for (int i = 0; i < 4; ++i) snapshot.words[i] = state_[i];
    snapshot.has_cached_normal = has_cached_normal_;
    snapshot.cached_normal = cached_normal_;
    return snapshot;
  }

  void set_state(const State& snapshot) {
    for (int i = 0; i < 4; ++i) state_[i] = snapshot.words[i];
    has_cached_normal_ = snapshot.has_cached_normal;
    cached_normal_ = snapshot.cached_normal;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace kgc

#endif  // KGC_UTIL_RNG_H_
