#include "util/thread_pool.h"

#include <cstdlib>

#include "util/parallel.h"

namespace kgc {

ThreadPool::ThreadPool(int num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::EnsureWorkers(int num_workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < num_workers) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before honoring shutdown so destruction never
      // strands a submitted job (ParallelFor waits on every shard).
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Meyers singleton: destroyed (and its workers joined) at process exit,
  // which keeps TSan/ASan exit reports clean.
  static ThreadPool pool(DefaultThreadCount() - 1);
  return pool;
}

int DefaultThreadCount() {
  static const int count = [] {
    if (const char* env = std::getenv("KGC_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed >= 1) return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
  }();
  return count;
}

}  // namespace kgc
