// Failpoint registry for fault-injection testing of the I/O layer.
//
// The low-level file helpers (AtomicWriteFile, ReadFileBytes, the rename in
// the atomic-write protocol) consult this singleton before every operation;
// an armed failpoint makes the next matching operation(s) fail the way real
// storage fails: a torn write that persists only a prefix, a short read, an
// out-of-space error, a rename that never lands. Tests arm failpoints
// programmatically; end-to-end runs can arm them through the KGC_FAULTS
// environment variable (parsed once, on first use):
//
//   KGC_FAULTS=<kind>[@<site>][:times=<n>][:skip=<n>][:bytes=<n>][:ms=<n>]
//              [,<kind>...]
//
//   kind   one of torn_write, short_read, enospc, rename_fail, mkdir_fail,
//          stall, crash
//   site   optional named failpoint ("rotate:manifest", "publish:current");
//          when present the entry arms that site instead of the kind's
//          global I/O-layer slot. Site names may contain ':' — trailing
//          key=value fields are parsed as options, everything before them
//          is the kind@site token.
//   times  how many matching operations fail (default 1)
//   skip   how many matching operations succeed first (default 0)
//   bytes  for torn_write: prefix bytes persisted before the failure
//   ms     for stall: milliseconds the phase boundary sleeps
//
// e.g. KGC_FAULTS=torn_write:bytes=64,short_read:times=2:skip=1
//      KGC_FAULTS=crash@rotate:manifest,enospc@publish:current:times=2
//
// Named sites drive multi-step protocols (snapshot rotation) whose
// individual steps must each be killable: the protocol code consults
// ShouldFailAt("rotate:manifest") before the step, and the armed kind
// decides how it dies — `crash` hard-exits the process mid-protocol,
// any other kind surfaces as an injected I/O error at that step.
//
// `stall` and `crash` fire at phase boundaries (util/deadline.h) rather
// than in the I/O layer: `stall` sleeps the boundary for `ms` milliseconds
// (driving watchdog timeouts), `crash` aborts the process mid-phase
// (driving supervisor crash recovery). `mkdir_fail` fails directory
// creation in MakeDirectories.
//
// All cache I/O runs on the serial training/caching path (parallel workers
// only compute; see DESIGN.md "Execution engine"), so the registry is
// deliberately lock-free and must not be armed concurrently with I/O.

#ifndef KGC_UTIL_FAULT_INJECTOR_H_
#define KGC_UTIL_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace kgc {

enum class FaultKind : int {
  kTornWrite = 0,   ///< write persists a prefix, then fails
  kShortRead = 1,   ///< read returns fewer bytes than the file holds
  kEnospc = 2,      ///< write fails up front (device full)
  kRenameFail = 3,  ///< atomic-write rename never happens
  kMkdirFail = 4,   ///< directory creation fails
  kStall = 5,       ///< phase boundary sleeps `ms` milliseconds
  kCrash = 6,       ///< phase boundary aborts the process
};
inline constexpr int kNumFaultKinds = 7;

/// Parses a fault kind name ("torn_write", ...); returns false on unknown.
bool ParseFaultKind(const std::string& name, FaultKind* kind);

class FaultInjector {
 public:
  /// The process-wide injector. Arms from KGC_FAULTS on first call.
  static FaultInjector& Get();

  /// Arms a failpoint: after `skip` successful matching operations, the
  /// next `times` ones fail. `payload` carries kind-specific data (torn
  /// write: bytes persisted before failing).
  void Arm(FaultKind kind, int times = 1, int skip = 0, int64_t payload = 0);

  void Disarm(FaultKind kind);
  void DisarmAll();

  /// True and consumes one armed failure if the operation should fail;
  /// `payload` (may be null) receives the armed payload.
  bool ShouldFail(FaultKind kind, int64_t* payload = nullptr);

  /// Total matching operations consulted since construction / DisarmAll.
  int64_t ops_seen(FaultKind kind) const;

  /// Remaining failures armed for `kind` (0 = disarmed or exhausted).
  int times_remaining(FaultKind kind) const;

  /// Arms failpoints from a spec string (see header comment). Unknown or
  /// malformed entries are skipped; returns false if any were.
  bool ArmFromSpec(const std::string& spec);

  /// Arms a named failpoint site. The armed `kind` is reported back by
  /// ShouldFailAt so the protocol code can pick the matching failure mode
  /// (crash vs I/O error vs stall).
  void ArmSite(const std::string& site, FaultKind kind, int times = 1,
               int skip = 0, int64_t payload = 0);

  void DisarmSite(const std::string& site);

  /// True and consumes one armed failure if the named site should fail;
  /// `kind` / `payload` (may be null) receive what was armed.
  bool ShouldFailAt(const std::string& site, FaultKind* kind = nullptr,
                    int64_t* payload = nullptr);

  /// Remaining failures armed for `site` (0 = disarmed or exhausted).
  int site_times_remaining(const std::string& site) const;

 private:
  FaultInjector() = default;

  struct Slot {
    int times = 0;
    int skip = 0;
    int64_t payload = 0;
    int64_t seen = 0;
  };
  struct SiteSlot {
    FaultKind kind = FaultKind::kEnospc;
    Slot slot;
  };
  std::array<Slot, kNumFaultKinds> slots_;
  std::map<std::string, SiteSlot> sites_;
};

}  // namespace kgc

#endif  // KGC_UTIL_FAULT_INJECTOR_H_
