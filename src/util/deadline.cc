#include "util/deadline.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/resource_stats.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace kgc {
namespace {

using Clock = std::chrono::steady_clock;

// All state is process-global: one budget, one phase clock, one heartbeat.
// Atomics + a mutex on the heartbeat string keep concurrent readers (a
// crash handler on another thread) safe even though writers are serial.
std::atomic<double> g_budget_seconds{0.0};
std::atomic<int64_t> g_phase_start_ns{0};
std::mutex g_heartbeat_mutex;
std::string g_heartbeat;  // guarded by g_heartbeat_mutex

std::atomic<DeadlineHandler> g_test_handler{nullptr};

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

void RecordHeartbeat(const char* name) {
  std::lock_guard<std::mutex> lock(g_heartbeat_mutex);
  g_heartbeat = name;
}

}  // namespace

Deadline::Deadline() {
  if (const char* env = std::getenv("KGC_PHASE_TIMEOUT_S")) {
    const double seconds = std::atof(env);
    if (seconds > 0) {
      g_budget_seconds.store(seconds, std::memory_order_relaxed);
      LogInfo("phase deadline armed: %.1fs per phase (KGC_PHASE_TIMEOUT_S)",
              seconds);
    }
  }
}

Deadline& Deadline::Global() {
  static Deadline* deadline = new Deadline();
  return *deadline;
}

void Deadline::SetPhaseBudget(double seconds) {
  g_budget_seconds.store(seconds, std::memory_order_relaxed);
}

double Deadline::phase_budget() const {
  return g_budget_seconds.load(std::memory_order_relaxed);
}

void Deadline::BeginPhase(const char* name) {
  g_phase_start_ns.store(NowNanos(), std::memory_order_relaxed);
  RecordHeartbeat(name);
  // Phase boundaries double as resource-accounting boundaries: opening a
  // phase closes the previous one, so the run report's per-phase CPU /
  // fault / I/O deltas partition the run exactly like the deadline phases.
  obs::BeginPhaseResources(name);
}

double Deadline::PhaseElapsedSeconds() const {
  const int64_t start = g_phase_start_ns.load(std::memory_order_relaxed);
  if (start == 0) return 0.0;
  return static_cast<double>(NowNanos() - start) * 1e-9;
}

bool Deadline::Expired() const {
  const double budget = phase_budget();
  return budget > 0 && PhaseElapsedSeconds() > budget;
}

std::string Deadline::last_heartbeat() const {
  std::lock_guard<std::mutex> lock(g_heartbeat_mutex);
  return g_heartbeat;
}

DeadlinePhase::DeadlinePhase(const char* name) {
  if (InParallelRegion()) return;
  Deadline::Global().BeginPhase(name);
}

void HandleDeadlineExpiry(const char* phase) {
  static obs::Counter& expired =
      obs::Registry::Get().GetCounter(obs::kDeadlineExpired);
  expired.Increment();
  if (DeadlineHandler handler =
          g_test_handler.load(std::memory_order_acquire)) {
    handler(phase);
    return;
  }
  Deadline& deadline = Deadline::Global();
  LogError("phase '%s' exceeded its %.1fs deadline after %.1fs; exiting "
           "with code %d (resumable)",
           phase, deadline.phase_budget(), deadline.PhaseElapsedSeconds(),
           kDeadlineExitCode);
  obs::SetRunExitCause(std::string("deadline:") + phase);
  // std::exit (not _exit) so atexit hooks run: the bench harness flushes
  // the run report and the trace with the recorded cause.
  std::exit(kDeadlineExitCode);
}

bool PhaseCheck(const char* phase) {
  if (InParallelRegion()) return false;
  RecordHeartbeat(phase);
  FaultInjector& faults = FaultInjector::Get();
  int64_t stall_ms = 0;
  if (faults.ShouldFail(FaultKind::kStall, &stall_ms)) {
    LogWarning("stalling %lld ms at phase boundary '%s' (injected)",
               static_cast<long long>(stall_ms), phase);
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  if (faults.ShouldFail(FaultKind::kCrash)) {
    LogError("crashing at phase boundary '%s' (injected)", phase);
    std::abort();
  }
  return Deadline::Global().Expired();
}

void PhaseBoundary(const char* phase) {
  if (PhaseCheck(phase)) HandleDeadlineExpiry(phase);
}

void SetDeadlineHandlerForTest(DeadlineHandler handler) {
  g_test_handler.store(handler, std::memory_order_release);
}

}  // namespace kgc
