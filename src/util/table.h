// ASCII table rendering for experiment reports.
//
// The bench harness reproduces the paper's tables; AsciiTable renders aligned
// monospace tables with an optional title, e.g.
//
//   Table 5: Link prediction results on FB15k and FB15k-237
//   +--------+------+----------+ ...
//   | Model  | FMR  | FHits@10 | ...
//   +--------+------+----------+ ...

#ifndef KGC_UTIL_TABLE_H_
#define KGC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace kgc {

/// Builds and renders a monospace table.
class AsciiTable {
 public:
  AsciiTable() = default;
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header; missing
  /// cells render empty.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator at the current position.
  void AddSeparator();

  /// Renders the table to a string (trailing newline included).
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace kgc

#endif  // KGC_UTIL_TABLE_H_
