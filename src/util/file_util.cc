#include "util/file_util.h"

#include <sys/stat.h>

#include <cstdio>
#include <filesystem>

#include "util/string_util.h"

namespace kgc {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(file);
    return Status::IoError("cannot stat: " + path);
  }
  std::string content(static_cast<size_t>(size), '\0');
  const size_t read =
      content.empty() ? 0 : std::fread(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (read != content.size()) {
    return Status::IoError("short read: " + path);
  }
  return content;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  const size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), file);
  const int close_result = std::fclose(file);
  if (written != content.size() || close_result != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  std::vector<std::string> lines = Split(*content, '\n');
  // A trailing newline produces one empty final field; drop it.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

Status MakeDirectories(const std::string& path) {
  std::error_code error;
  std::filesystem::create_directories(path, error);
  if (error) {
    return Status::IoError("mkdir failed: " + path + ": " + error.message());
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat info {};
  return ::stat(path.c_str(), &info) == 0 && S_ISREG(info.st_mode);
}

}  // namespace kgc
