#include "util/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "obs/metrics.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgc {
namespace {

// Syncs an open stream's data to stable storage. Flushes stdio buffers
// first so fsync sees every byte.
Status FlushAndSync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError("flush failed: " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    return Status::IoError("fsync failed: " + path);
  }
  return Status::Ok();
}

// Syncs the directory entry for `path` so the rename itself is durable.
void SyncParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(file);
    return Status::IoError("cannot stat: " + path);
  }
  std::vector<uint8_t> buffer(static_cast<size_t>(size));
  size_t read =
      buffer.empty() ? 0 : std::fread(buffer.data(), 1, buffer.size(), file);
  std::fclose(file);
  if (FaultInjector::Get().ShouldFail(FaultKind::kShortRead)) {
    read = read / 2;
  }
  if (read != buffer.size()) {
    return Status::IoError(StrFormat("short read: %s (%zu of %zu bytes)",
                                     path.c_str(), read, buffer.size()));
  }
  return buffer;
}

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  FaultInjector& faults = FaultInjector::Get();
  const std::string temp_path = path + ".tmp";

  if (faults.ShouldFail(FaultKind::kEnospc)) {
    return Status::IoError("no space left on device (injected): " + path);
  }

  std::FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open for write: " + temp_path);
  }

  size_t to_write = size;
  bool torn = false;
  int64_t torn_bytes = 0;
  if (faults.ShouldFail(FaultKind::kTornWrite, &torn_bytes)) {
    torn = true;
    to_write = std::min(size, static_cast<size_t>(
                                  torn_bytes < 0 ? 0 : torn_bytes));
  }
  const size_t written =
      to_write == 0 ? 0 : std::fwrite(data, 1, to_write, file);
  if (torn) {
    // A torn write persists the prefix: flush it, then report the failure
    // without cleaning up, exactly like a crash mid-write would.
    std::fflush(file);
    std::fclose(file);
    return Status::IoError(
        StrFormat("write failed after %zu of %zu bytes (injected): %s",
                  written, size, temp_path.c_str()));
  }
  if (written != size) {
    std::fclose(file);
    std::remove(temp_path.c_str());
    return Status::IoError("short write: " + temp_path);
  }
  const Status sync_status = FlushAndSync(file, temp_path);
  const int close_result = std::fclose(file);
  if (!sync_status.ok() || close_result != 0) {
    std::remove(temp_path.c_str());
    return sync_status.ok() ? Status::IoError("close failed: " + temp_path)
                            : sync_status;
  }

  if (faults.ShouldFail(FaultKind::kRenameFail)) {
    std::remove(temp_path.c_str());
    return Status::IoError("rename failed (injected): " + path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("rename failed: " + path);
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status RenamePath(const std::string& from, const std::string& to) {
  if (FaultInjector::Get().ShouldFail(FaultKind::kRenameFail)) {
    return Status::IoError("rename failed (injected): " + to);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError("rename failed: " + from + " -> " + to);
  }
  SyncParentDir(to);
  return Status::Ok();
}

Status RetryIo(const std::string& what, int max_attempts,
               const std::function<Status()>& op) {
  Status status;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
      LogWarning("retrying %s (attempt %d/%d): %s", what.c_str(), attempt + 1,
                 max_attempts, status.ToString().c_str());
    }
    status = op();
    if (status.code() != StatusCode::kIoError) return status;
  }
  return status;
}

void QuarantineCorrupt(const std::string& path, const Status& why) {
  // Silent regeneration is a perf and correctness signal: surface every
  // quarantine in the run report, not just in the log.
  static obs::Counter& quarantined =
      obs::Registry::Get().GetCounter(obs::kCacheQuarantined);
  quarantined.Increment();
  const std::string quarantine_path = path + ".corrupt";
  // The quarantine rename is itself storage I/O, so it honors the same
  // failpoint as the atomic-write rename; the fallback (delete the corrupt
  // artifact) keeps the cache healthy even when renames are failing.
  if (!FaultInjector::Get().ShouldFail(FaultKind::kRenameFail) &&
      std::rename(path.c_str(), quarantine_path.c_str()) == 0) {
    LogWarning("quarantined corrupt artifact %s -> %s (%s)", path.c_str(),
               quarantine_path.c_str(), why.ToString().c_str());
  } else {
    std::remove(path.c_str());
    LogWarning("removed corrupt artifact %s (%s)", path.c_str(),
               why.ToString().c_str());
  }
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return std::string(bytes->begin(), bytes->end());
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  return AtomicWriteFile(path, content.data(), content.size());
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  std::vector<std::string> lines = Split(*content, '\n');
  // A trailing newline produces one empty final field; drop it.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

Status MakeDirectories(const std::string& path) {
  if (FaultInjector::Get().ShouldFail(FaultKind::kMkdirFail)) {
    return Status::IoError("mkdir failed (injected): " + path);
  }
  std::error_code error;
  std::filesystem::create_directories(path, error);
  if (error) {
    return Status::IoError("mkdir failed: " + path + ": " + error.message());
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat info {};
  return ::stat(path.c_str(), &info) == 0 && S_ISREG(info.st_mode);
}

}  // namespace kgc
