#include "serve/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace kgc::serve {

namespace {

void AppendU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(uint32_t v, std::string* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendFloatBits(float v, std::string* out) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU32(bits, out);
}

/// Bounds-checked little-endian cursor over a decoded payload. Every read
/// fails closed: once a field runs past the end, all subsequent reads fail
/// too, so decoders only need one `ok()` check at the end.
class Cursor {
 public:
  explicit Cursor(const std::string& payload) : data_(payload) {}

  uint8_t ReadU8() {
    if (pos_ + 1 > data_.size()) return Fail<uint8_t>();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t ReadU32() {
    if (pos_ + 4 > data_.size()) return Fail<uint32_t>();
    uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << shift;
    }
    return v;
  }

  uint64_t ReadU64() {
    if (pos_ + 8 > data_.size()) return Fail<uint64_t>();
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << shift;
    }
    return v;
  }

  float ReadFloatBits() {
    uint32_t bits = ReadU32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    pos_ = data_.size();
    return T{};
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame: ") + what);
}

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Polls `fd` for `events` with a budget measured against `deadline_ms`
/// (absolute steady-clock ms; <0 = no deadline). Returns +1 ready, 0
/// timeout, -1 error/hangup-without-data.
int PollFor(int fd, short events, int64_t deadline_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    int wait = -1;
    if (deadline_ms >= 0) {
      int64_t left = deadline_ms - NowMillis();
      if (left <= 0) return 0;
      wait = static_cast<int>(std::min<int64_t>(left, 1000));
    }
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) {
      if (deadline_ms < 0) continue;
      if (NowMillis() >= deadline_ms) return 0;
      continue;
    }
    // POLLHUP alongside POLLIN still lets us drain buffered bytes.
    if (pfd.revents & (events | POLLHUP | POLLERR)) return 1;
  }
}

int64_t DeadlineFromTimeout(int timeout_ms) {
  return timeout_ms > 0 ? NowMillis() + timeout_ms : -1;
}

/// Reads exactly `n` bytes into `out`. kNotFound only when EOF lands before
/// the first byte AND `eof_ok`; kIoError otherwise.
Status ReadExact(int fd, size_t n, bool eof_ok, int64_t deadline_ms,
                 std::string* out) {
  out->clear();
  out->reserve(n);
  char buf[4096];
  while (out->size() < n) {
    int ready = PollFor(fd, POLLIN, deadline_ms);
    if (ready == 0) return Status::IoError("read frame: timed out");
    if (ready < 0) return Status::IoError("read frame: poll failed");
    size_t want = std::min(n - out->size(), sizeof(buf));
    ssize_t got = ::recv(fd, buf, want, 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError(std::string("read frame: ") +
                             std::strerror(errno));
    }
    if (got == 0) {
      if (out->empty() && eof_ok) return Status::NotFound("connection closed");
      return Status::IoError("read frame: unexpected EOF mid-frame");
    }
    out->append(buf, static_cast<size_t>(got));
  }
  return Status::Ok();
}

}  // namespace

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk:
      return "OK";
    case ReplyStatus::kOverloaded:
      return "OVERLOADED";
    case ReplyStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ReplyStatus::kMalformed:
      return "MALFORMED";
    case ReplyStatus::kUnavailable:
      return "UNAVAILABLE";
    case ReplyStatus::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  AppendU8(kProtocolVersion, &out);
  AppendU8(static_cast<uint8_t>(request.type), &out);
  AppendU64(request.id, &out);
  AppendU32(request.deadline_ms, &out);
  switch (request.type) {
    case RequestType::kTopK:
      AppendU8(request.tails ? 1 : 0, &out);
      AppendU8(request.filtered ? 1 : 0, &out);
      AppendU32(static_cast<uint32_t>(request.relation), &out);
      AppendU32(static_cast<uint32_t>(request.anchor), &out);
      AppendU32(request.k, &out);
      break;
    case RequestType::kClassify:
      AppendU32(static_cast<uint32_t>(request.triple.head), &out);
      AppendU32(static_cast<uint32_t>(request.triple.relation), &out);
      AppendU32(static_cast<uint32_t>(request.triple.tail), &out);
      break;
    case RequestType::kPing:
      break;
  }
  return out;
}

void AppendTopKBody(const std::vector<TopKEntry>& entries, std::string* out) {
  AppendU32(static_cast<uint32_t>(entries.size()), out);
  for (const TopKEntry& entry : entries) {
    AppendU32(static_cast<uint32_t>(entry.entity), out);
    AppendFloatBits(entry.score, out);
  }
}

void AppendClassifyBody(float score, bool label, float threshold,
                        std::string* out) {
  AppendFloatBits(score, out);
  AppendU8(label ? 1 : 0, out);
  AppendFloatBits(threshold, out);
}

std::string EncodeReply(const Reply& reply) {
  std::string out;
  AppendU8(kProtocolVersion, &out);
  AppendU8(static_cast<uint8_t>(reply.status), &out);
  AppendU8(reply.flags, &out);
  AppendU64(reply.id, &out);
  AppendU64(static_cast<uint64_t>(reply.generation), &out);
  if (reply.status == ReplyStatus::kOk) {
    switch (reply.type) {
      case RequestType::kTopK:
        AppendTopKBody(reply.entries, &out);
        break;
      case RequestType::kClassify:
        AppendClassifyBody(reply.score, reply.label, reply.threshold, &out);
        break;
      case RequestType::kPing:
        break;
    }
  }
  return out;
}

Status DecodeRequest(const std::string& payload, Request* request) {
  Cursor cursor(payload);
  uint8_t version = cursor.ReadU8();
  if (cursor.ok() && version != kProtocolVersion) {
    return Malformed("unsupported protocol version");
  }
  uint8_t raw_type = cursor.ReadU8();
  request->id = cursor.ReadU64();
  request->deadline_ms = cursor.ReadU32();
  switch (raw_type) {
    case static_cast<uint8_t>(RequestType::kTopK): {
      request->type = RequestType::kTopK;
      request->tails = cursor.ReadU8() != 0;
      request->filtered = cursor.ReadU8() != 0;
      request->relation = static_cast<RelationId>(cursor.ReadU32());
      request->anchor = static_cast<EntityId>(cursor.ReadU32());
      request->k = cursor.ReadU32();
      break;
    }
    case static_cast<uint8_t>(RequestType::kClassify): {
      request->type = RequestType::kClassify;
      request->triple.head = static_cast<EntityId>(cursor.ReadU32());
      request->triple.relation = static_cast<RelationId>(cursor.ReadU32());
      request->triple.tail = static_cast<EntityId>(cursor.ReadU32());
      break;
    }
    case static_cast<uint8_t>(RequestType::kPing):
      request->type = RequestType::kPing;
      break;
    default:
      return cursor.ok() ? Malformed("unknown request type")
                         : Malformed("truncated request header");
  }
  if (!cursor.ok()) return Malformed("truncated request body");
  if (!cursor.AtEnd()) return Malformed("trailing bytes after request");
  return Status::Ok();
}

Status DecodeReply(const std::string& payload, RequestType expected_type,
                   Reply* reply) {
  Cursor cursor(payload);
  uint8_t version = cursor.ReadU8();
  if (cursor.ok() && version != kProtocolVersion) {
    return Malformed("unsupported protocol version");
  }
  uint8_t raw_status = cursor.ReadU8();
  if (raw_status > static_cast<uint8_t>(ReplyStatus::kInternal)) {
    return Malformed("unknown reply status");
  }
  reply->status = static_cast<ReplyStatus>(raw_status);
  reply->flags = cursor.ReadU8();
  reply->id = cursor.ReadU64();
  reply->generation = static_cast<int64_t>(cursor.ReadU64());
  reply->type = expected_type;
  reply->entries.clear();
  if (reply->status == ReplyStatus::kOk) {
    switch (expected_type) {
      case RequestType::kTopK: {
        uint32_t n = cursor.ReadU32();
        if (!cursor.ok() || n > kMaxFrameBytes / 8) {
          return Malformed("bad top-K entry count");
        }
        reply->entries.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          TopKEntry entry;
          entry.entity = static_cast<EntityId>(cursor.ReadU32());
          entry.score = cursor.ReadFloatBits();
          reply->entries.push_back(entry);
        }
        break;
      }
      case RequestType::kClassify:
        reply->score = cursor.ReadFloatBits();
        reply->label = cursor.ReadU8() != 0;
        reply->threshold = cursor.ReadFloatBits();
        break;
      case RequestType::kPing:
        break;
    }
  }
  if (!cursor.ok()) return Malformed("truncated reply");
  if (!cursor.AtEnd()) return Malformed("trailing bytes after reply");
  return Status::Ok();
}

StatusOr<int> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("connect " + path + ": " + std::strerror(err));
  }
  return fd;
}

Status WriteFrame(int fd, const std::string& payload, int timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  std::string wire;
  wire.reserve(payload.size() + 4);
  AppendU32(static_cast<uint32_t>(payload.size()), &wire);
  wire.append(payload);
  int64_t deadline_ms = DeadlineFromTimeout(timeout_ms);
  size_t sent = 0;
  while (sent < wire.size()) {
    int ready = PollFor(fd, POLLOUT, deadline_ms);
    if (ready == 0) return Status::IoError("write frame: timed out");
    if (ready < 0) return Status::IoError("write frame: poll failed");
    // MSG_NOSIGNAL: a dead peer should surface as EPIPE, not kill the
    // process with SIGPIPE.
    ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError(std::string("write frame: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFrame(int fd, int timeout_ms) {
  int64_t deadline_ms = DeadlineFromTimeout(timeout_ms);
  std::string header;
  KGC_RETURN_IF_ERROR(
      ReadExact(fd, 4, /*eof_ok=*/true, deadline_ms, &header));
  uint32_t length = 0;
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) | static_cast<uint8_t>(header[i]);
  }
  if (length > kMaxFrameBytes) {
    // kInvalidArgument (not kIoError) so the server can tell "client sent
    // garbage" (typed MALFORMED reply) from "connection broke" (close).
    return Status::InvalidArgument("read frame: oversized length prefix");
  }
  std::string payload;
  KGC_RETURN_IF_ERROR(
      ReadExact(fd, length, /*eof_ok=*/false, deadline_ms, &payload));
  return payload;
}

}  // namespace kgc::serve
