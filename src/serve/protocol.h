// kgc_serve wire protocol v1: length-prefixed binary frames over a stream
// socket (DESIGN.md "Serving").
//
// Every message is one frame:
//
//   u32  payload_length   little-endian, must be <= kMaxFrameBytes
//   u8[] payload          payload_length bytes
//
// Request payload:
//
//   u8  version (kProtocolVersion)
//   u8  type    (RequestType)
//   u64 id      client-chosen, echoed verbatim in the reply
//   u32 deadline_ms   per-request budget measured from server receipt;
//                     0 = the server's default
//   -- kTopK:     u8 tails, u8 filtered, u32 relation, u32 anchor, u32 k
//   -- kClassify: u32 head, u32 relation, u32 tail
//   -- kPing:     (empty)
//
// Reply payload:
//
//   u8  version
//   u8  status  (ReplyStatus)
//   u8  flags   (bit 0: kReplyFlagDegraded — answered by the oracle sweep,
//               not the pruned fast path)
//   u64 id
//   i64 generation   snapshot generation that answered (-1 when none)
//   -- kOk + kTopK:     u32 n, then n x { u32 entity, u32 score_bits }
//   -- kOk + kClassify: u32 score_bits, u8 label, u32 threshold_bits
//   -- any error status: (empty)
//
// All integers are little-endian; floats travel as IEEE-754 bit patterns
// (u32), so a reply body is bit-reproducible and can be fingerprinted with
// a CRC — kgc_load validates every response against expected body CRCs
// computed from the same snapshot.
//
// Robustness contract (tests/serve_test.cc malformed-input corpus): any
// frame the decoder rejects — oversized length prefix, short payload, bad
// version, unknown type, trailing garbage — earns a typed kMalformed reply
// and a clean connection close; it must never crash or desync the server.

#ifndef KGC_SERVE_PROTOCOL_H_
#define KGC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/topk.h"
#include "kg/triple.h"
#include "util/status.h"

namespace kgc::serve {

inline constexpr uint8_t kProtocolVersion = 1;
/// Upper bound on one frame's payload. A length prefix beyond this is
/// malformed by definition (it would otherwise let one client stall the
/// reader on a multi-gigabyte allocation).
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

enum class RequestType : uint8_t {
  kTopK = 1,
  kClassify = 2,
  kPing = 3,
};

enum class ReplyStatus : uint8_t {
  kOk = 0,
  kOverloaded = 1,         ///< shed by admission control; retry later
  kDeadlineExceeded = 2,   ///< budget expired before the batch reached it
  kMalformed = 3,          ///< request failed to decode
  kUnavailable = 4,        ///< no snapshot generation loaded / draining
  kInternal = 5,           ///< injected or unexpected server-side failure
};

const char* ReplyStatusName(ReplyStatus status);

inline constexpr uint8_t kReplyFlagDegraded = 1u << 0;

/// Bytes before an OK reply's body: version, status, flags, id, generation.
/// kgc_load fingerprints reply bodies as payload.substr(kReplyHeaderBytes).
inline constexpr size_t kReplyHeaderBytes = 1 + 1 + 1 + 8 + 8;

struct Request {
  RequestType type = RequestType::kPing;
  uint64_t id = 0;
  uint32_t deadline_ms = 0;
  // kTopK fields.
  bool tails = true;
  bool filtered = false;
  RelationId relation = 0;
  EntityId anchor = 0;
  uint32_t k = 0;
  // kClassify fields.
  Triple triple;
};

struct Reply {
  ReplyStatus status = ReplyStatus::kOk;
  uint8_t flags = 0;
  uint64_t id = 0;
  int64_t generation = -1;
  // kOk + kTopK body.
  std::vector<TopKEntry> entries;
  // kOk + kClassify body.
  float score = 0.0f;
  bool label = false;
  float threshold = 0.0f;
  /// What the OK body decodes as (mirrors the request type).
  RequestType type = RequestType::kPing;
};

/// Renders `request` as a frame payload (no length prefix).
std::string EncodeRequest(const Request& request);

/// Renders `reply` as a frame payload (no length prefix).
std::string EncodeReply(const Reply& reply);

/// Decodes a request payload. Any failure is kInvalidArgument — the server
/// maps it to a kMalformed reply.
Status DecodeRequest(const std::string& payload, Request* request);

/// Decodes a reply payload. `expected_type` selects how an OK body is
/// parsed (the reply wire format does not repeat the request type).
Status DecodeReply(const std::string& payload, RequestType expected_type,
                   Reply* reply);

/// Appends the kTopK OK body (u32 n + entity/score-bit pairs) to `out`.
/// Shared by the server encoder and kgc_load's expected-body
/// fingerprinting, so both sides render bit-identical bytes.
void AppendTopKBody(const std::vector<TopKEntry>& entries, std::string* out);

/// Appends the kClassify OK body to `out` (same sharing contract).
void AppendClassifyBody(float score, bool label, float threshold,
                        std::string* out);

// ---------------------------------------------------------------------------
// Blocking frame I/O for clients (kgc_load, tests). The server uses its own
// poll loops so it can watch the stop flag; clients just need bounded waits.

/// Connects to the Unix-domain stream socket at `path`. Returns the fd.
StatusOr<int> ConnectUnix(const std::string& path);

/// Writes one frame (length prefix + payload). `timeout_ms` bounds the
/// total wait for writability; <= 0 means block indefinitely.
Status WriteFrame(int fd, const std::string& payload, int timeout_ms);

/// Reads one frame's payload. kNotFound on clean EOF at a frame boundary;
/// kInvalidArgument on an oversized length prefix (client garbage — reply
/// MALFORMED); kIoError on timeouts or mid-frame EOF.
StatusOr<std::string> ReadFrame(int fd, int timeout_ms);

}  // namespace kgc::serve

#endif  // KGC_SERVE_PROTOCOL_H_
