#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "eval/topk.h"
#include "obs/metrics.h"
#include "util/fault_injector.h"
#include "util/logging.h"

namespace kgc::serve {

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

bool EnvBool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0);
}

// Same failure semantics as the snapshot rotation failpoints: kCrash
// hard-exits like a SIGKILL, kStall sleeps the payload (the overload lever
// in ci/sanitize.sh), anything else is an injected error for that stage.
Status ServeFailpoint(const std::string& site) {
  FaultKind kind = FaultKind::kEnospc;
  int64_t payload = 0;
  if (!FaultInjector::Get().ShouldFailAt(site, &kind, &payload)) {
    return Status::Ok();
  }
  obs::Registry::Get().GetCounter(obs::kFaultsInjected).Increment();
  switch (kind) {
    case FaultKind::kCrash:
      LogError("injected crash at failpoint %s", site.c_str());
      std::_Exit(137);
    case FaultKind::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(payload));
      return Status::Ok();
    default:
      return Status::IoError("injected fault at failpoint " + site);
  }
}

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ServeOptions ServeOptions::FromEnv() {
  ServeOptions options;
  options.max_connections =
      EnvInt("KGC_SERVE_MAX_CONNECTIONS", options.max_connections);
  options.queue_capacity = EnvInt("KGC_SERVE_QUEUE", options.queue_capacity);
  options.max_batch = EnvInt("KGC_SERVE_MAX_BATCH", options.max_batch);
  options.linger_us = EnvInt("KGC_SERVE_LINGER_US", options.linger_us);
  options.default_deadline_ms =
      EnvInt("KGC_SERVE_DEADLINE_MS", options.default_deadline_ms);
  options.write_timeout_ms =
      EnvInt("KGC_SERVE_WRITE_TIMEOUT_MS", options.write_timeout_ms);
  options.max_k = EnvInt("KGC_SERVE_MAX_K", options.max_k);
  options.prune = EnvBool("KGC_SERVE_PRUNE", options.prune);
  options.force_oracle =
      EnvBool("KGC_SERVE_FORCE_ORACLE", options.force_oracle);
  return options;
}

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(const SnapshotRegistry& registry, const ServeOptions& options)
    : registry_(registry),
      options_(options),
      reader_(registry),
      queue_(static_cast<size_t>(std::max(options.queue_capacity, 1))) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  struct sockaddr_un addr;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: " +
                                   options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a SIGKILL
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind/listen " + options_.socket_path + ": " +
                           std::strerror(err));
  }
  pinned_generation_.store(reader_.generation_number(),
                           std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  batch_thread_ = std::thread([this] { BatchLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  static obs::Counter& accepted =
      obs::Registry::Get().GetCounter(obs::kServeConnsAccepted);
  static obs::Counter& rejected =
      obs::Registry::Get().GetCounter(obs::kServeConnsRejected);
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (!ServeFailpoint("serve:accept").ok()) {
      ::close(fd);
      rejected.Increment();
      continue;
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (stopping_.load(std::memory_order_relaxed) ||
        conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      ::close(fd);
      rejected.Increment();
      continue;
    }
    auto conn = std::make_shared<Connection>(fd);
    conns_.emplace(fd, conn);
    accepted.Increment();
    reader_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable { ReaderLoop(conn); });
  }
}

void Server::SendReply(const std::shared_ptr<Connection>& conn,
                       const Reply& reply) {
  static obs::Counter& drops =
      obs::Registry::Get().GetCounter(obs::kServeSlowClientDrops);
  if (conn->dead.load(std::memory_order_relaxed)) return;
  const std::string payload = EncodeReply(reply);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->dead.load(std::memory_order_relaxed)) return;
  Status status = WriteFrame(conn->fd, payload, options_.write_timeout_ms);
  if (!status.ok()) {
    // Slow or vanished client: drop it rather than let one connection
    // wedge the batch thread again next reply.
    conn->dead.store(true, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);  // kick its blocked reader
    drops.Increment();
  }
}

void Server::FinishRequest(const PendingRequest& pending,
                           const Reply& reply) {
  auto& registry = obs::Registry::Get();
  static obs::Counter& ok = registry.GetCounter(obs::kServeRepliesOk);
  static obs::Counter& deadline =
      registry.GetCounter(obs::kServeDeadlineExceeded);
  static obs::Counter& malformed = registry.GetCounter(obs::kServeMalformed);
  static obs::Counter& degraded = registry.GetCounter(obs::kServeDegraded);
  static obs::Counter& drained = registry.GetCounter(obs::kServeDrained);
  static obs::HdrHistogram& latency =
      registry.GetDurationHistogram(obs::kServeRequestSeconds);
  switch (reply.status) {
    case ReplyStatus::kOk:
      ok.Increment();
      if (reply.flags & kReplyFlagDegraded) degraded.Increment();
      break;
    case ReplyStatus::kDeadlineExceeded:
      deadline.Increment();
      break;
    case ReplyStatus::kMalformed:
      malformed.Increment();
      break;
    default:
      break;
  }
  if (draining_.load(std::memory_order_relaxed)) {
    drained.Increment();
    drained_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  latency.Observe(SecondsSince(pending.received));
  SendReply(pending.conn, reply);
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  auto& registry = obs::Registry::Get();
  static obs::Counter& requests = registry.GetCounter(obs::kServeRequests);
  static obs::Counter& shed = registry.GetCounter(obs::kServeShed);
  static obs::Counter& malformed = registry.GetCounter(obs::kServeMalformed);
  static obs::Gauge& depth = registry.GetGauge(obs::kServeQueueDepth);
  while (!conn->dead.load(std::memory_order_relaxed)) {
    auto payload = ReadFrame(conn->fd, /*timeout_ms=*/-1);
    if (!payload.ok()) {
      if (payload.status().code() == StatusCode::kInvalidArgument) {
        // Garbage framing (oversized prefix): typed reply, then close.
        malformed.Increment();
        Reply reply;
        reply.status = ReplyStatus::kMalformed;
        SendReply(conn, reply);
      }
      break;  // clean EOF, abrupt disconnect, or the malformed close above
    }
    Request request;
    Status decoded = DecodeRequest(*payload, &request);
    if (!decoded.ok()) {
      malformed.Increment();
      Reply reply;
      reply.status = ReplyStatus::kMalformed;
      SendReply(conn, reply);
      break;
    }
    requests.Increment();
    if (request.type == RequestType::kPing) {
      // Health checks skip the batch path: answered even under overload.
      Reply reply;
      reply.status = ReplyStatus::kOk;
      reply.type = RequestType::kPing;
      reply.id = request.id;
      reply.generation = pinned_generation_.load(std::memory_order_relaxed);
      SendReply(conn, reply);
      continue;
    }
    PendingRequest pending;
    pending.request = request;
    pending.conn = conn;
    pending.received = std::chrono::steady_clock::now();
    uint32_t budget_ms = request.deadline_ms != 0
                             ? request.deadline_ms
                             : static_cast<uint32_t>(std::max(
                                   options_.default_deadline_ms, 1));
    pending.deadline_ms = NowMillis() + budget_ms;
    if (draining_.load(std::memory_order_relaxed) ||
        !queue_.TryPush(std::move(pending))) {
      shed.Increment();
      Reply reply;
      reply.status = ReplyStatus::kOverloaded;
      reply.id = request.id;
      reply.generation = pinned_generation_.load(std::memory_order_relaxed);
      SendReply(conn, reply);
      continue;
    }
    depth.Set(static_cast<double>(queue_.size()));
  }
  conn->dead.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conns_mutex_);
  conns_.erase(conn->fd);
}

void Server::BatchLoop() {
  auto& registry = obs::Registry::Get();
  static obs::Gauge& depth = registry.GetGauge(obs::kServeQueueDepth);
  static obs::Histogram& batch_size =
      registry.GetHistogram(obs::kServeBatchSize, {});
  static obs::HdrHistogram& batch_seconds =
      registry.GetDurationHistogram(obs::kServeBatchSeconds);
  while (true) {
    std::vector<PendingRequest> batch = queue_.PopBatch(
        static_cast<size_t>(std::max(options_.max_batch, 1)),
        std::chrono::microseconds(std::max(options_.linger_us, 0)));
    depth.Set(static_cast<double>(queue_.size()));
    if (batch.empty()) break;  // queue closed and drained
    const auto batch_start = std::chrono::steady_clock::now();
    batch_size.Observe(static_cast<double>(batch.size()));
    ServeBatch(batch);
    batch_seconds.Observe(SecondsSince(batch_start));
  }
}

void Server::ServeBatch(std::vector<PendingRequest>& batch) {
  // Batch boundary: hop to the newest generation unless the swap failpoint
  // is injecting trouble — then keep serving the pinned one (which stays
  // valid; that is the whole point of the refcounted pin).
  if (ServeFailpoint("serve:swap").ok()) {
    reader_.Repin();
    pinned_generation_.store(reader_.generation_number(),
                             std::memory_order_relaxed);
  }
  const std::shared_ptr<const LoadedGeneration>& gen = reader_.generation();
  const int64_t gen_number = reader_.generation_number();

  auto reply_all = [&](ReplyStatus status) {
    for (const PendingRequest& pending : batch) {
      Reply reply;
      reply.status = status;
      reply.id = pending.request.id;
      reply.generation = gen_number;
      FinishRequest(pending, reply);
    }
  };
  if (!ServeFailpoint("serve:batch").ok()) {
    reply_all(ReplyStatus::kInternal);
    return;
  }
  if (gen == nullptr || gen->model == nullptr) {
    reply_all(ReplyStatus::kUnavailable);
    return;
  }
  const KgeModel& model = *gen->model;

  if (gen->manifest.generation != cached_generation_) {
    TripleClassificationOptions copt;
    copt.seed = options_.classify_seed;
    thresholds_ = FitClassificationThresholds(model, gen->dataset, copt);
    cached_generation_ = gen->manifest.generation;
  }

  // Deadline triage before any scoring: an expired request must not spend
  // sweep time, and a typed reply beats silently late data.
  const int64_t now_ms = NowMillis();
  std::vector<Reply> replies(batch.size());
  std::vector<size_t> live;
  live.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Reply& reply = replies[i];
    reply.id = batch[i].request.id;
    reply.generation = gen_number;
    reply.type = batch[i].request.type;
    if (now_ms > batch[i].deadline_ms) {
      reply.status = ReplyStatus::kDeadlineExceeded;
      continue;
    }
    live.push_back(i);
  }

  // Validate ids against the pinned generation before touching embedding
  // tables; online clients can name anything.
  std::vector<size_t> topk_indices;
  std::vector<Triple> classify_triples;
  std::vector<size_t> classify_indices;
  uint32_t max_k_needed = 0;
  for (size_t i : live) {
    const Request& request = batch[i].request;
    Reply& reply = replies[i];
    if (request.type == RequestType::kTopK) {
      if (request.k == 0 || request.relation < 0 ||
          request.relation >= model.num_relations() || request.anchor < 0 ||
          request.anchor >= model.num_entities()) {
        reply.status = ReplyStatus::kMalformed;
        continue;
      }
      topk_indices.push_back(i);
      uint32_t k = std::min<uint32_t>(
          std::min<uint32_t>(request.k,
                             static_cast<uint32_t>(
                                 std::max(options_.max_k, 1))),
          static_cast<uint32_t>(model.num_entities()));
      max_k_needed = std::max(max_k_needed, k);
    } else {
      const Triple& t = request.triple;
      if (t.head < 0 || t.head >= model.num_entities() || t.tail < 0 ||
          t.tail >= model.num_entities() || t.relation < 0 ||
          t.relation >= model.num_relations()) {
        reply.status = ReplyStatus::kMalformed;
        continue;
      }
      classify_indices.push_back(i);
      classify_triples.push_back(t);
    }
  }

  if (!classify_indices.empty()) {
    std::vector<ClassifiedTriple> classified =
        ClassifyTriples(model, thresholds_, classify_triples);
    for (size_t j = 0; j < classify_indices.size(); ++j) {
      Reply& reply = replies[classify_indices[j]];
      reply.status = ReplyStatus::kOk;
      reply.score = static_cast<float>(classified[j].score);
      reply.label = classified[j].label;
      reply.threshold = static_cast<float>(classified[j].threshold);
    }
  }

  if (!topk_indices.empty()) {
    // One engine run for the whole batch at the largest clamped K; each
    // request keeps its own-K prefix. Top-K lists are a pure function of
    // the model (score desc, entity asc total order), so a K' prefix of a
    // K-run equals a direct K'-run bit for bit.
    SweepSpec spec;
    bool degraded = options_.force_oracle;
    std::vector<TopKQuery> queries;
    queries.reserve(topk_indices.size());
    for (size_t i : topk_indices) {
      const Request& request = batch[i].request;
      TopKQuery query;
      query.tails = request.tails;
      query.relation = request.relation;
      query.anchor = request.anchor;
      queries.push_back(std::move(query));
      if (!model.DescribeSweep(request.tails, request.relation, &spec)) {
        degraded = true;  // no kernel sweep: engine falls back to oracle
      }
    }
    TopKOptions topt;
    topt.k = static_cast<int>(std::max<uint32_t>(max_k_needed, 1));
    topt.prune = options_.prune;
    topt.threads = 1;  // the blocked sweep is the batching; keep it exact
    const TripleStore& filter = gen->dataset.all_store();
    std::vector<TopKResult> results;
    if (options_.force_oracle) {
      results.reserve(queries.size());
      for (const TopKQuery& query : queries) {
        results.push_back(
            TopKEngine::OracleTopK(model, query, topt.k, &filter));
      }
    } else {
      TopKEngine engine(model, topt);
      results = engine.Run(queries, &filter);
    }
    for (size_t j = 0; j < topk_indices.size(); ++j) {
      const Request& request = batch[topk_indices[j]].request;
      Reply& reply = replies[topk_indices[j]];
      reply.status = ReplyStatus::kOk;
      if (degraded) reply.flags |= kReplyFlagDegraded;
      const std::vector<TopKEntry>& list =
          request.filtered ? results[j].filtered : results[j].raw;
      uint32_t k = std::min<uint32_t>(
          std::min<uint32_t>(request.k,
                             static_cast<uint32_t>(
                                 std::max(options_.max_k, 1))),
          static_cast<uint32_t>(model.num_entities()));
      reply.entries.assign(
          list.begin(),
          list.begin() + std::min<size_t>(list.size(), k));
    }
  }

  if (!ServeFailpoint("serve:reply").ok()) {
    // Injected reply-stage failure: suppress the writes. Clients see a
    // dropped response (transport error), never a corrupt one.
    return;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    FinishRequest(batch[i], replies[i]);
  }
}

DrainStats Server::Shutdown() {
  DrainStats stats;
  if (!started_.load(std::memory_order_relaxed) ||
      stopping_.exchange(true)) {
    stats.drained_requests =
        drained_requests_.load(std::memory_order_relaxed);
    return stats;
  }
  draining_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake every reader out of its blocking read; queued work still gets
    // answered below before the sockets close.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    stats.connections_open = conns_.size();
    for (auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
  queue_.Close();
  if (batch_thread_.joinable()) batch_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  stats.drained_requests = drained_requests_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace kgc::serve
